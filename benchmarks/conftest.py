"""Shared infrastructure for the benchmark suite.

Every paper table/figure has one bench module.  The expensive multi-method
comparisons are memoized per circuit for the session so the Fig. 5 bench
(which runs last — see its module name) reuses the Table II/IV/VI runs
instead of re-simulating them.

Scale is controlled by the MAOPT_BENCH_* environment variables documented
in :mod:`repro.experiments.config`; set ``MAOPT_BENCH_FULL=1`` for the
paper's full 10x200 protocol.

Outputs are also written to ``benchmarks/results/*.txt`` so EXPERIMENTS.md
can reference exact artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA
from repro.experiments import BenchConfig, run_comparison
from repro.experiments.config import TUNED_MAOPT

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_TASKS = {
    "ota": TwoStageOTA,
    "tia": ThreeStageTIA,
    "ldo": LDORegulator,
}

_comparison_cache: dict[str, dict] = {}

# Hyper-parameters shared with the CLI and examples.
BENCH_MAOPT_OVERRIDES = dict(TUNED_MAOPT)


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    return BenchConfig.from_env()


@pytest.fixture(scope="session")
def comparison_runner(bench_config):
    """Memoized circuit-comparison runner shared by all bench modules."""

    def get(circuit: str):
        if circuit not in _comparison_cache:
            task = _TASKS[circuit](fidelity=bench_config.fidelity)
            results = run_comparison(
                task, bench_config.methods,
                n_runs=bench_config.n_runs,
                n_sims=bench_config.n_sims,
                n_init=bench_config.n_init,
                seed=bench_config.seed,
                maopt_overrides=BENCH_MAOPT_OVERRIDES,
            )
            _comparison_cache[circuit] = {"task": task, "results": results}
        return _comparison_cache[circuit]

    return get


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
