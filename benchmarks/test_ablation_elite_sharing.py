"""Ablation (Fig. 2): shared vs individual elite solution sets.

MA-Opt1 (individual) vs MA-Opt2 (shared) with everything else equal, on
the cheap synthetic task so the ablation isolates the optimizer mechanics
from simulator noise.  Paper claim: sharing boosts elite-set refresh rate
and improves optimization.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.synthetic import ConstrainedSphere
from repro.experiments import comparison_table, run_comparison

FAST = {"critic_steps": 30, "actor_steps": 15, "batch_size": 32,
        "n_elite": 10}


def test_elite_sharing_ablation(benchmark):
    task = ConstrainedSphere(d=10, seed=7)

    def run():
        return run_comparison(task, ["MA-Opt1", "MA-Opt2"], n_runs=3,
                              n_sims=45, n_init=25, seed=11,
                              maopt_overrides=FAST)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = comparison_table(results, task, target_scale=1.0,
                            target_label="Min loss")
    write_result("ablation_elite_sharing.txt", text)
    print("\n" + text)
    mean_shared = np.mean([r.best_fom for r in results["MA-Opt2"]])
    mean_indiv = np.mean([r.best_fom for r in results["MA-Opt1"]])
    # Soft shape check at this scale: shared should not be clearly worse.
    assert mean_shared <= mean_indiv * 1.5 + 0.05
