"""Ablation: single critic vs critic ensemble.

The paper states multiple critics "do improve optimization, but consume
more memory resources than using one critic network" and therefore uses a
single critic.  This bench quantifies both halves of the claim: final FoM
with 1 vs 3 critics, and the parameter-memory multiplier.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.config import MAOptConfig, VariantPreset
from repro.core.ma_opt import MAOptimizer
from repro.core.networks import CriticEnsemble
from repro.core.synthetic import ConstrainedSphere
from repro.experiments import make_initial_set

FAST = {"critic_steps": 30, "actor_steps": 15, "batch_size": 32,
        "n_elite": 10, "hidden": (64, 64)}


def test_multi_critic_ablation(benchmark):
    task = ConstrainedSphere(d=10, seed=7)

    def run():
        out = {}
        for n_critics in (1, 3):
            foms = []
            for rep in range(3):
                x, f = make_initial_set(task, 25, seed=300 + rep)
                cfg = MAOptConfig.from_preset(
                    VariantPreset.MA_OPT, seed=rep, n_critics=n_critics,
                    **FAST)
                res = MAOptimizer(task, cfg).run(n_sims=45, x_init=x,
                                                 f_init=f)
                foms.append(res.best_fom)
            out[n_critics] = float(np.mean(foms))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    mem1 = CriticEnsemble(task.d, task.m + 1, 1,
                          hidden=FAST["hidden"]).parameter_count()
    mem3 = CriticEnsemble(task.d, task.m + 1, 3,
                          hidden=FAST["hidden"]).parameter_count()
    text = ("Multi-critic ablation (mean best FoM over 3 runs, 45 sims):\n"
            f"  1 critic : fom={out[1]:.4f}  params={mem1}\n"
            f"  3 critics: fom={out[3]:.4f}  params={mem3} "
            f"({mem3 / mem1:.0f}x memory)")
    write_result("ablation_multi_critic.txt", text)
    print("\n" + text)
    assert mem3 == 3 * mem1
    assert np.isfinite(out[1]) and np.isfinite(out[3])
