"""Ablation (Fig. 3 / Alg. 2): near-sampling on/off and its parameters.

Paper claims: (a) near-sampling improves the final optimum (MA-Opt vs
MA-Opt2); (b) a near-sampling round is cheaper than an actor-critic round,
so MA-Opt also runs faster at equal simulation count.
"""

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core.config import MAOptConfig, VariantPreset
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.experiments import make_initial_set

FAST = {"critic_steps": 30, "actor_steps": 15, "batch_size": 32,
        "n_elite": 10}


def _mean_best(task, preset, reps=3, **over):
    foms, times = [], []
    for rep in range(reps):
        x, f = make_initial_set(task, 25, seed=200 + rep)
        cfg = MAOptConfig.from_preset(preset, seed=rep, **{**FAST, **over})
        t0 = time.perf_counter()
        res = MAOptimizer(task, cfg).run(n_sims=45, x_init=x, f_init=f)
        times.append(time.perf_counter() - t0)
        foms.append(res.best_fom)
    return float(np.mean(foms)), float(np.mean(times))


def test_near_sampling_ablation(benchmark):
    task = ConstrainedSphere(d=10, seed=7)

    def run():
        with_ns, t_ns = _mean_best(task, VariantPreset.MA_OPT)
        without, t_no = _mean_best(task, VariantPreset.MA_OPT_2)
        radii = {
            r: _mean_best(task, VariantPreset.MA_OPT, ns_radius=r)[0]
            for r in (0.01, 0.04, 0.15)
        }
        periods = {
            t: _mean_best(task, VariantPreset.MA_OPT, t_ns=t)[0]
            for t in (2, 5, 10)
        }
        return dict(with_ns=with_ns, without=without, t_with=t_ns,
                    t_without=t_no, radii=radii, periods=periods)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Near-sampling ablation (mean best FoM over 3 runs, 45 sims):",
        f"  MA-Opt  (NS on):  fom={out['with_ns']:.4f}  "
        f"time={out['t_with']:.1f}s",
        f"  MA-Opt2 (NS off): fom={out['without']:.4f}  "
        f"time={out['t_without']:.1f}s",
        "  radius sweep: " + "  ".join(
            f"delta={r}: {v:.4f}" for r, v in out["radii"].items()),
        "  period sweep: " + "  ".join(
            f"T_NS={t}: {v:.4f}" for t, v in out["periods"].items()),
    ]
    text = "\n".join(lines)
    write_result("ablation_near_sampling.txt", text)
    print("\n" + text)
    assert np.isfinite(out["with_ns"])


def test_near_sampling_round_cheaper_than_actor_round(benchmark):
    """Paper Section III-C: a near-sampling round (1 critic sweep over
    N_samples candidates + 1 sim) is cheaper than an optimization round
    (critic + N_act actor trainings + N_act sims)."""
    task = ConstrainedSphere(d=10, seed=7)
    cfg = MAOptConfig.from_preset(VariantPreset.MA_OPT, seed=0, **FAST)
    opt = MAOptimizer(task, cfg)
    opt.initialize(n_init=30)
    opt.optimization_round()  # warm up critic/actors

    t0 = time.perf_counter()
    opt.optimization_round()
    t_opt = time.perf_counter() - t0

    t_ns = benchmark(opt.near_sampling_round)
    del t_ns  # pytest-benchmark returns the records, timing is in stats
    t0 = time.perf_counter()
    opt.near_sampling_round()
    t_near = time.perf_counter() - t0
    print(f"\nactor-critic round: {t_opt * 1e3:.1f} ms, "
          f"near-sampling round: {t_near * 1e3:.1f} ms")
    assert t_near < t_opt
