"""Ablation: number of actors N_act (1, 2, 3, 5).

The paper fixes N_act = 3; this bench sweeps it to expose the
diversity-vs-budget trade-off (each round costs N_act simulations, so more
actors means fewer critic refreshes per budget).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.experiments import make_initial_set

FAST = {"critic_steps": 30, "actor_steps": 15, "batch_size": 32,
        "n_elite": 10, "near_sampling": False, "shared_elite": True}


def test_num_actors_sweep(benchmark):
    task = ConstrainedSphere(d=10, seed=7)

    def run():
        out = {}
        for n_act in (1, 2, 3, 5):
            foms = []
            for rep in range(3):
                x, f = make_initial_set(task, 25, seed=100 + rep)
                cfg = MAOptConfig(n_actors=n_act, seed=rep, **FAST)
                res = MAOptimizer(task, cfg).run(
                    n_sims=45, x_init=x, f_init=f,
                    method_name=f"{n_act}-actor")
                foms.append(res.best_fom)
            out[n_act] = float(np.mean(foms))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["N_act sweep (mean best FoM over 3 runs, 45 sims):"]
    lines += [f"  N_act={k}: {v:.4f}" for k, v in out.items()]
    text = "\n".join(lines)
    write_result("ablation_num_actors.txt", text)
    print("\n" + text)
    assert all(np.isfinite(v) for v in out.values())
