"""Ablation (Eq. 3): pseudo-sample pairing vs plain state regression.

The critic is trained either on the paper's N^2 pseudo-sample pairs
(x_i, x_j - x_i) -> f(x_j), or on plain (x_j, 0) -> f(x_j) regression
without action diversity.  The pairing teaches the critic how metrics vary
*along actions*, which is what actor training differentiates through.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.fom import FigureOfMerit
from repro.core.networks import Critic
from repro.core.population import TotalDesignSet
from repro.core.pseudo import pseudo_sample_batch
from repro.core.synthetic import ConstrainedSphere


def _fill(task, n, seed):
    rng = np.random.default_rng(seed)
    fom = FigureOfMerit(task)
    total = TotalDesignSet(task.d, task.m + 1)
    for x in task.space.sample(rng, n):
        mv = task.evaluate(x)
        total.add(x, mv, float(fom(mv)))
    return total


def _action_generalization_error(critic, task, rng, n_probe=300):
    """MSE of critic predictions for *unseen* (state, action) pairs."""
    x = task.space.sample(rng, n_probe)
    dx = rng.uniform(-0.3, 0.3, size=x.shape)
    nxt = np.clip(x + dx, 0.0, 1.0)
    truth = task.evaluate_batch(nxt)
    pred = critic.predict(x, nxt - x)
    scale = truth.std(axis=0) + 1e-9
    return float(np.mean(((pred - truth) / scale) ** 2))


def test_pseudo_sample_ablation(benchmark):
    task = ConstrainedSphere(d=8, seed=9)
    total = _fill(task, 60, seed=1)

    def train(pairing: bool) -> float:
        rng = np.random.default_rng(5)
        critic = Critic(task.d, task.m + 1, hidden=(64, 64), lr=2e-3, seed=3)
        critic.fit_scaler(total.metrics)
        designs = total.designs
        metrics = total.metrics
        for _ in range(400):
            if pairing:
                inputs, targets = pseudo_sample_batch(total, 64, rng)
            else:
                idx = rng.integers(0, len(designs), size=64)
                inputs = np.concatenate(
                    [designs[idx], np.zeros_like(designs[idx])], axis=1)
                targets = metrics[idx]
            critic.train_step(inputs, targets)
        return _action_generalization_error(critic, task,
                                            np.random.default_rng(7))

    def run():
        return train(True), train(False)

    err_pairs, err_plain = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Pseudo-sample ablation (critic generalization MSE on unseen "
            f"actions):\n  with Eq.3 pairing: {err_pairs:.4f}\n"
            f"  plain regression:  {err_plain:.4f}")
    write_result("ablation_pseudo_samples.txt", text)
    print("\n" + text)
    # The pairing must clearly beat action-blind regression.
    assert err_pairs < err_plain
