"""The paper's premise: RL-inspired beats true RL at small sim budgets.

Section I: DDPG-style RL sizing frameworks "require thousands of SPICE
simulations"; DNN-Opt/MA-Opt exist to win at a few hundred.  This bench
runs the AutoCkt-style PPO agent against MA-Opt under the shared-budget
protocol on the synthetic task and records the gap.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.baselines import PPOSizer, RandomSearch
from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.experiments import make_initial_set

FAST = {"critic_steps": 30, "actor_steps": 15, "batch_size": 32,
        "n_elite": 10}


def test_rl_budget_comparison(benchmark):
    task = ConstrainedSphere(d=10, seed=7)

    def run():
        out = {"MA-Opt": [], "PPO": [], "Random": []}
        for rep in range(3):
            x, f = make_initial_set(task, 25, seed=400 + rep)
            cfg = MAOptConfig.from_preset("ma-opt", seed=rep, **FAST)
            out["MA-Opt"].append(
                MAOptimizer(task, cfg).run(n_sims=60, x_init=x,
                                           f_init=f).best_fom)
            out["PPO"].append(
                PPOSizer(task, seed=rep).run(n_sims=60, x_init=x,
                                             f_init=f).best_fom)
            out["Random"].append(
                RandomSearch(task, seed=rep).run(n_sims=60, x_init=x,
                                                 f_init=f).best_fom)
        return {k: float(np.mean(v)) for k, v in out.items()}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("RL budget comparison (mean best FoM, 60 sims, 3 repeats):\n"
            + "\n".join(f"  {k:8s} {v:.4f}" for k, v in out.items()))
    write_result("ablation_rl_budget.txt", text)
    print("\n" + text)
    # The paper's premise, quantitatively: MA-Opt beats true-RL PPO at this
    # budget (PPO barely improves on its random restarts).
    assert out["MA-Opt"] < out["PPO"]
