"""Table I: types and ranges of design parameters for the two-stage OTA.

The bench regenerates the table from the task's design space and times the
full evaluation of a single mid-space OTA design (the unit of work every
entry in Tables II/IV/VI is built from).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.circuits import TwoStageOTA
from repro.experiments import parameter_table


def test_table1_parameter_ranges(benchmark, bench_config):
    task = TwoStageOTA(fidelity=bench_config.fidelity)
    text = parameter_table(task)
    write_result("table1_ota_params.txt", text)
    print("\n" + text)
    u = np.full(task.d, 0.5)
    metrics = benchmark(task.evaluate, u)
    assert metrics.shape == (task.m + 1,)
    assert task.d == 16
