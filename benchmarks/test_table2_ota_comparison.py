"""Table II: algorithm comparison for the two-stage OTA.

Regenerates the paper's success-rate / min-power / log10-average-FoM /
runtime table under the shared-initial-set protocol.  Expected shape
(paper): RL-inspired methods beat BO everywhere; MA-Opt2 and MA-Opt reach
the highest success rates; MA-Opt attains the lowest min power and the
lowest (best) log10 average FoM.
"""

from benchmarks.conftest import write_result
from repro.experiments import comparison_table
from repro.experiments.tables import summarize_method


def test_table2_ota_comparison(benchmark, comparison_runner):
    bundle = benchmark.pedantic(
        comparison_runner, args=("ota",), rounds=1, iterations=1,
    )
    task, results = bundle["task"], bundle["results"]
    text = comparison_table(results, task, target_label="Min power (mW)")
    write_result("table2_ota_comparison.txt", text)
    print("\n" + text)

    rows = {m: summarize_method(r) for m, r in results.items()}
    # Sanity: every method ran the full budget on every repeat.
    for runs in results.values():
        assert all(r.n_sims >= 1 for r in runs)
    # Shape check (soft): the full MA-Opt should do at least as well as BO
    # on the final average FoM.
    # Shape assertion only at paper-scale budgets; scaled-down runs are
    # too noisy for stable method ordering (see EXPERIMENTS.md).
    if "BO" in rows and "MA-Opt" in rows and any(
            r.n_sims >= 150 for r in results["MA-Opt"]):
        assert rows["MA-Opt"]["log10_avg_fom"] <= rows["BO"]["log10_avg_fom"] + 0.3
