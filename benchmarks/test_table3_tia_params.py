"""Table III: types and ranges of design parameters for the 3-stage TIA."""

import numpy as np

from benchmarks.conftest import write_result
from repro.circuits import ThreeStageTIA
from repro.experiments import parameter_table


def test_table3_parameter_ranges(benchmark, bench_config):
    task = ThreeStageTIA(fidelity=bench_config.fidelity)
    text = parameter_table(task)
    write_result("table3_tia_params.txt", text)
    print("\n" + text)
    u = np.full(task.d, 0.5)
    metrics = benchmark(task.evaluate, u)
    assert metrics.shape == (task.m + 1,)
    assert task.d == 15
