"""Table IV: algorithm comparison for the three-stage TIA.

Paper shape: the TIA is the hardest task (DNN-Opt only 4/10 success);
MA-Opt2/MA-Opt reach full success and MA-Opt attains the lowest min power.
Note (documented in EXPERIMENTS.md): in this substrate, brute-force
high-power designs are occasionally feasible, so the success-rate contrast
compresses relative to the paper while the min-power/FoM contrasts remain.
"""

from benchmarks.conftest import write_result
from repro.experiments import comparison_table
from repro.experiments.tables import summarize_method


def test_table4_tia_comparison(benchmark, comparison_runner):
    bundle = benchmark.pedantic(
        comparison_runner, args=("tia",), rounds=1, iterations=1,
    )
    task, results = bundle["task"], bundle["results"]
    text = comparison_table(results, task, target_label="Min power (mW)")
    write_result("table4_tia_comparison.txt", text)
    print("\n" + text)
    rows = {m: summarize_method(r) for m, r in results.items()}
    # Shape assertion only at paper-scale budgets; scaled-down runs are
    # too noisy for stable method ordering (see EXPERIMENTS.md).
    if "BO" in rows and "MA-Opt" in rows and any(
            r.n_sims >= 150 for r in results["MA-Opt"]):
        assert rows["MA-Opt"]["log10_avg_fom"] <= rows["BO"]["log10_avg_fom"] + 0.3
