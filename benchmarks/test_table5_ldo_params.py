"""Table V: types and ranges of design parameters for the LDO regulator."""

import numpy as np

from benchmarks.conftest import write_result
from repro.circuits import LDORegulator
from repro.experiments import parameter_table


def test_table5_parameter_ranges(benchmark, bench_config):
    task = LDORegulator(fidelity=bench_config.fidelity)
    text = parameter_table(task)
    write_result("table5_ldo_params.txt", text)
    print("\n" + text)
    u = np.full(task.d, 0.5)
    metrics = benchmark(task.evaluate, u)
    assert metrics.shape == (task.m + 1,)
    assert task.d == 16
