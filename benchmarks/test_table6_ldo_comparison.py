"""Table VI: algorithm comparison for the LDO regulator.

Paper shape: RL-inspired methods beat BO; MA-Opt2/MA-Opt reach 10/10
success; MA-Opt attains the lowest quiescent current and the best (lowest)
log10 average FoM.
"""

from benchmarks.conftest import write_result
from repro.experiments import comparison_table
from repro.experiments.tables import summarize_method


def test_table6_ldo_comparison(benchmark, comparison_runner):
    bundle = benchmark.pedantic(
        comparison_runner, args=("ldo",), rounds=1, iterations=1,
    )
    task, results = bundle["task"], bundle["results"]
    text = comparison_table(results, task, target_label="Min Q.C. (mA)")
    write_result("table6_ldo_comparison.txt", text)
    print("\n" + text)
    rows = {m: summarize_method(r) for m, r in results.items()}
    # Shape assertion only at paper-scale budgets; scaled-down runs are
    # too noisy for stable method ordering (see EXPERIMENTS.md).
    if "BO" in rows and "MA-Opt" in rows and any(
            r.n_sims >= 150 for r in results["MA-Opt"]):
        assert rows["MA-Opt"]["log10_avg_fom"] <= rows["BO"]["log10_avg_fom"] + 0.3
