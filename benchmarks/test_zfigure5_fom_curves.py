"""Figure 5: average best-so-far FoM convergence for the three circuits.

The module name starts with ``test_z`` so it collects *after* the table
benches and reuses their memoized comparison runs; standalone invocation
simply computes them here.

Paper shape: on a log scale, MA-Opt's curve sits lowest over most of the
budget, with MA-Opt2 close behind, then DNN-Opt/MA-Opt1, with BO far above.
"""

from benchmarks.conftest import write_result
from repro.experiments import fom_curves
from repro.experiments.figures import curves_to_csv, render_ascii

CIRCUITS = ("ota", "tia", "ldo")


def test_figure5_fom_convergence(benchmark, comparison_runner):
    def build_all():
        return {c: comparison_runner(c) for c in CIRCUITS}

    bundles = benchmark.pedantic(build_all, rounds=1, iterations=1)
    for circuit in CIRCUITS:
        results = bundles[circuit]["results"]
        curves = fom_curves(results)
        art = render_ascii(curves, title=f"Fig. 5 ({circuit}): log10 avg FoM")
        csv = curves_to_csv(curves)
        write_result(f"figure5_{circuit}_curves.csv", csv)
        write_result(f"figure5_{circuit}_ascii.txt", art)
        print("\n" + art)
        # best-so-far traces must be monotone non-increasing
        for _, y in curves.values():
            assert all(b <= a + 1e-12 for a, b in zip(y, y[1:]))
