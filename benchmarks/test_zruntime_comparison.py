"""Runtime-fair comparison (the paper's "at the same runtime" analysis).

Section III-A: "by considering the difference in the simulation speed of
each optimization method, the average FoM of each method was compared based
on the total runtime of DNN-Opt."  This bench renders the run-averaged
best-so-far FoM against *wall-clock seconds* for the OTA comparison runs
(reusing the memoized Table II results; module name sorts after the table
benches).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.experiments.figures import fom_vs_runtime_curves, render_ascii


def test_runtime_fair_comparison(benchmark, comparison_runner):
    bundle = benchmark.pedantic(
        comparison_runner, args=("ota",), rounds=1, iterations=1,
    )
    results = bundle["results"]
    curves = fom_vs_runtime_curves(results, n_points=40)
    art = render_ascii(curves, title="OTA: log10 avg FoM vs wall-clock")
    write_result("runtime_ota_ascii.txt", art)
    print("\n" + art)

    rows = ["FoM at DNN-Opt's total runtime (the paper's normalization):"]
    if "DNN-Opt" in curves:
        t_ref = curves["DNN-Opt"][0][-1]
        for method, (t, y) in curves.items():
            y_at = np.interp(min(t_ref, t[-1]), t, y)
            rows.append(f"  {method:10s} log10(avg FoM) = {y_at:+.2f}")
    text = "\n".join(rows)
    write_result("runtime_ota_at_ref.txt", text)
    print("\n" + text)
    for _, y in curves.values():
        assert all(b <= a + 1e-12 for a, b in zip(y, y[1:]))
