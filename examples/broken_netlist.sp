* Deliberately broken deck: each marked line trips an ERC rule.
* Used by docs/static_analysis.md and the CI static-analysis job to
* prove `ma-opt lint` exits nonzero on an unsimulatable netlist.
*
* erc.vsource-loop   - V1 and V2 short each other (ideal-source loop)
* erc.floating-node  - 'dangle' is touched by a single terminal
* erc.no-dc-path     - 'island' connects only through capacitors
* erc.unit-suffix    - R2's value "10m" almost certainly meant 10meg
V1 a 0 DC 1.8
V2 a 0 DC 3.3
R1 a dangle 1k
C1 0 island 1p
C2 a island 1p
R2 a 0 10m
.end
