#!/usr/bin/env python3
"""Define your own sizing task and optimize it with MA-Opt.

This is the template a downstream user follows to bring a new circuit to
the optimizer: subclass :class:`~repro.circuits.common.CircuitTask`, build
a netlist per design, measure the metrics your specs need, and hand the
task to any optimizer in the repo.

The example sizes a resistively-loaded common-source amplifier for gain
and bandwidth at minimum power — small enough to read in one sitting, real
enough to exercise DC, AC, and the FoM machinery.

Usage:
    python examples/custom_circuit.py [--sims 30] [--init 20]
"""

import argparse

from repro import MAOptConfig, MAOptimizer
from repro.circuits.common import KOHM, UM, CircuitTask
from repro.core.problem import Spec, Target
from repro.core.space import DesignSpace, Parameter
from repro.spice import Circuit, NMOS_180, ac_analysis, operating_point
from repro.spice import measure as M
from repro.spice.ac import logspace_frequencies

VDD = 1.8


class CommonSourceAmp(CircuitTask):
    """Size (W, L, RL, Vbias) of a common-source stage.

    minimize power  s.t.  gain > 18 dB  and  f3dB > 50 MHz.
    """

    def __init__(self, fidelity: str = "fast") -> None:
        super().__init__(fidelity)
        self.name = "cs-amp"
        self.space = DesignSpace([
            Parameter("W", 1.0, 100.0, unit="um"),
            Parameter("L", 0.18, 2.0, unit="um"),
            Parameter("RL", 1.0, 50.0, unit="kOhm"),
            Parameter("Vb", 0.45, 1.0, unit="V"),
        ])
        self.target = Target("power", weight=10.0, fail_value=VDD * 1e-2,
                             unit="W")
        self.specs = [
            Spec("gain", ">", 18.0, fail_value=0.0, unit="dB"),
            Spec("f3db", ">", 50e6, fail_value=1e3, unit="Hz"),
        ]

    def build(self, params: dict[str, float]) -> Circuit:
        ckt = Circuit("cs-amp")
        ckt.add_vsource("Vdd", "vdd", "0", VDD)
        ckt.add_vsource("Vin", "g", "0", params["Vb"], ac=1.0)
        ckt.add_resistor("RL", "vdd", "d", params["RL"] * KOHM)
        ckt.add_capacitor("CL", "d", "0", 200e-15)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180,
                       w=params["W"] * UM, l=params["L"] * UM)
        return ckt

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        ckt = self.build(params)
        op = operating_point(ckt)
        metrics = {"power": VDD * abs(op.branch_current("Vdd"))}
        freqs = logspace_frequencies(1e3, 1e10, self.fid.ac_ppd)
        h = ac_analysis(ckt, freqs, op).v("d")
        metrics["gain"] = float(M.db(h[0]))
        metrics["f3db"] = M.bandwidth_3db(freqs, h)
        return metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=50)
    parser.add_argument("--init", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = CommonSourceAmp()
    print(task.describe())

    config = MAOptConfig.from_preset(
        "ma-opt", seed=args.seed,
        critic_steps=30, actor_steps=15, batch_size=32, n_elite=8,
        action_scale=0.2,
    )
    result = MAOptimizer(task, config).run(n_sims=args.sims,
                                           n_init=args.init)
    best = result.best_feasible() or result.best_record()
    params = task.space.denormalize(best.x)
    print(f"\nmet specs: {result.success}")
    print(f"power = {best.metrics[0] * 1e6:.1f} uW, "
          f"gain = {best.metrics[1]:.1f} dB, "
          f"f3dB = {best.metrics[2] / 1e6:.1f} MHz")
    print("sizing: " + ", ".join(
        f"{k}={v:.3f}{task.space[k].unit}" for k, v in params.items()))


if __name__ == "__main__":
    main()
