#!/usr/bin/env python3
"""LDO regulator sizing with detailed bench playback of the winner.

Optimizes the 3.3 V -> 1.8 V LDO (minimize quiescent current at 50 mA
load subject to Eq. 9's nine constraints), then replays the winning design
through the individual measurement benches so you can see the actual
regulation numbers and transient settling times.

Usage:
    python examples/ldo_sizing.py [--sims 40] [--init 30] [--seed 0]
"""

import argparse

from repro import MAOptConfig, MAOptimizer
from repro.circuits import LDORegulator
from repro.circuits.ldo import build_ldo
from repro.experiments.config import TUNED_MAOPT
from repro.spice import operating_point


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=40)
    parser.add_argument("--init", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = LDORegulator(fidelity="fast")
    print(task.describe())

    config = MAOptConfig.from_preset(
        "ma-opt", seed=args.seed,
        **TUNED_MAOPT,
    )
    print(f"\noptimizing: {args.init} init + {args.sims} sims ...")
    result = MAOptimizer(task, config).run(n_sims=args.sims,
                                           n_init=args.init)
    best = result.best_feasible() or result.best_record()
    params = task.space.denormalize(best.x)

    print(f"\nmet all specs: {result.success}")
    print("winning sizing:")
    for name, value in params.items():
        print(f"  {name:4s} = {value:8.3f} {task.space[name].unit}")

    print("\nspec scorecard:")
    for spec, value in zip(task.specs, best.metrics[1:]):
        mark = "PASS" if spec.satisfied(value) else "FAIL"
        print(f"  [{mark}] {spec.name:10s} = {value:.4g}  "
              f"(need {spec.kind} {spec.bound:g} {spec.unit})")
    print(f"  quiescent current = {best.metrics[0] * 1e3:.4f} mA")

    # Replay the DC bench on the winner for a closer look.
    print("\nDC operating point of the winner (nominal 3.3 V, 50 mA):")
    op = operating_point(build_ldo(params))
    for node in ("vout", "fb", "vg", "nb", "tail"):
        print(f"  v({node}) = {op.v(node):.4f} V")
    pass_info = op.element_info("MP")
    print(f"  pass device: |Id| = {abs(pass_info['id']) * 1e3:.1f} mA, "
          f"gm = {pass_info['gm'] * 1e3:.1f} mS")


if __name__ == "__main__":
    main()
