#!/usr/bin/env python3
"""Two-stage OTA sizing: MA-Opt vs DNN-Opt under the paper's protocol.

Mirrors Section III-B1 of the paper at a configurable scale: a shared
random initial set, equal simulation budgets, then a side-by-side report
of success, minimum power, and the FoM convergence curve (the Table II /
Fig. 5a experiment).

Usage:
    python examples/ota_sizing.py [--sims 60] [--init 40] [--runs 1]
    python examples/ota_sizing.py --full          # paper scale (slow)
"""

import argparse

from repro.circuits import TwoStageOTA
from repro.experiments import comparison_table, fom_curves, run_comparison
from repro.experiments.config import TUNED_MAOPT as MAOPT_OVERRIDES
from repro.experiments.figures import render_ascii


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=60)
    parser.add_argument("--init", type=int, default=40)
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--methods", default="DNN-Opt,MA-Opt")
    parser.add_argument("--full", action="store_true",
                        help="paper protocol: 10 runs x 200 sims x 100 init")
    args = parser.parse_args()
    if args.full:
        args.runs, args.sims, args.init = 10, 200, 100

    task = TwoStageOTA(fidelity="full" if args.full else "fast")
    methods = [m.strip() for m in args.methods.split(",")]
    print(task.describe())
    print(f"\ncomparing {methods}: {args.runs} run(s), "
          f"{args.init} init + {args.sims} sims each\n")

    results = run_comparison(task, methods, n_runs=args.runs,
                             n_sims=args.sims, n_init=args.init,
                             seed=args.seed, verbose=True,
                             maopt_overrides=MAOPT_OVERRIDES)
    print()
    print(comparison_table(results, task, target_label="Min power (mW)"))
    print()
    print(render_ascii(fom_curves(results),
                       title="Fig. 5a: OTA FoM convergence"))


if __name__ == "__main__":
    main()
