#!/usr/bin/env python3
"""Quickstart: size a two-stage OTA with MA-Opt in a couple of minutes.

Runs the full pipeline end to end at a small scale:

1. build the two-stage OTA sizing task (16 parameters, the 8 constraints
   of the paper's Eq. 7, minimize power),
2. simulate a shared random initial set on the built-in SPICE engine,
3. run MA-Opt (3 actors, shared elite set, near-sampling),
4. report the best design found and its measured performance.

Usage:
    python examples/quickstart.py [--sims 40] [--init 30] [--seed 0]
"""

import argparse

import numpy as np

from repro import MAOptConfig, MAOptimizer, TwoStageOTA
from repro.circuits.ota import build_ota
from repro.experiments.config import TUNED_MAOPT


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=40,
                        help="simulation budget after initialization")
    parser.add_argument("--init", type=int, default=30,
                        help="random initial samples")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = TwoStageOTA(fidelity="fast")
    print(task.describe())
    print()

    config = MAOptConfig.from_preset(
        "ma-opt", seed=args.seed,
        **TUNED_MAOPT,
    )
    optimizer = MAOptimizer(task, config)
    print(f"running MA-Opt: {args.init} init + {args.sims} optimized sims ...")
    result = optimizer.run(n_sims=args.sims, n_init=args.init)

    trace = result.best_fom_trace()
    print(f"\nbest FoM: {trace[0]:.4f} (init) -> {trace[-1]:.4f} (final)")
    print(f"met all specs: {result.success}")

    best = result.best_feasible() or result.best_record()
    params = task.space.denormalize(best.x)
    print("\nbest design found:")
    for name, value in params.items():
        unit = task.space[name].unit
        print(f"  {name:4s} = {value:8.3f} {unit}")
    print("\nmeasured performance:")
    for name, value in zip(task.metric_names, best.metrics):
        print(f"  {name:10s} = {value:.4g}")

    print("\nnetlist of the best design:")
    print(build_ota(params).netlist_text())


if __name__ == "__main__":
    main()
