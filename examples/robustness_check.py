#!/usr/bin/env python3
"""Post-sizing verification: process corners and Monte Carlo mismatch.

A production sizing flow never stops at the nominal corner.  This example
takes a known-good OTA sizing, re-measures it at the five process corners
(TT/FF/SS/FS/SF), and estimates the input-offset spread under Pelgrom
mismatch — the analyses a designer runs before signing a schematic off.

Usage:
    python examples/robustness_check.py [--mc 40]
"""

import argparse

import numpy as np

from repro.circuits import TwoStageOTA
from repro.circuits.ota import build_ota
from repro.spice import monte_carlo, operating_point
from repro.spice.corners import CORNER_NAMES, corner_models

# The validated reference sizing from the test suite.
SIZING = {
    "L1": 0.4, "L2": 0.5, "L3": 1.0, "L4": 0.5, "L5": 0.5,
    "W1": 60.0, "W2": 15.0, "W3": 20.0, "W4": 30.0, "W5": 10.0,
    "R": 57.5, "C": 300.0, "Cf": 800.0,
    "N1": 1, "N2": 10, "N3": 10,
}


def corner_sweep() -> None:
    print("=== corner sweep "
          "(re-running the full measurement bench per corner) ===")
    header = f"{'corner':8s}{'feasible':>10s}{'power mW':>10s}" \
             f"{'gain dB':>9s}{'PM deg':>8s}{'UGF MHz':>9s}"
    print(header)
    for corner in CORNER_NAMES:
        task = TwoStageOTA(fidelity="fast", corner=corner)
        mv = task.evaluate(task.space.normalize(SIZING))
        named = dict(zip(task.metric_names, mv))
        print(f"{corner:8s}{str(task.is_feasible(mv)):>10s}"
              f"{named['power'] * 1e3:>10.3f}{named['dc_gain']:>9.1f}"
              f"{named['pm']:>8.1f}{named['ugf'] / 1e6:>9.1f}")


def temperature_sweep() -> None:
    print("\n=== temperature sweep (TT corner) ===")
    print(f"{'temp':>8s}{'feasible':>10s}{'power mW':>10s}{'gain dB':>9s}")
    for temp_c in (-40.0, 27.0, 85.0, 125.0):
        task = TwoStageOTA(fidelity="fast", temp_c=temp_c)
        mv = task.evaluate(task.space.normalize(SIZING))
        named = dict(zip(task.metric_names, mv))
        print(f"{temp_c:>6.0f}C{str(task.is_feasible(mv)):>11s}"
              f"{named['power'] * 1e3:>10.3f}{named['dc_gain']:>9.1f}")


def offset_monte_carlo(n_samples: int) -> None:
    print(f"\n=== input-offset Monte Carlo ({n_samples} samples) ===")

    def build():
        return build_ota(SIZING, closed_loop=True)

    def offset(ckt) -> float:
        op = operating_point(ckt)
        # unity-gain buffer: offset = v(out) - v(in+)
        return op.v("out") - 0.9

    spread = monte_carlo(build, offset, n_samples,
                         rng=np.random.default_rng(0))
    ok = spread[np.isfinite(spread)]
    print(f"valid samples : {ok.size}/{n_samples}")
    print(f"offset mean   : {1e3 * np.mean(ok):+.3f} mV")
    print(f"offset sigma  : {1e3 * np.std(ok):.3f} mV")
    print(f"|offset| > 5mV: {np.mean(np.abs(ok) > 5e-3):.1%}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mc", type=int, default=40,
                        help="Monte Carlo sample count")
    args = parser.parse_args()
    corner_sweep()
    temperature_sweep()
    offset_monte_carlo(args.mc)


if __name__ == "__main__":
    main()
