#!/usr/bin/env python3
"""Tour of the built-in circuit simulator — no optimizer involved.

Parses a hand-written SPICE deck (with a subcircuit), lints it, prints the
operating point, runs AC / transient / noise / .TF analyses, and sweeps a
device width.  Run it to sanity-check the simulator or as a template for
bringing your own decks.

Usage:
    python examples/spice_playground.py
"""

import numpy as np

from repro.spice import (
    ac_analysis,
    noise_analysis,
    op_report,
    operating_point,
    parse_netlist,
    transfer_function,
    transient_analysis,
)
from repro.spice import measure as M
from repro.spice.ac import logspace_frequencies
from repro.spice.lint import lint_circuit
from repro.spice.sweep import param_sweep

DECK = """
five-transistor OTA playground
.subckt ota5t inp inn out vdd
Mtail tail bias 0 0 nmos180 W=20u L=1u
M1    d1   inp  tail 0 nmos180 W=40u L=0.5u
M2    out  inn  tail 0 nmos180 W=40u L=0.5u
M3    d1   d1   vdd vdd pmos180 W=20u L=0.5u
M4    out  d1   vdd vdd pmos180 W=20u L=0.5u
Rb    vdd  bias 60k
Mb    bias bias 0 0 nmos180 W=20u L=1u
.ends

Vdd vdd 0 1.8
Vp  inp 0 DC 0.9 AC 0.5
Vn  inn 0 DC 0.9 AC -0.5
X1  inp inn out vdd ota5t
CL  out 0 1p
.end
"""


def main() -> None:
    ckt = parse_netlist(DECK)
    print(f"parsed {len(ckt.elements)} elements, {ckt.n_nodes} nodes")
    warnings = lint_circuit(ckt)
    print("lint:", warnings or "clean")

    op = operating_point(ckt)
    print()
    print(op_report(op))

    freqs = logspace_frequencies(1e2, 1e9, 6)
    h = ac_analysis(ckt, freqs, op).v("out")
    print(f"\ndifferential gain: {M.db(h[0]):.1f} dB, "
          f"f3dB = {M.bandwidth_3db(freqs, h):.3e} Hz, "
          f"UGF = {M.unity_gain_frequency(freqs, h):.3e} Hz")

    tf = transfer_function(ckt, "Vp", "out", x_op=op)
    print(f".TF: gain={tf.gain:.1f}, Rout={tf.output_resistance / 1e3:.1f} kOhm")

    nz = noise_analysis(ckt, "out", logspace_frequencies(1e2, 1e7, 4),
                        input_source="Vp", x_op=op)
    print(f"integrated output noise (100 Hz - 10 MHz): "
          f"{nz.integrated_output_noise() * 1e6:.1f} uVrms")
    top = max(nz.contributions.items(), key=lambda kv: kv[1][0])
    print(f"dominant low-frequency noise source: {top[0]}")

    # Step response of the same amp in unity-gain (rewired deck).
    buf = parse_netlist(DECK.replace("Vn  inn 0 DC 0.9 AC -0.5",
                                     "Rfb out inn 1")
                        .replace("Vp  inp 0 DC 0.9 AC 0.5",
                                 "Vp inp 0 PULSE(0.9 1.1 50n 1n 1n 1)"))
    tr = transient_analysis(buf, 1e-6, 2e-9)
    ts = M.settling_time(tr.times, tr.v("out"), tol=0.01, t_start=51e-9)
    print(f"unity-gain settling (1%): "
          f"{'n/a' if ts is None else f'{ts * 1e9:.1f} ns'}")

    # Design exploration: gain vs input-pair width.
    widths = np.array([10e-6, 20e-6, 40e-6, 80e-6])
    gains = param_sweep(
        ckt, "X1.M1", "w", widths,
        measure=lambda o: o.element_info("X1.M1")["gm"])
    print("\ninput-pair gm vs W1:")
    for w, gm in zip(widths, gains):
        print(f"  W={w * 1e6:5.1f} um  gm={gm * 1e3:.3f} mS")


if __name__ == "__main__":
    main()
