#!/usr/bin/env python3
"""Three-stage TIA sizing with a look at the loop-gain measurement.

Optimizes the TIA (minimize power s.t. Eq. 8: gain / UGF / input noise),
then prints the winner's loop-gain Bode points — the injection-based
measurement behind the paper's DC-gain and UGF numbers.

Usage:
    python examples/tia_sizing.py [--sims 40] [--init 30] [--seed 0]
"""

import argparse

import numpy as np

from repro import MAOptConfig, MAOptimizer
from repro.circuits import ThreeStageTIA
from repro.circuits.tia import build_tia
from repro.experiments.config import TUNED_MAOPT
from repro.spice import ac_analysis, operating_point
from repro.spice import measure as M
from repro.spice.ac import logspace_frequencies


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=40)
    parser.add_argument("--init", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = ThreeStageTIA(fidelity="fast")
    print(task.describe())

    config = MAOptConfig.from_preset(
        "ma-opt", seed=args.seed,
        **TUNED_MAOPT,
    )
    print(f"\noptimizing: {args.init} init + {args.sims} sims ...")
    result = MAOptimizer(task, config).run(n_sims=args.sims,
                                           n_init=args.init)
    best = result.best_feasible() or result.best_record()
    params = task.space.denormalize(best.x)

    print(f"\nmet all specs: {result.success}")
    print(f"power = {best.metrics[0] * 1e3:.3f} mW")
    for spec, value in zip(task.specs, best.metrics[1:]):
        mark = "PASS" if spec.satisfied(value) else "FAIL"
        print(f"  [{mark}] {spec.name:10s} = {value:.4g} {spec.unit}")

    # Loop-gain Bode playback (voltage injection at the amplifier output).
    ckt = build_tia(params)
    op = operating_point(ckt)
    freqs = logspace_frequencies(1e3, 3e10, 4)
    ckt["Iin"].ac = 0.0
    ckt["Vinj"].ac = 1.0
    ac = ac_analysis(ckt, freqs, op)
    loop = -ac.v("out") / ac.v("fbr")
    print("\nloop gain |T(f)| of the winner:")
    for f, t in zip(freqs[::6], loop[::6]):
        bar = "#" * max(0, int(M.db(abs(t)) / 3))
        print(f"  {f:10.3e} Hz  {M.db(abs(t)):7.1f} dB  {bar}")
    ugf = M.unity_gain_frequency(freqs, loop)
    print(f"\nunity-gain crossover: "
          f"{'not in range' if ugf is None else f'{ugf:.3e} Hz'}")


if __name__ == "__main__":
    main()
