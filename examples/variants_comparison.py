#!/usr/bin/env python3
"""All five paper methods side by side on a circuit of your choice.

Regenerates the paper's Table II/IV/VI row set and the matching Fig. 5
panel for one circuit (default: the fast synthetic stand-in so the demo
finishes in under a minute; pass --circuit ota/tia/ldo for the real ones).

Usage:
    python examples/variants_comparison.py --circuit ota --sims 50 --runs 2
"""

import argparse

from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA
from repro.core.synthetic import ConstrainedSphere
from repro.experiments import comparison_table, fom_curves, run_comparison
from repro.experiments.config import TUNED_MAOPT as MAOPT_OVERRIDES
from repro.experiments.figures import curves_to_csv, render_ascii

TASKS = {
    "sphere": lambda: ConstrainedSphere(d=12, seed=3),
    "ota": lambda: TwoStageOTA(fidelity="fast"),
    "tia": lambda: ThreeStageTIA(fidelity="fast"),
    "ldo": lambda: LDORegulator(fidelity="fast"),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", choices=sorted(TASKS), default="sphere")
    parser.add_argument("--sims", type=int, default=45)
    parser.add_argument("--init", type=int, default=30)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", help="write Fig. 5 series to this file")
    parser.add_argument("--save-dir",
                        help="archive every run (.npz + manifest) here")
    args = parser.parse_args()

    task = TASKS[args.circuit]()
    methods = ["BO", "DNN-Opt", "MA-Opt1", "MA-Opt2", "MA-Opt"]
    print(f"comparing {methods} on {task.name!r}: "
          f"{args.runs} runs x ({args.init} init + {args.sims} sims)\n")
    results = run_comparison(task, methods, n_runs=args.runs,
                             n_sims=args.sims, n_init=args.init,
                             seed=args.seed, verbose=True,
                             maopt_overrides=MAOPT_OVERRIDES)
    print()
    print(comparison_table(results, task))
    print()
    curves = fom_curves(results)
    print(render_ascii(curves, title=f"FoM convergence on {task.name}"))
    if args.runs >= 3:
        from repro.experiments.tables import render_significance

        print()
        print(render_significance(results))
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(curves_to_csv(curves))
        print(f"\nwrote series to {args.csv}")
    if args.save_dir:
        from repro.core.serialize import save_comparison

        written = save_comparison(results, args.save_dir)
        print(f"archived {len(written)} runs to {args.save_dir}")


if __name__ == "__main__":
    main()
