"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(no wheel package is available in this environment)."""
from setuptools import setup

setup()
