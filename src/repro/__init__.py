"""MA-Opt reproduction: multi-actor RL-inspired analog circuit sizing.

This package reproduces "MA-Opt: Reinforcement Learning-based Analog Circuit
Optimization using Multi-Actors" (DATE 2023) end to end:

* :mod:`repro.nn` — a small numpy neural-network library (MLPs, Adam,
  backprop) standing in for PyTorch.
* :mod:`repro.spice` — a Modified-Nodal-Analysis circuit simulator (DC, AC,
  transient, noise) standing in for HSpice.
* :mod:`repro.circuits` — the paper's three benchmark circuits (two-stage
  OTA, three-stage TIA, LDO regulator) as parametric sizing tasks.
* :mod:`repro.core` — the MA-Opt optimizer itself (multi-actor actor-critic
  training, shared elite solution set, near-sampling) plus the DNN-Opt,
  MA-Opt1 and MA-Opt2 ablation variants.
* :mod:`repro.baselines` — Bayesian optimization, random search, PSO and
  differential evolution baselines.
* :mod:`repro.experiments` — runners that regenerate every table and figure
  of the paper's evaluation section.
"""

__version__ = "1.0.0"

# Public names are resolved lazily (PEP 562) so that subpackages — notably
# the heavy optimizer stack — are only imported when actually used.
_PUBLIC = {
    "MAOptConfig": ("repro.core.config", "MAOptConfig"),
    "VariantPreset": ("repro.core.config", "VariantPreset"),
    "FigureOfMerit": ("repro.core.fom", "FigureOfMerit"),
    "MAOptimizer": ("repro.core.ma_opt", "MAOptimizer"),
    "OptimizationResult": ("repro.core.result", "OptimizationResult"),
    "TwoStageOTA": ("repro.circuits", "TwoStageOTA"),
    "ThreeStageTIA": ("repro.circuits", "ThreeStageTIA"),
    "LDORegulator": ("repro.circuits", "LDORegulator"),
    "ResilienceConfig": ("repro.core.config", "ResilienceConfig"),
    "FaultyTask": ("repro.resilience", "FaultyTask"),
}

__all__ = [*_PUBLIC, "__version__"]


def __getattr__(name: str):
    try:
        module_name, attr = _PUBLIC[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
