"""``repro.analysis`` — static analysis before anything expensive runs.

MA-Opt's whole premise is a tight simulation budget (Alg. 3: ~200 sims);
a malformed netlist or a self-inconsistent configuration wastes exactly
that resource.  This subsystem catches both *statically*, plus the repo's
own coding invariants, behind one ``ma-opt lint`` command:

* :mod:`repro.analysis.erc` — electrical rule checks over netlists
  (topology + device values), also wired as the pre-simulation gate in
  :class:`~repro.core.parallel.SimulationExecutor`;
* :mod:`repro.analysis.configlint` — cross-field validation of
  :class:`~repro.core.config.MAOptConfig` / run plans / design spaces;
* :mod:`repro.analysis.codelint` — AST linter enforcing repo invariants
  (no global RNG, no pickle, no wall-clock in ``core/``, ...);
* :mod:`repro.analysis.rngflow` / :mod:`repro.analysis.concurrency` —
  flow-sensitive passes over the shared dataflow core
  (:mod:`repro.analysis.flow`): Generator provenance and worker-safety
  of code submitted through :mod:`repro.core.parallel`;
* :mod:`repro.analysis.shapes` — symbolic checks of the paper's
  dimensional contracts (critic ``2d -> m+1``, actor ``d -> d``,
  ``N_es`` bound, near-sampling box);
* :mod:`repro.analysis.locks` / :mod:`repro.analysis.dynrace` — the
  race-detection layer for the threaded obs/parallel code: a static
  lockset/guarded-by analyzer (``flow.lock.*``, ``ma-opt lint
  --locks``) and a runtime race sanitizer (``race.*``, ``ma-opt
  sanitize <cmd>``);
* :mod:`repro.analysis.taint` / :mod:`repro.analysis.protoconform` —
  the service-boundary layer for :mod:`repro.serve`: cross-file taint
  tracking of untrusted job specs into path/exec/budget/format/frame
  sinks (``flow.taint.*``, ``ma-opt lint --taint``) and protocol /
  lifecycle conformance against the declared state machine, op table
  and error codes (``proto.*``, ``ma-opt lint --proto``).

Deployment infrastructure: an incremental content-hash result cache
(:mod:`repro.analysis.cache`), a committed baseline ratchet that freezes
pre-existing findings while new ones hard-fail
(:mod:`repro.analysis.baseline`), and a SARIF 2.1.0 renderer for GitHub
code scanning (:mod:`repro.analysis.sarif`).

All analyzers emit the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model (rule id,
severity, location, message, suggested fix) rendered as text, JSONL or
SARIF with ``--select``/``--ignore`` filtering and conventional exit
codes.  See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_PATH
from repro.analysis.cache import (
    AnalysisCache,
    DEFAULT_CACHE_PATH,
    analyzer_fingerprint,
)
from repro.analysis.codelint import (
    CODE_RULES,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.concurrency import CONC_RULES
from repro.analysis.concurrency import check_paths as check_concurrency
from repro.analysis.configlint import (
    CFG_RULES,
    ConfigLintError,
    check_config,
    validate_config,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Rule,
    RuleSet,
    Severity,
    exit_code,
    filter_diagnostics,
    has_errors,
    max_severity,
    render_jsonl,
    render_text,
    sort_diagnostics,
)
from repro.analysis.erc import (
    ERC_RULES,
    assert_clean,
    gate_errors,
    is_simulatable,
    lint_circuit,
    lint_deck,
    run_erc,
)
from repro.analysis.dynrace import (
    RACE_RULES,
    RaceSanitizer,
    schedule_torture,
)
from repro.analysis.locks import LOCK_RULES
from repro.analysis.locks import check_paths as check_locks
from repro.analysis.protoconform import PROTO_RULES
from repro.analysis.protoconform import check_paths as check_protoconform
from repro.analysis.rngflow import RNG_RULES
from repro.analysis.rngflow import check_paths as check_rngflow
from repro.analysis.sarif import render_sarif, to_sarif
from repro.analysis.shapes import SHAPE_RULES, check_shapes
from repro.analysis.taint import TAINT_RULES
from repro.analysis.taint import check_paths as check_taint

__all__ = [
    "AnalysisCache",
    "Baseline",
    "CODE_RULES",
    "CFG_RULES",
    "CONC_RULES",
    "ConfigLintError",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "Diagnostic",
    "ERC_RULES",
    "LOCK_RULES",
    "PROTO_RULES",
    "RACE_RULES",
    "RNG_RULES",
    "RaceSanitizer",
    "Rule",
    "RuleSet",
    "SHAPE_RULES",
    "Severity",
    "TAINT_RULES",
    "analyzer_fingerprint",
    "assert_clean",
    "check_concurrency",
    "check_config",
    "check_locks",
    "check_protoconform",
    "check_rngflow",
    "check_shapes",
    "check_taint",
    "exit_code",
    "filter_diagnostics",
    "gate_errors",
    "has_errors",
    "is_simulatable",
    "lint_circuit",
    "lint_deck",
    "lint_file",
    "lint_paths",
    "lint_source",
    "max_severity",
    "render_jsonl",
    "render_sarif",
    "render_text",
    "run_erc",
    "schedule_torture",
    "sort_diagnostics",
    "to_sarif",
    "validate_config",
]

#: Catalogs of every analyzer, in documentation order.
RULE_SETS = (ERC_RULES, CFG_RULES, CODE_RULES, RNG_RULES, CONC_RULES,
             LOCK_RULES, RACE_RULES, SHAPE_RULES, TAINT_RULES,
             PROTO_RULES)


def all_rules():
    """Every registered rule across all analyzers (catalog order)."""
    out = []
    for ruleset in RULE_SETS:
        out.extend(ruleset)
    return out
