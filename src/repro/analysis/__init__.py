"""``repro.analysis`` — static analysis before anything expensive runs.

MA-Opt's whole premise is a tight simulation budget (Alg. 3: ~200 sims);
a malformed netlist or a self-inconsistent configuration wastes exactly
that resource.  This subsystem catches both *statically*, plus the repo's
own coding invariants, behind one ``ma-opt lint`` command:

* :mod:`repro.analysis.erc` — electrical rule checks over netlists
  (topology + device values), also wired as the pre-simulation gate in
  :class:`~repro.core.parallel.SimulationExecutor`;
* :mod:`repro.analysis.configlint` — cross-field validation of
  :class:`~repro.core.config.MAOptConfig` / run plans / design spaces;
* :mod:`repro.analysis.codelint` — AST linter enforcing repo invariants
  (no global RNG, no pickle, no wall-clock in ``core/``, ...).

All three emit the shared :class:`~repro.analysis.diagnostics.Diagnostic`
model (rule id, severity, location, message, suggested fix) rendered as
text or JSONL with ``--select``/``--ignore`` filtering and conventional
exit codes.  See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.analysis.codelint import (
    CODE_RULES,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.configlint import (
    CFG_RULES,
    ConfigLintError,
    check_config,
    validate_config,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Rule,
    RuleSet,
    Severity,
    exit_code,
    filter_diagnostics,
    has_errors,
    max_severity,
    render_jsonl,
    render_text,
    sort_diagnostics,
)
from repro.analysis.erc import (
    ERC_RULES,
    assert_clean,
    gate_errors,
    is_simulatable,
    lint_circuit,
    lint_deck,
    run_erc,
)

__all__ = [
    "CODE_RULES",
    "CFG_RULES",
    "ConfigLintError",
    "Diagnostic",
    "ERC_RULES",
    "Rule",
    "RuleSet",
    "Severity",
    "assert_clean",
    "check_config",
    "exit_code",
    "filter_diagnostics",
    "gate_errors",
    "has_errors",
    "is_simulatable",
    "lint_circuit",
    "lint_deck",
    "lint_file",
    "lint_paths",
    "lint_source",
    "max_severity",
    "render_jsonl",
    "render_text",
    "run_erc",
    "sort_diagnostics",
    "validate_config",
]


def all_rules():
    """Every registered rule across the three analyzers (catalog order)."""
    out = []
    for ruleset in (ERC_RULES, CFG_RULES, CODE_RULES):
        out.extend(ruleset)
    return out
