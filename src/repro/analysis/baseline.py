"""Baseline / ratchet for lint findings.

Turning an advisory linter into a CI gate on a repo with pre-existing
findings normally forces a big-bang cleanup.  The ratchet avoids that:
existing findings are recorded in a committed baseline file and
tolerated; anything *not* in the baseline hard-fails.  The baseline can
only shrink (re-running ``--update-baseline`` after a cleanup drops the
fixed entries), so quality ratchets monotonically.

Fingerprints are deliberately line-number independent — hashed from
``rule | path | message-with-line-numbers-stripped`` — so an unrelated
edit that shifts a frozen finding by a few lines does not resurrect it.
Identical findings are disambiguated by count: a baseline entry with
``count: 2`` tolerates at most two live occurrences of that fingerprint;
a third is new.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

#: Default committed location, repo-root relative.
DEFAULT_BASELINE_PATH = "lint-baseline.json"

_SCHEMA_VERSION = 1

_LINE_RE = re.compile(r":(\d+)\b")


def _strip_line(location: str) -> str:
    """``src/x.py:71`` -> ``src/x.py`` (keep findings stable under
    unrelated edits that shift line numbers)."""
    return _LINE_RE.sub("", location)


def fingerprint(diag: Diagnostic) -> str:
    """Line-number-independent identity of one finding."""
    raw = f"{diag.rule}|{_strip_line(diag.location)}|{diag.message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass
class BaselineResult:
    """Outcome of screening live findings against a baseline."""

    new: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    #: Baseline fingerprints with no (or fewer) live findings — the
    #: cleanup happened; ``--update-baseline`` will drop them.
    stale: list[str] = field(default_factory=list)


class Baseline:
    """A committed map of tolerated finding fingerprints -> counts."""

    def __init__(self, counts: dict[str, int] | None = None,
                 meta: dict[str, str] | None = None):
        self.counts: dict[str, int] = dict(counts or {})
        #: fingerprint -> human-readable reminder of what it froze
        self.meta: dict[str, str] = dict(meta or {})

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        """Load a baseline file; a missing file is an *empty* baseline
        (every finding is new — the strictest gate)."""
        p = pathlib.Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text(encoding="utf-8"))
        if data.get("schema") != _SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema {data.get('schema')!r} "
                f"in {p}")
        entries = data.get("findings", {})
        counts = {fp: int(e["count"]) for fp, e in entries.items()}
        meta = {fp: str(e.get("summary", "")) for fp, e in entries.items()}
        return cls(counts=counts, meta=meta)

    def save(self, path: str | pathlib.Path) -> None:
        findings = {
            fp: {"count": n, "summary": self.meta.get(fp, "")}
            for fp, n in sorted(self.counts.items())
        }
        payload = {
            "schema": _SCHEMA_VERSION,
            "comment": ("Frozen pre-existing lint findings; new findings "
                        "fail CI.  Regenerate with "
                        "'ma-opt lint ... --update-baseline'."),
            "findings": findings,
        }
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    # -- screening ------------------------------------------------------------

    def apply(self, diagnostics) -> BaselineResult:
        """Split live findings into new vs baseline-suppressed, and
        report stale baseline capacity."""
        result = BaselineResult()
        seen: Counter[str] = Counter()
        for diag in diagnostics:
            fp = fingerprint(diag)
            seen[fp] += 1
            if seen[fp] <= self.counts.get(fp, 0):
                result.suppressed.append(diag)
            else:
                result.new.append(diag)
        for fp, allowed in sorted(self.counts.items()):
            if seen.get(fp, 0) < allowed:
                result.stale.append(fp)
        return result

    @classmethod
    def from_diagnostics(cls, diagnostics) -> "Baseline":
        """Build the baseline that freezes exactly these findings."""
        counts: Counter[str] = Counter()
        meta: dict[str, str] = {}
        for diag in diagnostics:
            fp = fingerprint(diag)
            counts[fp] += 1
            meta.setdefault(
                fp, f"{diag.rule} @ {_strip_line(diag.location)}: "
                    f"{diag.message}")
        return cls(counts=dict(counts), meta=meta)

    def __len__(self) -> int:
        return sum(self.counts.values())


__all__ = [
    "Baseline",
    "BaselineResult",
    "DEFAULT_BASELINE_PATH",
    "fingerprint",
]
