"""Incremental result cache for the per-file analysis passes.

Flow-sensitive linting re-parses and re-traverses every module on every
run; on a repo that changes one file at a time that is almost all wasted
work.  The cache maps ``(analyzer fingerprint, file content hash)`` to
the serialized diagnostics the analyzer produced last time, so an
unchanged file is a dictionary lookup instead of an AST walk.

Key design points:

* keys hash *content* (sha256), not mtimes — safe under checkouts,
  touch(1) and CI clones;
* the analyzer fingerprint folds in the analyzer name, its version tag
  and the sorted rule catalog, so editing a rule's severity or adding a
  rule invalidates every entry for that analyzer (and only that one);
* the store is a single human-diffable JSON file
  (:data:`DEFAULT_CACHE_PATH`), written atomically via rename;
* corruption is never fatal: an unreadable store starts empty.

Only per-file passes cache here.  Whole-program passes (the concurrency
pass's call graph, the shape contracts) depend on *other* files'
content, so a per-file key would be unsound for them — they always run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile

from repro.analysis.diagnostics import Diagnostic, RuleSet

#: Default store location, repo-root relative (git-ignored).
DEFAULT_CACHE_PATH = ".ma-opt-lint-cache.json"

#: Bump when the cache schema itself changes.
_SCHEMA_VERSION = 1


def content_hash(source: str) -> str:
    """sha256 of a file's text (the per-file half of a cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def analyzer_fingerprint(name: str, rules: RuleSet,
                         version: str = "1") -> str:
    """Stable hash of an analyzer's identity: its name, a manually bumped
    version tag, and the full rule catalog (ids, severities,
    descriptions).  Changing any rule invalidates that analyzer's
    entries."""
    h = hashlib.sha256()
    h.update(f"{name}:{version}".encode())
    for rule in sorted(rules, key=lambda r: r.id):
        h.update(f"|{rule.id}:{int(rule.severity)}:{rule.description}"
                 .encode())
    return h.hexdigest()[:16]


class AnalysisCache:
    """Content-addressed store of per-file analysis results.

    Usage::

        cache = AnalysisCache.load(path)
        diags = cache.get(fingerprint, source)
        if diags is None:
            diags = run_analyzer(source)
            cache.put(fingerprint, source, diags)
        ...
        cache.save()

    ``hits``/``misses`` counters make cache behaviour testable and let
    the CLI report effectiveness.
    """

    def __init__(self, path: str | pathlib.Path = DEFAULT_CACHE_PATH,
                 entries: dict[str, list[dict]] | None = None):
        self.path = pathlib.Path(path)
        self._entries: dict[str, list[dict]] = entries or {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | pathlib.Path = DEFAULT_CACHE_PATH
             ) -> "AnalysisCache":
        """Load a store; any corruption or version skew yields an empty
        cache rather than an error."""
        p = pathlib.Path(path)
        entries: dict[str, list[dict]] = {}
        try:
            data = json.loads(p.read_text(encoding="utf-8"))
            if data.get("schema") == _SCHEMA_VERSION and isinstance(
                    data.get("entries"), dict):
                entries = data["entries"]
        except (OSError, ValueError):
            pass
        return cls(path=p, entries=entries)

    def save(self) -> None:
        """Atomically write the store (rename over the old file).  A
        read-only location degrades to not caching, silently."""
        if not self._dirty:
            return
        payload = json.dumps(
            {"schema": _SCHEMA_VERSION, "entries": self._entries},
            sort_keys=True, indent=0)
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent or pathlib.Path(".")),
                prefix=self.path.name, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
            self._dirty = False
        except OSError:
            pass

    # -- lookups --------------------------------------------------------------

    @staticmethod
    def _key(fingerprint: str, path: str, source: str) -> str:
        # The path is part of the key because diagnostics embed
        # ``path:line`` locations — identical content at two paths must
        # not replay each other's findings.
        return f"{fingerprint}:{path}:{content_hash(source)}"

    def get(self, fingerprint: str, path: str, source: str
            ) -> list[Diagnostic] | None:
        """Cached diagnostics for (analyzer, path, content), or None."""
        raw = self._entries.get(self._key(fingerprint, path, source))
        if raw is None:
            self.misses += 1
            return None
        self.hits += 1
        return [Diagnostic.from_dict(d) for d in raw]

    def put(self, fingerprint: str, path: str, source: str,
            diagnostics: list[Diagnostic]) -> None:
        self._entries[self._key(fingerprint, path, source)] = [
            d.to_dict() for d in diagnostics]
        self._dirty = True

    def cached_call(self, fingerprint: str, path: str, source: str, run,
                    ) -> list[Diagnostic]:
        """``run(source, path) -> list[Diagnostic]`` through the cache."""
        diags = self.get(fingerprint, path, source)
        if diags is None:
            diags = run(source, path)
            self.put(fingerprint, path, source, diags)
        return diags

    def __len__(self) -> int:
        return len(self._entries)


__all__ = [
    "AnalysisCache",
    "DEFAULT_CACHE_PATH",
    "analyzer_fingerprint",
    "content_hash",
]
