"""Repo-invariant AST linter for the ``repro`` source tree.

PRs 1–2 established conventions the test suite cannot easily police
(they are invisible until a rare codepath runs); this linter makes them
machine-checked so they cannot silently regress:

* ``code.global-rng`` — no module-level :mod:`numpy.random` sampling
  (``np.random.uniform(...)``): all randomness must flow through a
  threaded :class:`numpy.random.Generator` so runs stay reproducible and
  checkpoint/resume stays bit-exact.  ``default_rng`` / ``SeedSequence``
  / ``Generator`` constructions are allowed.
* ``code.pickle`` — no ``pickle`` (or friends) imports and no
  ``np.load(..., allow_pickle=True)``: checkpoints/archives must stay
  safe to load from untrusted files.
* ``code.wallclock`` — no ``time.time()`` / ``datetime.now()`` /
  ``date.today()`` inside ``core/``: the optimizer's timing flows through
  the telemetry clock (``time.perf_counter`` via ``t_wall``), and wall
  dates break resumability.
* ``code.mutable-default`` — no mutable default arguments.
* ``code.bare-except`` — no bare ``except:`` handlers (they swallow
  ``KeyboardInterrupt``/``SystemExit``).
* ``code.thread-lifecycle`` — no ``threading.Thread(...)`` that neither
  passes an explicit ``daemon=`` nor has a ``join()`` anywhere in the
  module: an un-owned non-daemon thread blocks interpreter exit, and an
  unjoined one leaks past its owner's lifetime.

Suppression: append ``# repro: ignore[rule-id, ...]`` (or a blanket
``# repro: ignore``) to the offending line.  Rule ids match by prefix,
so ``# repro: ignore[code.pickle]`` and ``# repro: ignore[code]`` both
silence a pickle finding.
"""

from __future__ import annotations

import ast
import pathlib
import re

from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity

CODE_RULES = RuleSet()
CODE_RULES.add("code.global-rng", Severity.ERROR,
               "module-level numpy.random sampling; thread a "
               "numpy.random.Generator instead")
CODE_RULES.add("code.pickle", Severity.ERROR,
               "pickle import or np.load(..., allow_pickle=True); "
               "serialized state must be safe to load")
CODE_RULES.add("code.wallclock", Severity.ERROR,
               "wall-clock call (time.time/datetime.now/date.today) in "
               "core/; use the telemetry clock")
CODE_RULES.add("code.mutable-default", Severity.ERROR,
               "mutable default argument (shared across calls)")
CODE_RULES.add("code.bare-except", Severity.ERROR,
               "bare 'except:' swallows KeyboardInterrupt/SystemExit")
CODE_RULES.add("code.thread-lifecycle", Severity.ERROR,
               "threading.Thread(...) with neither an explicit daemon= "
               "nor a join()/lifecycle owner in the module")

# numpy.random attributes that are fine to reference: constructors of the
# explicit-Generator API, not samplers of the implicit global state.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}
_PICKLE_MODULES = {"pickle", "cPickle", "dill", "shelve", "marshal"}
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "today"),
    ("date", "today"),
}
_MUTABLE_CALLS = {"list", "dict", "set"}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([^\]]*)\])?")


def _suppressions(source: str) -> dict[int, tuple[str, ...]]:
    """Map line number -> suppressed rule-id prefixes (empty = all)."""
    out: dict[int, tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = m.group(1)
        out[lineno] = tuple(
            r.strip() for r in rules.split(",") if r.strip()
        ) if rules else ()
    return out


def _suppressed(diag: Diagnostic, lineno: int,
                suppressions: dict[int, tuple[str, ...]]) -> bool:
    if lineno not in suppressions:
        return False
    prefixes = suppressions[lineno]
    if not prefixes:
        return True
    return any(diag.rule == p or diag.rule.startswith(p.rstrip(".") + ".")
               for p in prefixes)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an attribute/name chain (else '')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Checker(ast.NodeVisitor):
    """Single-pass visitor collecting findings for one module."""

    def __init__(self, path: str, in_core: bool) -> None:
        self.path = path
        self.in_core = in_core
        self.findings: list[tuple[int, Diagnostic]] = []
        # Thread-lifecycle bookkeeping: ctor sites, and the names that
        # were joined or had .daemon set, resolved in finalize().
        self._threads: list[tuple[ast.Call, str, bool]] = []
        self._thread_targets: dict[int, str] = {}
        self._joined: set[str] = set()
        self._daemon_set: set[str] = set()

    def _emit(self, node: ast.AST, rule: str, message: str,
              fix: str = "") -> None:
        lineno = getattr(node, "lineno", 0)
        self.findings.append((lineno, CODE_RULES.diag(
            rule, message, location=f"{self.path}:{lineno}", fix=fix)))

    # -- imports -------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _PICKLE_MODULES:
                self._emit(node, "code.pickle",
                           f"import of {alias.name!r}",
                           fix="serialize to npz/json instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _PICKLE_MODULES:
            self._emit(node, "code.pickle",
                       f"import from {node.module!r}",
                       fix="serialize to npz/json instead")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        parts = dotted.split(".") if dotted else []

        # numpy.random.<sampler>(...) via any alias spelled *.random.<name>
        if (len(parts) >= 3 and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] not in _ALLOWED_NP_RANDOM):
            self._emit(node, "code.global-rng",
                       f"call to {dotted}() uses the global numpy RNG",
                       fix="thread a np.random.Generator "
                           "(np.random.default_rng(seed))")

        # np.load(..., allow_pickle=True)
        if parts[-1:] == ["load"] and parts[0] in ("np", "numpy"):
            for kw in node.keywords:
                if (kw.arg == "allow_pickle"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    self._emit(node, "code.pickle",
                               "np.load(..., allow_pickle=True) executes "
                               "arbitrary code on crafted files",
                               fix="store plain arrays; load with "
                                   "allow_pickle=False")

        # wall-clock calls, enforced only under core/
        if self.in_core and len(parts) >= 2:
            if (parts[-2], parts[-1]) in _WALLCLOCK_CALLS:
                self._emit(node, "code.wallclock",
                           f"call to {dotted}() reads the wall clock",
                           fix="use time.perf_counter() via the telemetry "
                               "t_wall convention")

        # threading.Thread(...) lifecycle: remember the ctor (with its
        # assignment target, mapped by visit_Assign) and every
        # <name>.join() receiver; finalize() pairs them up.
        if (parts and parts[-1] == "Thread"
                and (len(parts) == 1 or parts[0] == "threading")):
            has_daemon = any(kw.arg == "daemon" for kw in node.keywords)
            self._threads.append(
                (node, self._thread_targets.get(id(node), ""), has_daemon))
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"):
            receiver = _dotted(node.func.value)
            if receiver:
                self._joined.add(receiver)
        self.generic_visit(node)

    # -- assignments ---------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # Map 'name = threading.Thread(...)' so the ctor knows who owns
        # it, and honor 'name.daemon = ...' as an explicit daemon mark.
        if isinstance(node.value, ast.Call):
            for target in node.targets:
                name = _dotted(target)
                if name:
                    self._thread_targets[id(node.value)] = name
                    break
        for target in node.targets:
            if isinstance(target, ast.Attribute) and target.attr == "daemon":
                receiver = _dotted(target.value)
                if receiver:
                    self._daemon_set.add(receiver)
        self.generic_visit(node)

    def finalize(self) -> None:
        """Emit deferred findings (thread-lifecycle needs the whole
        module before it can tell owned threads from leaked ones)."""
        for node, target, has_daemon in self._threads:
            if has_daemon or (target and target in self._daemon_set):
                continue
            if target and target in self._joined:
                continue
            who = f"thread {target!r}" if target else "anonymous thread"
            self._emit(node, "code.thread-lifecycle",
                       f"{who} is created with no explicit daemon= and "
                       f"is never join()ed",
                       fix="pass daemon=True (and stop it explicitly) or "
                           "join() it on the owner's shutdown path")

    # -- defs ----------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS):
                mutable = True
            if mutable:
                self._emit(default, "code.mutable-default",
                           f"function {node.name!r} has a mutable default "
                           f"argument",
                           fix="default to None and create inside the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- handlers ------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(node, "code.bare-except",
                       "bare 'except:' catches KeyboardInterrupt and "
                       "SystemExit",
                       fix="catch Exception (or something narrower)")
        self.generic_visit(node)


def _is_core_path(path: str) -> bool:
    return "core" in pathlib.PurePath(path).parts


def lint_source(source: str, path: str = "<string>",
                in_core: bool | None = None) -> list[Diagnostic]:
    """Lint one module's source text; returns diagnostics.

    ``in_core`` overrides the path-based decision of whether the
    ``core/``-only wall-clock rule applies (useful for fixtures).
    Syntax errors surface as a single error-severity finding rather than
    an exception.
    """
    if in_core is None:
        in_core = _is_core_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="code.syntax", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
            location=f"{path}:{exc.lineno or 0}")]
    checker = _Checker(path, in_core)
    checker.visit(tree)
    checker.finalize()
    suppressions = _suppressions(source)
    return [diag for lineno, diag in checker.findings
            if not _suppressed(diag, lineno, suppressions)]


def lint_file(path: str | pathlib.Path) -> list[Diagnostic]:
    """Lint one ``.py`` file from disk."""
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), path=str(p))


def lint_paths(paths) -> list[Diagnostic]:
    """Lint files and/or directory trees (``.py`` files, recursively)."""
    diags: list[Diagnostic] = []
    for path in paths:
        p = pathlib.Path(path)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                diags.extend(lint_file(f))
        else:
            diags.extend(lint_file(p))
    return diags
