"""Repo-invariant AST linter for the ``repro`` source tree.

PRs 1–2 established conventions the test suite cannot easily police
(they are invisible until a rare codepath runs); this linter makes them
machine-checked so they cannot silently regress:

* ``code.global-rng`` — no module-level :mod:`numpy.random` sampling
  (``np.random.uniform(...)``): all randomness must flow through a
  threaded :class:`numpy.random.Generator` so runs stay reproducible and
  checkpoint/resume stays bit-exact.  ``default_rng`` / ``SeedSequence``
  / ``Generator`` constructions are allowed.
* ``code.pickle`` — no ``pickle`` (or friends) imports and no
  ``np.load(..., allow_pickle=True)``: checkpoints/archives must stay
  safe to load from untrusted files.
* ``code.wallclock`` — no ``time.time()`` / ``datetime.now()`` /
  ``date.today()`` inside ``core/``: the optimizer's timing flows through
  the telemetry clock (``time.perf_counter`` via ``t_wall``), and wall
  dates break resumability.
* ``code.mutable-default`` — no mutable default arguments.
* ``code.bare-except`` — no bare ``except:`` handlers (they swallow
  ``KeyboardInterrupt``/``SystemExit``).
* ``code.thread-lifecycle`` — no ``threading.Thread(...)`` that neither
  passes an explicit ``daemon=`` nor has a ``join()`` anywhere in the
  module: an un-owned non-daemon thread blocks interpreter exit, and an
  unjoined one leaks past its owner's lifetime.
* ``code.socket-lifecycle`` — every socket ctor (``socket.socket`` /
  ``create_connection`` / ``create_server``) needs a ``with`` block or a
  ``close()`` on some alias of it in the module (one ``a = b`` hop is
  followed, so ``self._sock = sock`` counts); missing timeouts are a
  warning (``create_server`` is exempt — listeners block in ``accept()``
  by design).

Suppression: append ``# repro: ignore[rule-id, ...]`` (or a blanket
``# repro: ignore``) to the offending line.  Rule ids match by prefix,
so ``# repro: ignore[code.pickle]`` and ``# repro: ignore[code]`` both
silence a pickle finding.
"""

from __future__ import annotations

import ast
import pathlib
import re

from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity

CODE_RULES = RuleSet()
CODE_RULES.add("code.global-rng", Severity.ERROR,
               "module-level numpy.random sampling; thread a "
               "numpy.random.Generator instead")
CODE_RULES.add("code.pickle", Severity.ERROR,
               "pickle import or np.load(..., allow_pickle=True); "
               "serialized state must be safe to load")
CODE_RULES.add("code.wallclock", Severity.ERROR,
               "wall-clock call (time.time/datetime.now/date.today) in "
               "core/; use the telemetry clock")
CODE_RULES.add("code.mutable-default", Severity.ERROR,
               "mutable default argument (shared across calls)")
CODE_RULES.add("code.bare-except", Severity.ERROR,
               "bare 'except:' swallows KeyboardInterrupt/SystemExit")
CODE_RULES.add("code.thread-lifecycle", Severity.ERROR,
               "threading.Thread(...) with neither an explicit daemon= "
               "nor a join()/lifecycle owner in the module")
CODE_RULES.add("code.socket-lifecycle", Severity.ERROR,
               "socket created without a with/close() owner, or without "
               "a timeout (warning)")

#: socket constructors checked by ``code.socket-lifecycle``; the value
#: is the timeout policy: 'kwarg' (must pass timeout= or a second
#: positional), 'settimeout' (an alias must call .settimeout), or ''
#: (exempt — listeners block in accept() by design).
_SOCKET_CTORS = {
    "socket": "settimeout",
    "create_connection": "kwarg",
    "create_server": "",
}

# numpy.random attributes that are fine to reference: constructors of the
# explicit-Generator API, not samplers of the implicit global state.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}
_PICKLE_MODULES = {"pickle", "cPickle", "dill", "shelve", "marshal"}
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "today"),
    ("date", "today"),
}
_MUTABLE_CALLS = {"list", "dict", "set"}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([^\]]*)\])?")


def _suppressions(source: str) -> dict[int, tuple[str, ...]]:
    """Map line number -> suppressed rule-id prefixes (empty = all)."""
    out: dict[int, tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = m.group(1)
        out[lineno] = tuple(
            r.strip() for r in rules.split(",") if r.strip()
        ) if rules else ()
    return out


def _suppressed(diag: Diagnostic, lineno: int,
                suppressions: dict[int, tuple[str, ...]]) -> bool:
    if lineno not in suppressions:
        return False
    prefixes = suppressions[lineno]
    if not prefixes:
        return True
    return any(diag.rule == p or diag.rule.startswith(p.rstrip(".") + ".")
               for p in prefixes)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an attribute/name chain (else '')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Checker(ast.NodeVisitor):
    """Single-pass visitor collecting findings for one module."""

    def __init__(self, path: str, in_core: bool) -> None:
        self.path = path
        self.in_core = in_core
        self.findings: list[tuple[int, Diagnostic]] = []
        # Thread-lifecycle bookkeeping: ctor sites, and the names that
        # were joined or had .daemon set, resolved in finalize().
        self._threads: list[tuple[ast.Call, str, bool]] = []
        self._thread_targets: dict[int, str] = {}
        self._joined: set[str] = set()
        self._daemon_set: set[str] = set()
        # Socket-lifecycle bookkeeping, same deferred shape: ctor sites,
        # close()/settimeout() receivers, with-managed nodes/names, and
        # one-hop 'a = b' alias edges (sock -> self._sock).
        self._sockets: list[tuple[ast.Call, str, str]] = []
        self._closed: set[str] = set()
        self._timeout_set: set[str] = set()
        self._with_managed: set[int] = set()
        self._alias_pairs: list[tuple[str, str]] = []

    def _emit(self, node: ast.AST, rule: str, message: str,
              fix: str = "", severity: Severity | None = None) -> None:
        lineno = getattr(node, "lineno", 0)
        self.findings.append((lineno, CODE_RULES.diag(
            rule, message, location=f"{self.path}:{lineno}", fix=fix,
            severity=severity)))

    # -- imports -------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _PICKLE_MODULES:
                self._emit(node, "code.pickle",
                           f"import of {alias.name!r}",
                           fix="serialize to npz/json instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _PICKLE_MODULES:
            self._emit(node, "code.pickle",
                       f"import from {node.module!r}",
                       fix="serialize to npz/json instead")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        parts = dotted.split(".") if dotted else []

        # numpy.random.<sampler>(...) via any alias spelled *.random.<name>
        if (len(parts) >= 3 and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] not in _ALLOWED_NP_RANDOM):
            self._emit(node, "code.global-rng",
                       f"call to {dotted}() uses the global numpy RNG",
                       fix="thread a np.random.Generator "
                           "(np.random.default_rng(seed))")

        # np.load(..., allow_pickle=True)
        if parts[-1:] == ["load"] and parts[0] in ("np", "numpy"):
            for kw in node.keywords:
                if (kw.arg == "allow_pickle"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    self._emit(node, "code.pickle",
                               "np.load(..., allow_pickle=True) executes "
                               "arbitrary code on crafted files",
                               fix="store plain arrays; load with "
                                   "allow_pickle=False")

        # wall-clock calls, enforced only under core/
        if self.in_core and len(parts) >= 2:
            if (parts[-2], parts[-1]) in _WALLCLOCK_CALLS:
                self._emit(node, "code.wallclock",
                           f"call to {dotted}() reads the wall clock",
                           fix="use time.perf_counter() via the telemetry "
                               "t_wall convention")

        # threading.Thread(...) lifecycle: remember the ctor (with its
        # assignment target, mapped by visit_Assign) and every
        # <name>.join() receiver; finalize() pairs them up.
        if (parts and parts[-1] == "Thread"
                and (len(parts) == 1 or parts[0] == "threading")):
            has_daemon = any(kw.arg == "daemon" for kw in node.keywords)
            self._threads.append(
                (node, self._thread_targets.get(id(node), ""), has_daemon))
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"):
            receiver = _dotted(node.func.value)
            if receiver:
                self._joined.add(receiver)

        # socket.socket / socket.create_connection / socket.create_server
        # (or the bare names via 'from socket import ...')
        if (parts and parts[-1] in _SOCKET_CTORS
                and (len(parts) == 1 or parts[0] == "socket")):
            self._sockets.append(
                (node, self._thread_targets.get(id(node), ""), parts[-1]))
        if isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value)
            if receiver and node.func.attr in ("close", "shutdown",
                                               "detach"):
                self._closed.add(receiver)
            if receiver and node.func.attr == "settimeout":
                self._timeout_set.add(receiver)
        self.generic_visit(node)

    # -- with blocks ---------------------------------------------------------
    def _visit_with_items(self, node) -> None:
        for item in node.items:
            # 'with ctor(...) as x:' owns the socket outright; 'with x:'
            # closes an existing one on exit.
            if isinstance(item.context_expr, ast.Call):
                self._with_managed.add(id(item.context_expr))
            name = _dotted(item.context_expr)
            if name:
                self._closed.add(name)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with_items(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with_items(node)

    # -- assignments ---------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # Map 'name = threading.Thread(...)' so the ctor knows who owns
        # it, and honor 'name.daemon = ...' as an explicit daemon mark.
        if isinstance(node.value, ast.Call):
            for target in node.targets:
                name = _dotted(target)
                if name:
                    self._thread_targets[id(node.value)] = name
                    break
        for target in node.targets:
            if isinstance(target, ast.Attribute) and target.attr == "daemon":
                receiver = _dotted(target.value)
                if receiver:
                    self._daemon_set.add(receiver)
        # 'self._sock = sock' style aliasing: a close()/settimeout() on
        # either name owns the other (one hop, no transitive closure).
        if isinstance(node.value, (ast.Name, ast.Attribute)):
            value_name = _dotted(node.value)
            if value_name:
                for target in node.targets:
                    target_name = _dotted(target)
                    if target_name:
                        self._alias_pairs.append((target_name, value_name))
        self.generic_visit(node)

    def _aliases(self, name: str) -> set[str]:
        out = {name}
        for a, b in self._alias_pairs:
            if a == name:
                out.add(b)
            elif b == name:
                out.add(a)
        return out

    def finalize(self) -> None:
        """Emit deferred findings (thread-lifecycle needs the whole
        module before it can tell owned threads from leaked ones)."""
        for node, target, has_daemon in self._threads:
            if has_daemon or (target and target in self._daemon_set):
                continue
            if target and target in self._joined:
                continue
            who = f"thread {target!r}" if target else "anonymous thread"
            self._emit(node, "code.thread-lifecycle",
                       f"{who} is created with no explicit daemon= and "
                       f"is never join()ed",
                       fix="pass daemon=True (and stop it explicitly) or "
                           "join() it on the owner's shutdown path")
        for node, target, kind in self._sockets:
            aliases = self._aliases(target) if target else set()
            managed = id(node) in self._with_managed
            if not managed and not (aliases & self._closed):
                who = (f"socket {target!r}" if target
                       else "anonymous socket")
                self._emit(node, "code.socket-lifecycle",
                           f"{who} ({kind}) has no with/close() owner "
                           f"in this module — it leaks the fd on every "
                           f"error path",
                           fix="wrap it in 'with ...' or close() it on "
                               "the owner's shutdown path")
            policy = _SOCKET_CTORS[kind]
            needs_timeout = (
                (policy == "kwarg"
                 and len(node.args) < 2
                 and not any(kw.arg == "timeout" for kw in node.keywords))
                or (policy == "settimeout"
                    and not (aliases & self._timeout_set)))
            if needs_timeout:
                self._emit(node, "code.socket-lifecycle",
                           f"{kind}(...) without a timeout blocks "
                           f"forever on a dead peer",
                           fix="pass timeout= (create_connection) or "
                               "call settimeout() on the socket",
                           severity=Severity.WARNING)

    # -- defs ----------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS):
                mutable = True
            if mutable:
                self._emit(default, "code.mutable-default",
                           f"function {node.name!r} has a mutable default "
                           f"argument",
                           fix="default to None and create inside the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- handlers ------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(node, "code.bare-except",
                       "bare 'except:' catches KeyboardInterrupt and "
                       "SystemExit",
                       fix="catch Exception (or something narrower)")
        self.generic_visit(node)


def _is_core_path(path: str) -> bool:
    return "core" in pathlib.PurePath(path).parts


def lint_source(source: str, path: str = "<string>",
                in_core: bool | None = None) -> list[Diagnostic]:
    """Lint one module's source text; returns diagnostics.

    ``in_core`` overrides the path-based decision of whether the
    ``core/``-only wall-clock rule applies (useful for fixtures).
    Syntax errors surface as a single error-severity finding rather than
    an exception.
    """
    if in_core is None:
        in_core = _is_core_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="code.syntax", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
            location=f"{path}:{exc.lineno or 0}")]
    checker = _Checker(path, in_core)
    checker.visit(tree)
    checker.finalize()
    suppressions = _suppressions(source)
    return [diag for lineno, diag in checker.findings
            if not _suppressed(diag, lineno, suppressions)]


def lint_file(path: str | pathlib.Path) -> list[Diagnostic]:
    """Lint one ``.py`` file from disk."""
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), path=str(p))


def lint_paths(paths) -> list[Diagnostic]:
    """Lint files and/or directory trees (``.py`` files, recursively)."""
    diags: list[Diagnostic] = []
    for path in paths:
        p = pathlib.Path(path)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                diags.extend(lint_file(f))
        else:
            diags.extend(lint_file(p))
    return diags
