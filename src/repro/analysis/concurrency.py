"""Flow-sensitive concurrency checks (rule ids ``flow.conc.*``).

The parallel executor (:mod:`repro.core.parallel`) runs callables inside
``spawn``-context pool workers.  Three whole classes of bug survive every
serial test run and only detonate under a real pool:

* a submitted closure captures mutable state the parent keeps writing —
  each worker sees a pickled snapshot, the parent's writes are silently
  lost (or, on a thread path, raced);
* worker-side code writes module globals or telemetry registries — the
  write lands in the *worker* process and never reaches the parent;
* the submitted callable is a lambda / locally-defined function — the
  ``spawn`` pool must pickle it, which fails at runtime.

Worker-side functions are discovered two ways: syntactically (arguments
of ``pool.map`` / ``starmap`` / ``apply_async`` / ``submit`` /
``initializer=`` / ``Thread(target=...)`` call sites) and declaratively
(functions decorated with :func:`repro.core.parallel.worker_side` — the
annotation hook the executor module uses to mark its worker entry
points).  Worker-side-ness propagates through the best-effort call graph,
so a helper called from a worker is checked too.

Suppression uses the shared ``# repro: ignore[rule-id]`` comment
convention from :mod:`repro.analysis.codelint`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.codelint import _suppressed, _suppressions
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import (
    CallGraph,
    ModuleModel,
    Scope,
    build_module,
    dotted_name,
    iter_python_files,
)

CONC_RULES = RuleSet()
CONC_RULES.add("flow.conc.closure-capture", Severity.ERROR,
               "callable submitted to a pool/thread captures mutable "
               "state the parent also writes")
CONC_RULES.add("flow.conc.global-write", Severity.ERROR,
               "worker-side code writes a module global or telemetry "
               "registry (the write lands in the worker process)")
CONC_RULES.add("flow.conc.unpicklable", Severity.ERROR,
               "lambda or locally-defined function submitted on the "
               "process-pool path (spawn workers must pickle it)")

#: Pool/executor submission methods whose first positional argument is the
#: callable shipped to another worker.
_SUBMIT_METHODS = frozenset({
    "map", "starmap", "imap", "imap_unordered",
    "apply_async", "map_async", "starmap_async", "submit",
})
#: Constructors taking the callable as a ``target=``/``initializer=`` kwarg.
_CTOR_KWARGS = {
    "Thread": "target",
    "Process": "target",
    "Pool": "initializer",
    "Timer": "function",
}

#: The marker decorator :mod:`repro.core.parallel` applies to its worker
#: entry points; matched by (dotted-suffix) name.
WORKER_MARKER = "worker_side"

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)


@dataclass(frozen=True)
class Submission:
    """One callable shipped to concurrent execution."""

    func: ast.expr          # the callable expression as written
    call: ast.Call          # the submitting call
    api: str                # e.g. 'pool.map', 'Thread'
    kind: str               # 'pool' (pickling) or 'thread' (shared memory)
    lineno: int


def _submission_kind(callee: str) -> str:
    """'thread' when the receiver is visibly a thread API, else 'pool'."""
    return "thread" if "thread" in callee.lower() else "pool"


def find_submissions(scope: Scope) -> list[Submission]:
    """Concurrency submission call sites inside one scope."""
    out: list[Submission] = []
    for site in scope.calls:
        callee = site.callee
        if not callee:
            continue
        last = callee.split(".")[-1]
        func: ast.expr | None = None
        if last in _SUBMIT_METHODS and "." in callee:
            if site.node.args:
                func = site.node.args[0]
        elif last in _CTOR_KWARGS:
            wanted = _CTOR_KWARGS[last]
            for kw in site.node.keywords:
                if kw.arg == wanted:
                    func = kw.value
                    break
        if func is not None:
            out.append(Submission(
                func=func, call=site.node, api=callee,
                kind=_submission_kind(callee), lineno=site.lineno))
    return out


def _marked_worker_side(scope: Scope) -> bool:
    return any(d == WORKER_MARKER or d.endswith("." + WORKER_MARKER)
               for d in scope.decorators)


def worker_roots(graph: CallGraph) -> list[tuple[Scope, str]]:
    """(scope, why) for every directly worker-side function: marked with
    the :data:`WORKER_MARKER` decorator or submitted to a pool API."""
    roots: list[tuple[Scope, str]] = []
    seen: set[int] = set()

    def add(scope: Scope, why: str) -> None:
        if id(scope) not in seen:
            seen.add(id(scope))
            roots.append((scope, why))

    for mod in graph.modules:
        for scope in mod.functions():
            if _marked_worker_side(scope):
                add(scope, "@worker_side")
        for scope in mod.scopes:
            for sub in find_submissions(scope):
                name = dotted_name(sub.func)
                if not name or "." in name:
                    continue
                target = graph.resolve_callee(scope, name)
                if target is not None:
                    add(target, sub.api)
    return roots


def _module_global_writes(scope: Scope, graph: CallGraph
                          ) -> list[tuple[str, str, int]]:
    """(name, how, lineno) for every module-global write in ``scope``."""
    mod = graph.module_of(scope)
    out: list[tuple[str, str, int]] = []
    for name in sorted(scope.global_decls):
        bindings = scope.bindings.get(name, ())
        if bindings:
            out.append((name, "global statement", bindings[0].lineno))
    for mut in scope.mutations:
        if mut.base in scope.global_decls:
            continue  # already reported via the global statement
        owner = scope.resolve(mut.base)
        if owner is None or not owner.is_module:
            continue
        if owner is not mod.module_scope:
            continue
        binding = owner.bindings.get(mut.base, ())
        if binding and all(b.kind == "import" for b in binding):
            # Mutating an imported module's attribute is out of scope for
            # this rule (and usually a constant/config read pattern).
            continue
        out.append((mut.base, f"in-place via .{mut.via}" if mut.via
                    not in ("subscript", "attribute", "augassign")
                    else mut.via, mut.lineno))
    return out


def _captured_parent_mutables(scope: Scope) -> list[tuple[str, Scope, int]]:
    """Names ``scope`` reads from an enclosing *function* scope where that
    owner both binds the name to a mutable literal (or mutates it) and is
    not merely passing a parameter through."""
    out: list[tuple[str, Scope, int]] = []
    local = set(scope.bindings)
    for name in sorted(scope.reads):
        if name in local:
            continue
        owner = (scope.parent.resolve(name)
                 if scope.parent is not None else None)
        if owner is None or owner.is_module or owner is scope:
            continue
        mutated = name in owner.mutated_names() and any(
            m.base == name for m in owner.mutations)
        if not mutated:
            continue
        value = owner.last_value(name)
        is_mutable = value is None or isinstance(value, _MUTABLE_LITERALS)
        if is_mutable:
            out.append((name, owner, scope.lineno))
    return out


def check_modules(modules: list[ModuleModel]) -> list[Diagnostic]:
    """Run every ``flow.conc.*`` rule over a set of parsed modules."""
    graph = CallGraph(modules)
    findings: list[tuple[ModuleModel, int, Diagnostic]] = []

    def emit(mod: ModuleModel, lineno: int, rule: str, message: str,
             fix: str = "") -> None:
        findings.append((mod, lineno, CONC_RULES.diag(
            rule, message, location=f"{mod.path}:{lineno}", fix=fix)))

    # -- unpicklable / closure-capture at the submission sites ---------------
    for mod in modules:
        for scope in mod.scopes:
            for sub in find_submissions(scope):
                name = dotted_name(sub.func)
                is_lambda = isinstance(sub.func, ast.Lambda)
                target: Scope | None = None
                if name and "." not in name:
                    owner = scope.resolve(name)
                    if owner is not None and not owner.is_module:
                        # Locally-defined function: find its scope.
                        target = next(
                            (c for c in owner.children if c.name == name),
                            None)
                if sub.kind == "pool" and (is_lambda or target is not None):
                    what = ("lambda" if is_lambda
                            else f"locally-defined function {name!r}")
                    emit(mod, sub.lineno, "flow.conc.unpicklable",
                         f"{what} submitted via {sub.api}() cannot be "
                         f"pickled into spawn workers",
                         fix="move the callable to module level")
                if is_lambda:
                    target = next(
                        (c for c in scope.children
                         if c.node is sub.func), None)
                if target is not None:
                    for cap, owner, _ in _captured_parent_mutables(target):
                        emit(mod, sub.lineno, "flow.conc.closure-capture",
                             f"callable {target.name!r} submitted via "
                             f"{sub.api}() captures {cap!r}, which "
                             f"{owner.name!r} also writes — workers see a "
                             f"stale copy (pool) or race it (threads)",
                             fix="pass the data as an argument and return "
                                 "results instead of mutating captures")

    # -- global writes anywhere worker-side ----------------------------------
    roots = worker_roots(graph)
    root_scopes = [s for s, _ in roots]
    why: dict[int, str] = {id(s): w for s, w in roots}
    for scope in graph.reachable_from(root_scopes):
        mod = graph.module_of(scope)
        reason = why.get(id(scope), "called from worker-side code")
        for name, how, lineno in _module_global_writes(scope, graph):
            emit(mod, lineno, "flow.conc.global-write",
                 f"worker-side function {scope.name!r} ({reason}) writes "
                 f"module global {name!r} ({how}); the write stays in the "
                 f"worker process",
                 fix="return the value to the parent instead of mutating "
                     "shared module state")

    # -- apply per-line suppressions per module ------------------------------
    out: list[Diagnostic] = []
    for mod, lineno, diag in findings:
        suppressions = _suppressions(mod.source)
        if not _suppressed(diag, lineno, suppressions):
            out.append(diag)
    return out


def check_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Run the concurrency pass over one module's source text."""
    try:
        modules = [build_module(source, path=path)]
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]
    return check_modules(modules)


def check_paths(paths) -> list[Diagnostic]:
    """Run the concurrency pass over files/directories as one unit (the
    call graph spans all of them)."""
    modules: list[ModuleModel] = []
    diags: list[Diagnostic] = []
    for f in iter_python_files(paths):
        try:
            modules.append(build_module(
                f.read_text(encoding="utf-8"), path=str(f)))
        except SyntaxError as exc:
            diags.append(Diagnostic(
                rule="code.syntax", severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{f}:{exc.lineno or 0}"))
    diags.extend(check_modules(modules))
    return diags


__all__ = [
    "CONC_RULES",
    "Submission",
    "check_modules",
    "check_paths",
    "check_source",
    "find_submissions",
    "worker_roots",
]
