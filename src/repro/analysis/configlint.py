"""Static cross-validation of optimizer/run configurations.

The dataclass ``__post_init__`` validators in :mod:`repro.core.config`
police single fields; this module checks the *relationships* a run's
correctness depends on — the mistakes that silently waste the paper's
200-simulation budget rather than crashing:

* elite-set size (``N_es``) vs. initial-sample count vs. simulation
  budget (an elite set larger than everything ever simulated never fills);
* near-sampling cadence ``T_NS`` vs. the round count the budget allows
  (too-sparse cadence means Alg. 2 never fires);
* actor-training batch size vs. dataset size;
* action/proposal geometry (zero action scale freezes every actor; a
  minimum proposal distance beyond the action range livelocks proposals);
* learning-rate and penalty-weight sanity;
* design-space well-formedness (integer parameters with an empty
  representable range, non-finite bounds);
* resilience/checkpoint plumbing (cadence without a path, unwritable
  checkpoint directory).

:func:`check_config` returns :class:`~repro.analysis.diagnostics.Diagnostic`
findings; :func:`validate_config` raises on error severity (the
construction-time fail-fast used by
:class:`~repro.core.ma_opt.MAOptimizer`).
"""

from __future__ import annotations

import math
import os
import pathlib

from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity

CFG_RULES = RuleSet()
CFG_RULES.add("cfg.action-scale", Severity.ERROR,
              "action scale must be positive (zero freezes every actor); "
              "scales above 1 make each proposal a teleport")
CFG_RULES.add("cfg.learning-rate", Severity.ERROR,
              "learning rates must be positive and sane")
CFG_RULES.add("cfg.lambda-viol", Severity.ERROR,
              "constraint penalty weight must be non-negative")
CFG_RULES.add("cfg.identity-fraction", Severity.ERROR,
              "pseudo-sample identity fraction must lie in [0, 1]")
CFG_RULES.add("cfg.proposal-distance", Severity.ERROR,
              "minimum proposal separation must be non-negative and "
              "reachable within the action range")
CFG_RULES.add("cfg.elite-vs-init", Severity.WARNING,
              "elite set larger than the initial sample set")
CFG_RULES.add("cfg.elite-vs-budget", Severity.ERROR,
              "elite set larger than everything the run will ever simulate")
CFG_RULES.add("cfg.ns-cadence", Severity.WARNING,
              "near-sampling cadence T_NS exceeds the round count the "
              "budget allows — Alg. 2 never fires")
CFG_RULES.add("cfg.batch-vs-data", Severity.WARNING,
              "training batch size exceeds the initial dataset size")
CFG_RULES.add("cfg.ns-radius", Severity.WARNING,
              "near-sampling radius so large the samples are not 'near'")
CFG_RULES.add("cfg.space-integer", Severity.ERROR,
              "integer parameter whose bounds contain no integer")
CFG_RULES.add("cfg.space-bounds", Severity.ERROR,
              "parameter bounds must be finite (and not collapsed)")
CFG_RULES.add("cfg.checkpoint-path", Severity.ERROR,
              "checkpoint cadence/path plumbing is inconsistent or the "
              "directory is not writable")
CFG_RULES.add("cfg.retry-budget", Severity.WARNING,
              "retry budget large enough to mask a systemically broken "
              "simulator")


def _check_space(space) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for p in space:
        if not (math.isfinite(p.low) and math.isfinite(p.high)):
            diags.append(CFG_RULES.diag(
                "cfg.space-bounds",
                f"parameter {p.name!r} has non-finite bounds "
                f"[{p.low!r}, {p.high!r}]",
                location=f"space.{p.name}",
                fix="use finite physical bounds"))
            continue
        if p.integer and math.ceil(p.low) > math.floor(p.high):
            diags.append(CFG_RULES.diag(
                "cfg.space-integer",
                f"integer parameter {p.name!r} has no representable value "
                f"in [{p.low:g}, {p.high:g}]",
                location=f"space.{p.name}",
                fix="widen the bounds to include an integer"))
    return diags


def _check_resilience(res) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if res is None:
        return diags
    if res.checkpoint_every > 0 and not res.checkpoint_path:
        diags.append(CFG_RULES.diag(
            "cfg.checkpoint-path",
            f"checkpoint_every={res.checkpoint_every} but no "
            f"checkpoint_path is set; snapshots require run(...) to supply "
            f"a path",
            location="resilience.checkpoint_every",
            severity=Severity.WARNING,
            fix="set resilience.checkpoint_path or pass checkpoint_path "
                "to run()"))
    if res.checkpoint_path:
        parent = pathlib.Path(res.checkpoint_path).expanduser().parent
        if not parent.is_dir():
            diags.append(CFG_RULES.diag(
                "cfg.checkpoint-path",
                f"checkpoint directory {str(parent)!r} does not exist",
                location="resilience.checkpoint_path",
                fix="create the directory before the run starts"))
        elif not os.access(parent, os.W_OK):
            diags.append(CFG_RULES.diag(
                "cfg.checkpoint-path",
                f"checkpoint directory {str(parent)!r} is not writable",
                location="resilience.checkpoint_path",
                fix="point checkpoint_path at a writable directory"))
    if res.max_retries > 10:
        diags.append(CFG_RULES.diag(
            "cfg.retry-budget",
            f"max_retries={res.max_retries} retries per simulation; a "
            f"systemic failure burns {res.max_retries + 1}x wall time "
            f"before quarantining anything",
            location="resilience.max_retries",
            fix="keep the retry budget small; quarantine handles the rest"))
    return diags


def check_config(config, task=None, n_sims: int | None = None,
                 n_init: int | None = None) -> list[Diagnostic]:
    """Cross-validate an :class:`~repro.core.config.MAOptConfig`.

    ``task`` adds design-space checks; ``n_sims``/``n_init`` (when the run
    plan is known) add the budget-dependent checks the paper's protocol
    makes critical: ``N_es`` vs. sample counts and ``T_NS`` vs. the round
    count.  Returns diagnostics; see :func:`validate_config` for the
    raising variant.
    """
    diags: list[Diagnostic] = []

    if not config.action_scale > 0:
        diags.append(CFG_RULES.diag(
            "cfg.action-scale",
            f"action_scale={config.action_scale!r} freezes every actor "
            f"(proposals never move off the elite states)",
            location="action_scale", fix="use a value in (0, 1]"))
    elif config.action_scale > 1.0:
        diags.append(CFG_RULES.diag(
            "cfg.action-scale",
            f"action_scale={config.action_scale:g} spans more than the "
            f"whole normalized space; every proposal is a teleport",
            location="action_scale", severity=Severity.WARNING,
            fix="use a value in (0, 1]"))

    for name in ("critic_lr", "actor_lr"):
        lr = getattr(config, name)
        if not lr > 0:
            diags.append(CFG_RULES.diag(
                "cfg.learning-rate",
                f"{name}={lr!r} must be positive",
                location=name, fix="use a small positive learning rate"))
        elif lr > 1.0:
            diags.append(CFG_RULES.diag(
                "cfg.learning-rate",
                f"{name}={lr:g} is certain to diverge",
                location=name, severity=Severity.WARNING,
                fix="use a learning rate well below 1"))

    if config.lambda_viol < 0:
        diags.append(CFG_RULES.diag(
            "cfg.lambda-viol",
            f"lambda_viol={config.lambda_viol!r} rewards constraint "
            f"violation",
            location="lambda_viol", fix="use a non-negative penalty weight"))

    if not 0.0 <= config.identity_fraction <= 1.0:
        diags.append(CFG_RULES.diag(
            "cfg.identity-fraction",
            f"identity_fraction={config.identity_fraction!r} is not a "
            f"fraction",
            location="identity_fraction", fix="use a value in [0, 1]"))

    if config.proposal_min_dist < 0:
        diags.append(CFG_RULES.diag(
            "cfg.proposal-distance",
            f"proposal_min_dist={config.proposal_min_dist!r} must be >= 0",
            location="proposal_min_dist", fix="use a non-negative distance"))
    elif (config.action_scale > 0
          and config.proposal_min_dist > 2.0 * config.action_scale):
        diags.append(CFG_RULES.diag(
            "cfg.proposal-distance",
            f"proposal_min_dist={config.proposal_min_dist:g} exceeds the "
            f"2*action_scale={2 * config.action_scale:g} reachable spread; "
            f"same-elite proposals can never satisfy it",
            location="proposal_min_dist", severity=Severity.WARNING,
            fix="keep proposal_min_dist <= 2*action_scale"))

    if config.ns_radius > 0.5:
        diags.append(CFG_RULES.diag(
            "cfg.ns-radius",
            f"ns_radius={config.ns_radius:g} covers most of the normalized "
            f"space; 'near' sampling degenerates to random sampling",
            location="ns_radius", fix="use a small per-dimension radius"))

    if n_init is not None:
        if config.n_elite > n_init:
            diags.append(CFG_RULES.diag(
                "cfg.elite-vs-init",
                f"n_elite={config.n_elite} exceeds the n_init={n_init} "
                f"initial samples; the elite 'set' is the whole dataset "
                f"until later rounds",
                location="n_elite",
                fix="use n_elite <= n_init (paper: N_es << N_init)"))
        if config.batch_size > n_init:
            diags.append(CFG_RULES.diag(
                "cfg.batch-vs-data",
                f"batch_size={config.batch_size} exceeds the "
                f"n_init={n_init} initial dataset; early batches oversample "
                f"duplicates",
                location="batch_size", fix="use batch_size <= n_init"))
    if n_sims is not None and n_init is not None:
        total = n_sims + n_init
        if config.n_elite > total:
            diags.append(CFG_RULES.diag(
                "cfg.elite-vs-budget",
                f"n_elite={config.n_elite} exceeds the total "
                f"{total} simulations the run can ever produce; the elite "
                f"set never fills",
                location="n_elite",
                fix="shrink n_elite or raise the budget"))
    if n_sims is not None and config.near_sampling:
        max_rounds = max(1, -(-n_sims // max(1, config.n_actors)))
        if config.t_ns > max_rounds:
            diags.append(CFG_RULES.diag(
                "cfg.ns-cadence",
                f"t_ns={config.t_ns} exceeds the ~{max_rounds} rounds a "
                f"{n_sims}-simulation budget allows with "
                f"{config.n_actors} actors; near-sampling never triggers",
                location="t_ns",
                fix="lower t_ns or disable near_sampling"))

    diags.extend(_check_resilience(config.resilience))
    if task is not None:
        diags.extend(_check_space(task.space))
    return diags


class ConfigLintError(ValueError):
    """Raised by :func:`validate_config` on error-severity findings;
    carries the full diagnostic list on :attr:`diagnostics`."""

    def __init__(self, diagnostics) -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics
                  if d.severity >= Severity.ERROR]
        super().__init__("configuration failed static validation:\n  "
                         + "\n  ".join(d.render() for d in errors))


def validate_config(config, task=None, n_sims: int | None = None,
                    n_init: int | None = None) -> list[Diagnostic]:
    """Fail-fast variant of :func:`check_config`.

    Raises :class:`ConfigLintError` when any error-severity finding is
    present; otherwise returns the (warning/info) diagnostics so callers
    can log them.
    """
    diags = check_config(config, task=task, n_sims=n_sims, n_init=n_init)
    if any(d.severity >= Severity.ERROR for d in diags):
        raise ConfigLintError(diags)
    return diags
