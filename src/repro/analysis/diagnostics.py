"""Shared diagnostic model for every static analyzer in :mod:`repro.analysis`.

A :class:`Diagnostic` is one finding: a rule id (hierarchical, e.g.
``erc.no-ground`` / ``cfg.elite-vs-budget`` / ``code.bare-except``), a
:class:`Severity`, a location string, a human message and an optional
suggested fix.  The three analyzers (ERC, config cross-validation,
codelint) all emit this type, so the CLI, the pre-simulation gate and CI
share one rendering / filtering / exit-code convention:

* ``render_text`` — one ``severity rule location: message`` line each;
* ``render_jsonl`` — one JSON object per line (machine consumers);
* ``filter_diagnostics`` — ``--select`` / ``--ignore`` by rule-id prefix;
* ``exit_code`` — 0 clean, 1 when any error-severity finding remains.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field


class Severity(enum.IntEnum):
    """Finding severity; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``rule`` ids are hierarchical (``<analyzer>.<rule-name>``) so prefix
    filters select whole analyzers (``--select erc``) or single rules
    (``--ignore erc.floating-node``).  ``location`` is analyzer-specific:
    an element/node name for ERC, ``field`` for config checks,
    ``path:line`` for codelint.
    """

    rule: str
    severity: Severity
    message: str
    location: str = ""
    fix: str = ""

    def render(self) -> str:
        """One-line human rendering."""
        loc = f" {self.location}:" if self.location else ""
        line = f"{self.severity}: {self.rule}:{loc} {self.message}"
        if self.fix:
            line += f" (fix: {self.fix})"
        return line

    def to_dict(self) -> dict:
        """JSON-safe dict (severity as its lowercase name)."""
        d = asdict(self)
        d["severity"] = str(self.severity)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the analysis cache)."""
        return cls(rule=data["rule"],
                   severity=Severity[str(data["severity"]).upper()],
                   message=data["message"],
                   location=data.get("location", ""),
                   fix=data.get("fix", ""))


@dataclass(frozen=True)
class Rule:
    """Catalog entry: default severity + one-line description."""

    id: str
    severity: Severity
    description: str
    example: str = ""


@dataclass
class RuleSet:
    """A registry of :class:`Rule` entries for one analyzer."""

    rules: dict[str, Rule] = field(default_factory=dict)

    def add(self, rule_id: str, severity: Severity, description: str,
            example: str = "") -> Rule:
        if rule_id in self.rules:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        rule = Rule(rule_id, severity, description, example)
        self.rules[rule_id] = rule
        return rule

    def __iter__(self):
        return iter(self.rules.values())

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self.rules

    def diag(self, rule_id: str, message: str, location: str = "",
             fix: str = "", severity: Severity | None = None) -> Diagnostic:
        """Build a diagnostic for a registered rule (severity defaults to
        the catalog entry's)."""
        rule = self.rules[rule_id]
        return Diagnostic(rule=rule.id,
                          severity=severity or rule.severity,
                          message=message, location=location, fix=fix)


def _matches(rule_id: str, prefixes) -> bool:
    """Prefix match on dotted rule ids (``erc`` matches ``erc.no-ground``)."""
    for prefix in prefixes:
        if rule_id == prefix or rule_id.startswith(prefix.rstrip(".") + "."):
            return True
    return False


def filter_diagnostics(diagnostics, select=(), ignore=()):
    """Apply ``--select`` / ``--ignore`` rule-id prefix filters.

    ``select`` keeps only matching rules (empty = keep all); ``ignore``
    then drops matching rules.  Returns a new list.
    """
    out = list(diagnostics)
    if select:
        out = [d for d in out if _matches(d.rule, select)]
    if ignore:
        out = [d for d in out if not _matches(d.rule, ignore)]
    return out


def sort_diagnostics(diagnostics) -> list[Diagnostic]:
    """Stable severity-major ordering (errors first), then rule id."""
    return sorted(diagnostics, key=lambda d: (-int(d.severity), d.rule))


def max_severity(diagnostics) -> Severity | None:
    """Highest severity present, or None for a clean result."""
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None


def has_errors(diagnostics) -> bool:
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def exit_code(diagnostics) -> int:
    """Conventional process exit code: 1 iff any error-severity finding."""
    return 1 if has_errors(diagnostics) else 0


def render_text(diagnostics, summary: bool = True) -> str:
    """Human-readable report: one line per finding plus a tally line."""
    lines = [d.render() for d in diagnostics]
    if summary:
        n_err = sum(d.severity >= Severity.ERROR for d in diagnostics)
        n_warn = sum(d.severity == Severity.WARNING for d in diagnostics)
        if not diagnostics:
            lines.append("clean: no findings")
        else:
            lines.append(f"{len(lines)} finding(s): "
                         f"{n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines)


def render_jsonl(diagnostics) -> str:
    """One JSON object per finding, newline-separated."""
    return "\n".join(json.dumps(d.to_dict(), sort_keys=True)
                     for d in diagnostics)
