"""Runtime race sanitizer: the dynamic prong of the race-detection layer.

The static pass (:mod:`repro.analysis.locks`) reasons about source; this
module watches *live* objects.  A :class:`RaceSanitizer` wraps shared
objects (tracer, metrics registry, run logger, store recorder) in
access-recording proxies and swaps their ``_lock`` attributes for
instrumented locks, then records an Eraser-style *(thread, lockset,
access)* triple for every method call that crosses the proxy.  Two
accesses conflict when they come from different threads, touch the same
object, at least one is a write, and their locksets are disjoint — the
classic lockset race condition, reported as ``race.unsync-access``
diagnostics through the shared :class:`~repro.analysis.diagnostics`
model (and SARIF, via the CLI).

The *effective lockset* of an access is the set of instrumented locks
held when the call entered **plus every lock acquired during the call**
— so an internally-synchronized method like ``RunLogger.emit`` (which
takes its own lock) carries a non-empty lockset and never false-
positives against other locked accessors.  Accesses made before a
second thread ever touches an object are construction-time and excluded
(the unshared-object exclusion from the Eraser algorithm).

``schedule_torture`` shrinks the interpreter's thread switch interval so
tests interleave aggressively; ``ma-opt sanitize <cmd>`` runs any other
CLI command with the run's telemetry channels watched (see
:func:`instrument_telemetry` and ``docs/static_analysis.md``).

This is a race *sanitizer*, not a proof: it only sees accesses that
cross a proxy boundary, and only for schedules that actually happened.
Pair it with the static pass.
"""

from __future__ import annotations

import contextlib
import sys
import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import MUTATING_METHODS

RACE_RULES = RuleSet()
RACE_RULES.add(
    "race.unsync-access", Severity.ERROR,
    "two threads accessed a watched shared object with disjoint "
    "locksets and at least one write — an unsynchronized-access pair "
    "(Eraser lockset discipline violation)")

#: method names treated as writes to the watched object's state.
WRITE_METHODS = frozenset(MUTATING_METHODS) | frozenset({
    "write", "writelines", "flush", "close", "set", "put", "record",
    "reset", "mark_failed", "finalize", "absorb", "absorb_capture",
})


class _ThreadState:
    """Per-thread lockset + append-only acquisition history."""

    __slots__ = ("held", "history")

    def __init__(self) -> None:
        self.held: list[str] = []
        self.history: list[str] = []


class InstrumentedLock:
    """A lock wrapper that reports acquisitions to its sanitizer.

    Supports the subset of the ``threading.Lock`` API the codebase uses
    (context manager, ``acquire``/``release``, ``locked``) and delegates
    the actual blocking to the wrapped lock.
    """

    def __init__(self, lock: Any, name: str,
                 sanitizer: "RaceSanitizer") -> None:
        self._lock = lock
        self._name = name
        self._san = sanitizer

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            self._san._push(self._name)
        return acquired

    def release(self) -> None:
        self._san._drop(self._name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedLock {self._name}>"


class WatchProxy:
    """Transparent attribute/method proxy that records accesses.

    Method calls record one access with the caller's effective lockset
    (held at entry ∪ acquired during the call); attribute reads/writes
    record with the lockset held at the touch.
    """

    __slots__ = ("_dr_obj", "_dr_san", "_dr_label", "_dr_writes")

    def __init__(self, obj: Any, sanitizer: "RaceSanitizer", label: str,
                 writes: frozenset[str]) -> None:
        object.__setattr__(self, "_dr_obj", obj)
        object.__setattr__(self, "_dr_san", sanitizer)
        object.__setattr__(self, "_dr_label", label)
        object.__setattr__(self, "_dr_writes", writes)

    def __getattr__(self, name: str) -> Any:
        value = getattr(self._dr_obj, name)
        if not callable(value) or isinstance(value, type):
            self._dr_san.record(self._dr_label, name, "read",
                                self._dr_san.lockset())
            return value
        san, label = self._dr_san, self._dr_label
        kind = "write" if name in self._dr_writes else "read"

        def traced(*args: Any, **kwargs: Any) -> Any:
            state = san._state()
            before = frozenset(state.held)
            start = len(state.history)
            try:
                return value(*args, **kwargs)
            finally:
                window = before | frozenset(state.history[start:])
                san.record(label, name, kind, window)

        return traced

    def __setattr__(self, name: str, value: Any) -> None:
        self._dr_san.record(self._dr_label, name, "write",
                            self._dr_san.lockset())
        setattr(self._dr_obj, name, value)

    def _dr_windowed(self, attr: str, kind: str, fn: Any) -> Any:
        """Run ``fn`` recording the call-window lockset (entry ∪
        acquired during the call), like traced method calls do."""
        state = self._dr_san._state()
        before = frozenset(state.held)
        start = len(state.history)
        try:
            return fn()
        finally:
            window = before | frozenset(state.history[start:])
            self._dr_san.record(self._dr_label, attr, kind, window)

    def __len__(self) -> int:
        return self._dr_windowed("__len__", "read",
                                 lambda: len(self._dr_obj))

    def __iter__(self) -> Iterator[Any]:
        return self._dr_windowed("__iter__", "read",
                                 lambda: iter(self._dr_obj))

    def __bool__(self) -> bool:
        return bool(self._dr_obj)

    def __repr__(self) -> str:
        return f"<watched {self._dr_label}>"


@dataclass(frozen=True)
class RaceReport:
    """One conflicting unsynchronized access pair on a watched object."""

    label: str
    attr_a: str
    kind_a: str
    locks_a: frozenset[str]
    thread_a: int
    attr_b: str
    kind_b: str
    locks_b: frozenset[str]
    thread_b: int

    def describe(self) -> str:
        def side(attr: str, kind: str, locks: frozenset[str],
                 thread: int) -> str:
            held = "{" + ", ".join(sorted(locks)) + "}" if locks else "{}"
            return f"{kind} of .{attr} by thread {thread} holding {held}"
        return (f"{self.label}: "
                f"{side(self.attr_a, self.kind_a, self.locks_a, self.thread_a)}"
                f" conflicts with "
                f"{side(self.attr_b, self.kind_b, self.locks_b, self.thread_b)}"
                f" (disjoint locksets, at least one write)")


class RaceSanitizer:
    """Records (thread, lockset, access) triples and reports conflicts.

    Accesses are aggregated per ``(thread, lockset, attribute, kind)``
    combination, so memory stays bounded by the number of *distinct*
    access shapes, not the access count.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()     # guards the aggregation tables
        self._tls = threading.local()
        self._seq = 0
        # label -> {(thread, lockset, attr, kind): [count, first, last]}
        self._combos: dict[str, dict[tuple, list[int]]] = {}
        self._first_thread: dict[str, int] = {}
        self._shared_at: dict[str, int] = {}
        self._labels: dict[str, int] = {}

    # -- per-thread lock state (called by InstrumentedLock) ------------------
    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = self._tls.state = _ThreadState()
        return state

    def _push(self, name: str) -> None:
        state = self._state()
        state.held.append(name)
        state.history.append(name)

    def _drop(self, name: str) -> None:
        held = self._state().held
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    def lockset(self) -> frozenset[str]:
        """Instrumented locks the calling thread holds right now."""
        return frozenset(self._state().held)

    # -- registration --------------------------------------------------------
    def instrument_lock(self, lock: Any, name: str) -> InstrumentedLock:
        """Wrap a raw lock so acquisitions feed this sanitizer."""
        if isinstance(lock, InstrumentedLock):
            return lock
        return InstrumentedLock(lock, name, self)

    def watch(self, obj: Any, name: str | None = None,
              lock_attrs: tuple[str, ...] = ("_lock",),
              writes: frozenset[str] | set[str] | None = None) -> Any:
        """Register a shared object; returns its recording proxy.

        Every attribute in ``lock_attrs`` that holds a lock is replaced
        *on the object* by an instrumented wrapper, so even un-proxied
        internal code paths contribute to thread locksets.
        """
        if isinstance(obj, WatchProxy):
            return obj
        label = name or type(obj).__name__
        with self._mu:
            n = self._labels.get(label, 0)
            self._labels[label] = n + 1
        if n:
            label = f"{label}#{n + 1}"
        for attr in lock_attrs:
            lock = getattr(obj, attr, None)
            if (lock is not None and hasattr(lock, "acquire")
                    and not isinstance(lock, InstrumentedLock)):
                setattr(obj, attr,
                        InstrumentedLock(lock, f"{label}.{attr}", self))
        return WatchProxy(obj, self, label,
                          frozenset(writes) if writes is not None
                          else WRITE_METHODS)

    # -- recording -----------------------------------------------------------
    def record(self, label: str, attr: str, kind: str,
               locks: frozenset[str]) -> None:
        """Record one access (normally called by the proxy)."""
        tid = threading.get_ident()
        with self._mu:
            self._seq += 1
            seq = self._seq
            first = self._first_thread.setdefault(label, tid)
            if tid != first and label not in self._shared_at:
                self._shared_at[label] = seq
            key = (tid, locks, attr, kind)
            combos = self._combos.setdefault(label, {})
            entry = combos.get(key)
            if entry is None:
                combos[key] = [1, seq, seq]
            else:
                entry[0] += 1
                entry[2] = seq

    # -- reporting -----------------------------------------------------------
    def races(self) -> list[RaceReport]:
        """Conflicting unsynchronized access pairs seen so far."""
        with self._mu:
            combos = {label: dict(per) for label, per in
                      self._combos.items()}
            first_thread = dict(self._first_thread)
            shared_at = dict(self._shared_at)
        out: list[RaceReport] = []
        seen: set[tuple[str, frozenset[str]]] = set()
        for label in sorted(combos):
            shared = shared_at.get(label)
            if shared is None:
                continue    # only ever touched by one thread
            first = first_thread[label]
            live = []
            for (tid, locks, attr, kind), (_, _, last) in sorted(
                    combos[label].items(), key=lambda kv: kv[1][1]):
                if tid == first and last < shared:
                    continue    # construction-time, pre-sharing
                live.append((tid, locks, attr, kind))
            for i, a in enumerate(live):
                for b in live[i + 1:]:
                    if a[0] == b[0]:
                        continue
                    if a[3] != "write" and b[3] != "write":
                        continue
                    if a[1] & b[1]:
                        continue
                    key = (label, frozenset((a[2], b[2])))
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(RaceReport(
                        label=label,
                        attr_a=a[2], kind_a=a[3], locks_a=a[1],
                        thread_a=a[0],
                        attr_b=b[2], kind_b=b[3], locks_b=b[1],
                        thread_b=b[0]))
        return out

    def diagnostics(self) -> list[Diagnostic]:
        """The conflicts as ``race.unsync-access`` diagnostics."""
        return [RACE_RULES.diag(
            "race.unsync-access", race.describe(),
            location=f"{race.label}.{race.attr_a}",
            fix="guard both accesses with the same lock (the static "
                "pass: 'ma-opt lint --locks' names the guard)")
            for race in self.races()]

    def summary(self) -> str:
        with self._mu:
            n_access = self._seq
            n_objects = len(self._combos)
        races = self.races()
        tail = (f"{len(races)} race candidate(s)" if races
                else "no races observed")
        return (f"sanitizer: {n_access} access(es) across "
                f"{n_objects} watched object(s); {tail}")

    def reset(self) -> None:
        """Forget all recorded accesses (watched objects stay watched)."""
        with self._mu:
            self._seq = 0
            self._combos.clear()
            self._first_thread.clear()
            self._shared_at.clear()


# -- schedule torture ---------------------------------------------------------

@contextlib.contextmanager
def schedule_torture(switch_interval: float = 1e-5):
    """Shrink the interpreter's thread switch interval to force
    aggressive interleaving (restores the old interval on exit)."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(max(float(switch_interval), 1e-6))
    try:
        yield
    finally:
        sys.setswitchinterval(old)


# -- process-wide activation (the `ma-opt sanitize` hook) ---------------------

_ACTIVE: RaceSanitizer | None = None


def activate(sanitizer: RaceSanitizer) -> RaceSanitizer:
    """Make ``sanitizer`` the process-wide active sanitizer."""
    global _ACTIVE
    _ACTIVE = sanitizer
    return sanitizer


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> RaceSanitizer | None:
    """The process-wide sanitizer installed by ``ma-opt sanitize``."""
    return _ACTIVE


def instrument_telemetry(telemetry: Any,
                         sanitizer: RaceSanitizer | None = None) -> Any:
    """Swap a telemetry bundle's channels for watched proxies, in place.

    In-place matters: the executor's heartbeat thread and the optimizer
    share the *same* bundle object, so replacing its channel attributes
    routes both threads through the sanitizer.  Observers (e.g. the run
    store's recorder) are watched too.  A ``None`` bundle, or no active
    sanitizer, is a no-op.
    """
    sanitizer = sanitizer if sanitizer is not None else _ACTIVE
    if telemetry is None or sanitizer is None:
        return telemetry
    for channel in ("tracer", "metrics", "run_logger"):
        obj = getattr(telemetry, channel, None)
        if obj is not None:
            setattr(telemetry, channel,
                    sanitizer.watch(obj, name=channel))
    observers = getattr(telemetry, "observers", None)
    if observers is not None and len(observers):
        from repro.obs.hooks import ObserverList

        telemetry.observers = ObserverList([
            sanitizer.watch(ob, name=type(ob).__name__)
            for ob in observers])
    return telemetry


__all__ = [
    "RACE_RULES",
    "WRITE_METHODS",
    "InstrumentedLock",
    "RaceReport",
    "RaceSanitizer",
    "WatchProxy",
    "activate",
    "active",
    "deactivate",
    "instrument_telemetry",
    "schedule_torture",
]
