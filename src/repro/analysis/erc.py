"""Electrical rule checks (ERC) over :class:`repro.spice.netlist.Circuit`.

Successor of the orphaned ``repro.spice.lint`` module: same topology
checks — no ground reference, floating nodes, capacitor-isolated islands
with no DC path to ground, loops of ideal voltage sources/inductors — but
rewritten over an in-tree union-find (:mod:`repro.analysis.graph`) instead
of the undeclared :mod:`networkx` dependency, plus device-level rules:

* MOSFET geometry sanity (non-finite/nonpositive W or L, out-of-family
  dimensions),
* passive value sanity (NaN/Inf or nonpositive R/C/L, absurd magnitudes),
* case-insensitive element-name collisions (SPICE treats ``M1``/``m1`` as
  the same device),
* voltage sources shorting a node to itself, current sources driving an
  open circuit,
* SI-suffix sanity on textual decks (``1m`` resistor that almost
  certainly meant ``1meg``; suffixes :func:`repro.spice.units.parse_si`
  silently drops).

Every finding is a :class:`~repro.analysis.diagnostics.Diagnostic`;
:func:`lint_circuit` / :func:`assert_clean` keep the legacy
list-of-strings / raising API for existing callers.
"""

from __future__ import annotations

import math
import re

from repro.analysis.diagnostics import (
    Diagnostic,
    RuleSet,
    Severity,
    has_errors,
)
from repro.analysis.graph import UnionFind, find_cycle
from repro.spice.exceptions import NetlistError, SpiceError
from repro.spice.netlist import Circuit

GROUND = "0"

ERC_RULES = RuleSet()
ERC_RULES.add("erc.empty", Severity.ERROR,
              "circuit contains no elements")
ERC_RULES.add("erc.no-ground", Severity.ERROR,
              "no ground reference ('0'/'gnd') anywhere in the circuit")
ERC_RULES.add("erc.floating-node", Severity.ERROR,
              "node touched by fewer than two element terminals")
ERC_RULES.add("erc.source-open", Severity.ERROR,
              "independent source terminal connected to nothing else")
ERC_RULES.add("erc.no-dc-path", Severity.ERROR,
              "node has no DC path to ground (capacitor-isolated island)")
ERC_RULES.add("erc.vsource-loop", Severity.ERROR,
              "loop of ideal voltage sources/inductors (singular MNA)")
ERC_RULES.add("erc.source-short", Severity.ERROR,
              "voltage source with both terminals on the same node")
ERC_RULES.add("erc.mosfet-geometry", Severity.ERROR,
              "MOSFET W/L non-finite, nonpositive, or far outside any "
              "plausible process")
ERC_RULES.add("erc.passive-value", Severity.ERROR,
              "passive element value non-finite, nonpositive, or absurd")
ERC_RULES.add("erc.name-collision", Severity.WARNING,
              "element names differing only by case (one device in SPICE)")
ERC_RULES.add("erc.unit-suffix", Severity.WARNING,
              "suspicious SI suffix in a textual deck (e.g. milli-ohm "
              "resistor that probably meant 'meg')")
ERC_RULES.add("erc.parse-error", Severity.ERROR,
              "netlist text could not be parsed")

# Sanity envelopes for the magnitude rules (warning severity).  These are
# deliberately generous — they exist to catch unit mistakes (fF vs F,
# milli vs meg), not to police design choices.
_W_RANGE = (2e-8, 1e-2)      # MOSFET width [m]: 20 nm .. 1 cm
_L_RANGE = (1.6e-8, 1e-3)    # MOSFET length [m]: 16 nm .. 1 mm
_R_RANGE = (1e-3, 1e12)      # resistance [ohm]
_C_RANGE = (1e-18, 1e-1)     # capacitance [F]
_L_IND_RANGE = (1e-15, 1e2)  # inductance [H]


def _finite_positive(value: float) -> bool:
    return math.isfinite(value) and value > 0


def _check_topology(circuit: Circuit, connectivity) -> list[Diagnostic]:
    """Ground reference, floating nodes, DC islands, V-source loops."""
    from repro.spice.elements import (
        Capacitor,
        CurrentSource,
        Inductor,
        Mosfet,
        VoltageSource,
    )

    diags: list[Diagnostic] = []
    all_nodes: set[str] = set()
    touch_count: dict[str, int] = {}
    touching: dict[str, list] = {}
    for elem, nodes in connectivity:
        for node in nodes:
            all_nodes.add(node)
            touch_count[node] = touch_count.get(node, 0) + 1
            touching.setdefault(node, []).append(elem)
    if GROUND not in all_nodes:
        diags.append(ERC_RULES.diag(
            "erc.no-ground",
            "no ground reference ('0'/'gnd') in the circuit",
            fix="tie one node to '0' (or 'gnd')"))

    for node, count in sorted(touch_count.items()):
        if node == GROUND or count >= 2:
            continue
        only = touching[node][0]
        if isinstance(only, (VoltageSource, CurrentSource)):
            kind = ("current source" if isinstance(only, CurrentSource)
                    else "voltage source")
            diags.append(ERC_RULES.diag(
                "erc.source-open",
                f"{kind} {only.name!r} terminal {node!r} is connected to "
                f"nothing else",
                location=only.name,
                fix="connect the source to the circuit or remove it"))
        else:
            diags.append(ERC_RULES.diag(
                "erc.floating-node",
                f"node {node!r} is floating (touched by only {count} "
                f"terminal)",
                location=node,
                fix="connect the node or remove the dangling element"))

    # DC path to ground: capacitors and current sources provide none; a
    # MOSFET conducts d-s and ties s-b, but its gate is DC-isolated.
    index = {node: i for i, node in enumerate(sorted(all_nodes))}
    uf = UnionFind(len(index))
    for elem, nodes in connectivity:
        if isinstance(elem, (Capacitor, CurrentSource)):
            continue
        if isinstance(elem, Mosfet):
            d, _g, s, b = nodes
            uf.union(index[d], index[s])
            uf.union(index[s], index[b])
            continue
        for a, b_ in zip(nodes, nodes[1:]):
            uf.union(index[a], index[b_])
    if GROUND in index:
        ground_root = uf.find(index[GROUND])
        for node in sorted(all_nodes):
            if node != GROUND and uf.find(index[node]) != ground_root:
                diags.append(ERC_RULES.diag(
                    "erc.no-dc-path",
                    f"node {node!r} has no DC path to ground",
                    location=node,
                    fix="add a DC-conducting element (resistor, source) "
                        "to the island"))

    # Loops of ideal voltage sources (inductors are DC shorts).
    v_edges = [(index[nodes[0]], index[nodes[1]], elem.name)
               for elem, nodes in connectivity
               if isinstance(elem, (VoltageSource, Inductor))]
    cycle = find_cycle(v_edges)
    if cycle:
        diags.append(ERC_RULES.diag(
            "erc.vsource-loop",
            "loop of ideal voltage sources/inductors: " + ", ".join(cycle),
            location=cycle[-1],
            fix="break the loop with a resistance"))
    return diags


def _check_devices(circuit: Circuit, connectivity) -> list[Diagnostic]:
    """Per-element value/geometry sanity and name-collision checks."""
    from repro.spice.elements import (
        Capacitor,
        Inductor,
        Mosfet,
        Resistor,
        VoltageSource,
    )

    diags: list[Diagnostic] = []
    lowered: dict[str, str] = {}
    for elem, nodes in connectivity:
        prior = lowered.setdefault(elem.name.lower(), elem.name)
        if prior != elem.name:
            diags.append(ERC_RULES.diag(
                "erc.name-collision",
                f"element names {prior!r} and {elem.name!r} differ only by "
                f"case (SPICE is case-insensitive)",
                location=elem.name,
                fix="rename one of the two"))

        if isinstance(elem, Mosfet):
            for dim, value, (lo, hi) in (("W", elem.w, _W_RANGE),
                                         ("L", elem.l, _L_RANGE)):
                if not _finite_positive(value):
                    diags.append(ERC_RULES.diag(
                        "erc.mosfet-geometry",
                        f"mosfet {elem.name!r} has {dim}={value!r}; must be "
                        f"finite and positive",
                        location=elem.name,
                        fix=f"set a physical {dim} in meters"))
                elif not lo <= value <= hi:
                    diags.append(ERC_RULES.diag(
                        "erc.mosfet-geometry",
                        f"mosfet {elem.name!r} has {dim}={value:g} m, "
                        f"outside the sane range [{lo:g}, {hi:g}]",
                        location=elem.name,
                        severity=Severity.WARNING,
                        fix="check the unit scaling (um vs m?)"))
            continue

        for cls, attr, label, (lo, hi) in (
                (Resistor, "resistance", "resistance [ohm]", _R_RANGE),
                (Capacitor, "capacitance", "capacitance [F]", _C_RANGE),
                (Inductor, "inductance", "inductance [H]", _L_IND_RANGE)):
            if not isinstance(elem, cls):
                continue
            value = getattr(elem, attr)
            if not _finite_positive(value):
                diags.append(ERC_RULES.diag(
                    "erc.passive-value",
                    f"{elem.name!r} has {label} = {value!r}; must be finite "
                    f"and positive",
                    location=elem.name,
                    fix="replace the value (NaN propagates into the MNA "
                        "matrix)"))
            elif not lo <= value <= hi:
                diags.append(ERC_RULES.diag(
                    "erc.passive-value",
                    f"{elem.name!r} has {label} = {value:g}, outside the "
                    f"sane range [{lo:g}, {hi:g}]",
                    location=elem.name,
                    severity=Severity.WARNING,
                    fix="check the SI suffix on the value"))

        if isinstance(elem, VoltageSource) and nodes[0] == nodes[1]:
            diags.append(ERC_RULES.diag(
                "erc.source-short",
                f"voltage source {elem.name!r} shorts node {nodes[0]!r} to "
                f"itself",
                location=elem.name,
                fix="connect the source across two distinct nodes"))
    return diags


def run_erc(circuit: Circuit) -> list[Diagnostic]:
    """Run every electrical rule check; returns diagnostics (empty = clean).

    Topology-only circuits short-circuit: an empty netlist is one finding,
    not a cascade.
    """
    if not circuit.elements:
        return [ERC_RULES.diag("erc.empty", "circuit has no elements",
                               fix="add elements before analyzing")]
    connectivity = circuit.connectivity()
    return (_check_topology(circuit, connectivity)
            + _check_devices(circuit, connectivity))


# -- textual decks -----------------------------------------------------------

_ELEMENT_LINE_RE = re.compile(r"^\s*([rcl])\w*\s+\S+\s+\S+\s+(\S+)",
                              re.IGNORECASE)
_VALUE_RE = re.compile(
    r"^([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)([a-zA-Z]*)$")
_KNOWN_UNITS = {"v", "a", "hz", "f", "h", "ohm", "ohms", "s", "volt", "amp"}
_SUFFIX_LETTERS = set("tgxkmunpfa")


def _suffix_findings(text: str) -> list[Diagnostic]:
    """Unit-suffix sanity over the raw deck text (R/C/L value tokens)."""
    diags: list[Diagnostic] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("*")[0].split("$")[0]
        m = _ELEMENT_LINE_RE.match(stripped)
        if not m:
            continue
        letter = m.group(1).lower()
        token = m.group(2)
        vm = _VALUE_RE.match(token)
        if not vm:
            continue
        magnitude, suffix = float(vm.group(1)), vm.group(2).lower()
        if not suffix:
            continue
        if (letter == "r" and suffix[0] == "m"
                and not suffix.startswith("meg") and abs(magnitude) < 1e4):
            diags.append(ERC_RULES.diag(
                "erc.unit-suffix",
                f"resistor value {token!r} parses as milli-ohms "
                f"(SPICE 'm' is milli); did you mean '{vm.group(1)}meg'?",
                location=f"line {lineno}",
                fix="use 'meg' for megaohms"))
            continue
        if (suffix[0] not in _SUFFIX_LETTERS
                and suffix not in _KNOWN_UNITS):
            diags.append(ERC_RULES.diag(
                "erc.unit-suffix",
                f"value {token!r} has unrecognized suffix {suffix!r}; it is "
                f"parsed as a plain number",
                location=f"line {lineno}",
                fix="use a standard SI suffix (t/g/meg/k/m/u/n/p/f)"))
    return diags


def lint_deck(text: str) -> list[Diagnostic]:
    """Parse a SPICE deck and run ERC plus text-level suffix checks.

    A deck the parser rejects yields one ``erc.parse-error`` diagnostic
    (the suffix checks still run — they only need the raw text).
    """
    from repro.spice.parser import parse_netlist

    diags = _suffix_findings(text)
    try:
        circuit = parse_netlist(text)
    except SpiceError as exc:
        diags.append(ERC_RULES.diag("erc.parse-error", str(exc),
                                    fix="fix the deck syntax"))
        return diags
    return diags + run_erc(circuit)


# -- legacy API (repro.spice.lint) -------------------------------------------

def lint_circuit(circuit: Circuit) -> list[str]:
    """Run all checks; returns human-readable strings (empty = clean).

    Back-compat surface of the old ``repro.spice.lint`` module: message
    strings only, no severities.  New code should call :func:`run_erc`.
    """
    return [d.message for d in run_erc(circuit)]


def assert_clean(circuit: Circuit) -> None:
    """Raise :class:`~repro.spice.exceptions.NetlistError` listing every
    ERC finding, if any."""
    findings = lint_circuit(circuit)
    if findings:
        raise NetlistError("netlist lint failed:\n  " + "\n  ".join(findings))


def gate_errors(circuit: Circuit) -> list[Diagnostic]:
    """Error-severity findings only — the pre-simulation gate's view."""
    return [d for d in run_erc(circuit) if d.severity >= Severity.ERROR]


def is_simulatable(circuit: Circuit) -> bool:
    """True when no error-severity ERC finding blocks simulation."""
    return not has_errors(run_erc(circuit))
