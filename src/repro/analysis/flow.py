"""Shared AST dataflow core for the flow-sensitive analyzers.

The syntactic codelint (:mod:`repro.analysis.codelint`) inspects one node
at a time; the flow passes (:mod:`repro.analysis.rngflow`,
:mod:`repro.analysis.concurrency`) need to answer *where does this name
come from* and *who calls whom*.  This module builds the minimal model
both share:

* a :class:`Scope` per function (plus one synthetic module scope) with
  its parameters, local bindings (assignment targets with their value
  expressions, in statement order), ``global``/``nonlocal`` declarations,
  call sites, attribute/subscript writes and mutating method calls;
* lexical name resolution (:meth:`Scope.resolve`) walking local →
  enclosing functions → module, honouring ``global``/``nonlocal``;
* a best-effort :class:`CallGraph` over a set of analyzed modules,
  linking dotted call-site names to analyzed function scopes.

It is a CFG-lite: statements inside one scope are kept in source order
(enough for straight-line binding resolution), but branches are not
split into basic blocks — the passes built on top are heuristic linters,
not verifiers, and favour zero false positives over completeness.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

#: Method names that mutate their receiver in place (used to decide
#: whether a captured/shared object is written, not just read).
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
    "__setitem__", "fill", "emit", "inc", "observe", "set_gauge",
})


def dotted_name(node: ast.expr) -> str:
    """Best-effort dotted name of a Name/Attribute chain (else '')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class Binding:
    """One assignment of a name inside a scope."""

    name: str
    node: ast.AST            # the whole statement (Assign/For/With/...)
    value: ast.expr | None   # RHS expression when there is a single one
    lineno: int
    kind: str = "local"      # local | param | def | import | global-decl


@dataclass
class CallSite:
    """One call expression inside a scope."""

    callee: str              # dotted name ('' when the callee is dynamic)
    node: ast.Call
    lineno: int


@dataclass
class Mutation:
    """An in-place write: ``x[k] = v``, ``x.attr = v``, ``x += v``,
    ``x.append(v)`` — recorded against the *base* name ``x``."""

    base: str                # base variable name being mutated
    via: str                 # 'subscript' | 'attribute' | 'augassign' | method
    lineno: int


class Scope:
    """One function (or the module) with its bindings and uses."""

    def __init__(self, name: str, qualname: str, node: ast.AST | None,
                 parent: "Scope | None", is_module: bool = False) -> None:
        self.name = name
        self.qualname = qualname
        self.node = node
        self.parent = parent
        self.is_module = is_module
        self.is_class = False
        self.children: list[Scope] = []
        self.params: list[str] = []
        self.param_annotations: dict[str, str] = {}
        self.bindings: dict[str, list[Binding]] = {}
        self.global_decls: set[str] = set()
        self.nonlocal_decls: set[str] = set()
        self.calls: list[CallSite] = []
        self.mutations: list[Mutation] = []
        self.reads: set[str] = set()
        self.decorators: list[str] = []
        self.lineno = getattr(node, "lineno", 0)

    # -- structure -----------------------------------------------------------
    def add_child(self, child: "Scope") -> None:
        self.children.append(child)

    def walk(self):
        """This scope and every nested scope, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- bindings ------------------------------------------------------------
    def bind(self, name: str, node: ast.AST, value: ast.expr | None,
             kind: str = "local") -> None:
        self.bindings.setdefault(name, []).append(Binding(
            name=name, node=node, value=value,
            lineno=getattr(node, "lineno", 0), kind=kind))

    def binds(self, name: str) -> bool:
        return name in self.bindings

    def last_value(self, name: str,
                   before_line: int | None = None) -> ast.expr | None:
        """The most recent RHS bound to ``name`` (optionally before a
        line), or None when unbound / bound without a usable RHS."""
        best: Binding | None = None
        for b in self.bindings.get(name, ()):
            if before_line is not None and b.lineno > before_line:
                continue
            if best is None or b.lineno >= best.lineno:
                best = b
        return best.value if best is not None else None

    # -- resolution ----------------------------------------------------------
    def resolve(self, name: str) -> "Scope | None":
        """The scope that lexically owns ``name``, or None (builtin or
        truly unknown).  ``global``/``nonlocal`` declarations redirect."""
        if name in self.global_decls:
            scope: Scope | None = self
            while scope is not None and not scope.is_module:
                scope = scope.parent
            return scope if scope is not None and scope.binds(name) else scope
        if name in self.nonlocal_decls:
            scope = self.parent
            while scope is not None and not scope.is_module:
                if scope.binds(name):
                    return scope
                scope = scope.parent
            return None
        # Python skips class bodies when resolving free variables inside
        # methods; class scopes therefore always delegate upward.
        if self.binds(name) and not self.is_class:
            return self
        if self.parent is not None:
            return self.parent.resolve(name)
        return None

    def mutated_names(self) -> set[str]:
        """Base names this scope writes in place (incl. rebinding)."""
        out = {m.base for m in self.mutations}
        out.update(n for n, bs in self.bindings.items()
                   if any(b.kind == "local" for b in bs))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scope({self.qualname!r})"


class _ScopeBuilder(ast.NodeVisitor):
    """Builds the scope tree for one module in a single traversal."""

    def __init__(self, module: "ModuleModel") -> None:
        self.module = module
        self.current = module.module_scope

    # -- helpers -------------------------------------------------------------
    def _enter(self, scope: Scope, body) -> None:
        parent, self.current = self.current, scope
        parent.add_child(scope)
        self.module.scopes.append(scope)
        for stmt in body:
            self.visit(stmt)
        self.current = parent

    def _bind_target(self, target: ast.expr, stmt: ast.AST,
                     value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            self.current.bind(target.id, stmt, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, stmt, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, stmt, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = dotted_name(target.value)
            root = base.split(".")[0] if base else ""
            if root:
                via = ("attribute" if isinstance(target, ast.Attribute)
                       else "subscript")
                self.current.mutations.append(Mutation(
                    base=root, via=via,
                    lineno=getattr(stmt, "lineno", 0)))

    def _function_scope(self, node, qual_suffix: str = "") -> Scope:
        qual = (self.current.qualname + "." if not self.current.is_module
                else "") + node.name + qual_suffix
        scope = Scope(node.name, qual, node, self.current)
        args = node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            scope.params.append(a.arg)
            scope.bind(a.arg, node, None, kind="param")
            if a.annotation is not None:
                scope.param_annotations[a.arg] = dotted_name(a.annotation)
        for a in (args.vararg, args.kwarg):
            if a is not None:
                scope.params.append(a.arg)
                scope.bind(a.arg, node, None, kind="param")
        scope.decorators = [dotted_name(d) if not isinstance(d, ast.Call)
                            else dotted_name(d.func)
                            for d in node.decorator_list]
        return scope

    # -- scope-opening nodes -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.current.bind(node.name, node, None, kind="def")
        for d in node.decorator_list:
            self.visit(d)
        self._enter(self._function_scope(node), node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.current.bind(node.name, node, None, kind="def")
        for d in node.decorator_list:
            self.visit(d)
        self._enter(self._function_scope(node), node.body)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        qual = (self.current.qualname + "." if not self.current.is_module
                else "") + f"<lambda:{node.lineno}>"
        scope = Scope("<lambda>", qual, node, self.current)
        for a in (list(node.args.posonlyargs) + list(node.args.args)
                  + list(node.args.kwonlyargs)):
            scope.params.append(a.arg)
            scope.bind(a.arg, node, None, kind="param")
        self._enter(scope, [ast.Expr(value=node.body)])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Class bodies are not closure scopes; methods nest in the module
        # (or enclosing function) for name resolution, which matches how
        # Python resolves free variables inside methods.
        self.current.bind(node.name, node, None, kind="def")
        qual = (self.current.qualname + "." if not self.current.is_module
                else "") + node.name
        scope = Scope(node.name, qual, node, self.current)
        scope.is_class = True
        self._enter(scope, node.body)

    # -- bindings ------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        value = node.value if len(node.targets) == 1 else None
        for target in node.targets:
            self._bind_target(target, node, value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._bind_target(node.target, node, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self.current.mutations.append(Mutation(
                base=node.target.id, via="augassign", lineno=node.lineno))
            self.current.bind(node.target.id, node, None)
        else:
            self._bind_target(node.target, node, None)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_target(node.target, node, None)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit_For(node)  # type: ignore[arg-type]

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, node, item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self.visit_With(node)  # type: ignore[arg-type]

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.current.bind(name, node, None, kind="import")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            name = alias.asname or alias.name
            if name != "*":
                self.current.bind(name, node, None, kind="import")

    def visit_Global(self, node: ast.Global) -> None:
        self.current.global_decls.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.current.nonlocal_decls.update(node.names)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        # Comprehension targets bind into the enclosing function scope in
        # this model (close enough for linting; Python scopes them apart).
        self._bind_target(node.target, node.target, None)
        self.visit(node.iter)
        for cond in node.ifs:
            self.visit(cond)

    # -- uses ----------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        self.current.calls.append(CallSite(
            callee=callee, node=node, lineno=node.lineno))
        if callee and "." in callee:
            base, method = callee.rsplit(".", 1)
            if method in MUTATING_METHODS:
                self.current.mutations.append(Mutation(
                    base=base.split(".")[0], via=method, lineno=node.lineno))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.current.reads.add(node.id)


class ModuleModel:
    """Scope tree + suppressions for one parsed module."""

    def __init__(self, source: str, path: str = "<string>") -> None:
        self.source = source
        self.path = path
        self.tree = ast.parse(source)
        name = pathlib.PurePath(path).stem if path != "<string>" else path
        self.module_scope = Scope(name, name, self.tree, None,
                                  is_module=True)
        self.scopes: list[Scope] = [self.module_scope]
        builder = _ScopeBuilder(self)
        for stmt in self.tree.body:
            builder.visit(stmt)

    def functions(self) -> list[Scope]:
        """Every function/lambda scope (classes and module excluded)."""
        return [s for s in self.scopes
                if not s.is_module and not s.is_class]

    def function(self, qualname: str) -> Scope | None:
        for s in self.scopes:
            if s.qualname == qualname:
                return s
        return None


def build_module(source: str, path: str = "<string>") -> ModuleModel:
    """Parse + scope-model one module.  Raises ``SyntaxError`` on bad
    source (callers surface it as a ``code.syntax`` diagnostic)."""
    return ModuleModel(source, path=path)


class CallGraph:
    """Best-effort call graph over a set of analyzed modules.

    Edges are matched by name: a call site whose dotted callee's *last*
    segment names exactly one analyzed function links to it (same module
    preferred).  Dynamic dispatch, aliasing and shadowing are ignored —
    good enough to propagate worker-side-ness through helper functions.
    """

    def __init__(self, modules: list[ModuleModel]) -> None:
        self.modules = modules
        self._by_name: dict[str, list[Scope]] = {}
        for mod in modules:
            for scope in mod.functions():
                self._by_name.setdefault(scope.name, []).append(scope)
        self._module_of: dict[int, ModuleModel] = {}
        for mod in modules:
            for scope in mod.scopes:
                self._module_of[id(scope)] = mod

    def module_of(self, scope: Scope) -> ModuleModel:
        return self._module_of[id(scope)]

    def resolve_callee(self, caller: Scope, callee: str) -> Scope | None:
        """The analyzed scope a dotted call-site name refers to, if any."""
        if not callee:
            return None
        last = callee.split(".")[-1]
        candidates = self._by_name.get(last, [])
        if not candidates:
            return None
        same_module = [s for s in candidates
                       if self.module_of(s) is self.module_of(caller)]
        pool = same_module or candidates
        return pool[0] if len(pool) == 1 else None

    def callees(self, scope: Scope) -> list[Scope]:
        out, seen = [], set()
        for call in scope.calls:
            target = self.resolve_callee(scope, call.callee)
            if target is not None and id(target) not in seen:
                seen.add(id(target))
                out.append(target)
        return out

    def reachable_from(self, roots: list[Scope]) -> list[Scope]:
        """Roots plus everything transitively called from them."""
        seen: dict[int, Scope] = {}
        frontier = list(roots)
        while frontier:
            scope = frontier.pop()
            if id(scope) in seen:
                continue
            seen[id(scope)] = scope
            frontier.extend(self.callees(scope))
        return list(seen.values())


def iter_python_files(paths) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[pathlib.Path] = []
    for path in paths:
        p = pathlib.Path(path)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        else:
            out.append(p)
    return out
