"""Minimal graph machinery for the electrical rule checks.

The previous lint implementation pulled in :mod:`networkx` — an undeclared
dependency — for two queries a few dozen lines of array code answer
directly on circuit-sized graphs:

* connected components (DC-path-to-ground islands) via a union-find over
  a numpy parent array, and
* cycle detection with path recovery (ideal voltage-source loops) via the
  same union-find plus one BFS over the already-accepted edges.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over ``n`` integer labels (path halving + union by
    size), backed by numpy arrays."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("need n >= 0")
        self.parent = np.arange(n, dtype=np.intp)
        self.size = np.ones(n, dtype=np.intp)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]   # path halving
            i = int(parent[i])
        return i

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_mask(self, i: int) -> np.ndarray:
        """Boolean mask of every label in ``i``'s component."""
        root = self.find(i)
        return np.fromiter((self.find(j) == root
                            for j in range(len(self.parent))),
                           dtype=bool, count=len(self.parent))


def bfs_path(adjacency: dict[int, list[tuple[int, str]]],
             start: int, goal: int) -> list[str] | None:
    """Edge labels along a shortest path ``start -> goal``; None if
    unreachable.  ``adjacency`` maps node -> [(neighbour, edge_label)]."""
    if start == goal:
        return []
    seen = {start}
    frontier: list[tuple[int, list[str]]] = [(start, [])]
    while frontier:
        next_frontier: list[tuple[int, list[str]]] = []
        for node, labels in frontier:
            for neighbour, label in adjacency.get(node, ()):
                if neighbour in seen:
                    continue
                path = labels + [label]
                if neighbour == goal:
                    return path
                seen.add(neighbour)
                next_frontier.append((neighbour, path))
        frontier = next_frontier
    return None


def find_cycle(edges: list[tuple[int, int, str]]) -> list[str] | None:
    """Labels of the first cycle closed by ``edges`` (processed in order).

    Parallel edges between the same node pair count as a cycle (the
    voltage-source case ``V1 || V2``); self-loops are ignored — they are
    reported by a dedicated rule, not as loops.
    """
    if not edges:
        return None
    n = 1 + max(max(a, b) for a, b, _ in edges)
    uf = UnionFind(n)
    adjacency: dict[int, list[tuple[int, str]]] = {}
    for a, b, label in edges:
        if a == b:
            continue
        if not uf.union(a, b):
            path = bfs_path(adjacency, a, b)
            return (path or []) + [label]
        adjacency.setdefault(a, []).append((b, label))
        adjacency.setdefault(b, []).append((a, label))
    return None
