"""Lockset / guarded-by analyzer: thread-safety lint (``flow.lock.*``).

PR 6 made the telemetry layer genuinely multithreaded (the pool
heartbeat daemon shares ``RunLogger`` / ``MetricsRegistry`` / ``Tracer``
with the optimizer thread), and the service/executor roadmap items will
multiply the threads.  This pass is the static prong of the
race-detection layer (the dynamic prong is
:mod:`repro.analysis.dynrace`): it reasons about *lock discipline* in
source, per class.

For every class that owns a lock (an attribute assigned
``threading.Lock()`` / ``RLock()`` / ``Condition()`` / ``Semaphore()``,
or named by a ``# repro: guarded-by[<lock>]`` annotation), the analyzer

* infers which attributes the lock guards — any attribute written at
  least once inside a ``with self.<lock>:`` region outside ``__init__``,
  plus every attribute explicitly annotated
  ``# repro: guarded-by[<lock>]`` on its ``__init__`` assignment line —
  and flags reads/writes of guarded attributes outside the lock
  (``flow.lock.unguarded-read`` / ``flow.lock.unguarded-write``);
* records every nested acquisition and flags lock-order cycles across
  methods (``flow.lock.order`` — the classic AB/BA deadlock);
* flags blocking calls made while holding any lock —
  ``sleep``, thread/pool ``join``/waits, pool submissions, ``open()``
  and file-handle I/O (``flow.lock.blocking``);
* flags lock objects captured into ``@worker_side`` code or passed into
  pool submissions (``flow.lock.worker-capture``) — a lock is
  per-process state; pickling one into a spawn worker yields an
  unrelated copy that synchronizes nothing.

``__init__`` is construction time — the object is not shared yet — so
its accesses neither infer guards nor produce findings.  The analyzer is
with-statement based by design: explicit ``.acquire()``/``.release()``
pairs are invisible to it (and to reviewers); convert them or annotate.

Suppression uses the shared convention: ``# repro: ignore[flow.lock.*]``
on the offending line.  See ``docs/static_analysis.md`` for the rule
table and annotation syntax.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field

from repro.analysis.codelint import _suppressed, _suppressions
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import (
    MUTATING_METHODS,
    CallGraph,
    ModuleModel,
    Scope,
    build_module,
    dotted_name,
    iter_python_files,
)

LOCK_RULES = RuleSet()
LOCK_RULES.add(
    "flow.lock.unguarded-read", Severity.WARNING,
    "an attribute the class mutates under its lock (or declares "
    "guarded-by) is read without holding that lock — the reader can see "
    "a torn/stale value")
LOCK_RULES.add(
    "flow.lock.unguarded-write", Severity.ERROR,
    "an attribute the class mutates under its lock (or declares "
    "guarded-by) is written without holding that lock — a data race "
    "with every locked accessor")
LOCK_RULES.add(
    "flow.lock.order", Severity.ERROR,
    "two locks are acquired in opposite orders on different code paths "
    "— two threads interleaving those paths deadlock")
LOCK_RULES.add(
    "flow.lock.blocking", Severity.WARNING,
    "a blocking call (sleep, thread/pool join or wait, file I/O) runs "
    "while a lock is held — every other thread needing the lock stalls "
    "for the full duration")
LOCK_RULES.add(
    "flow.lock.worker-capture", Severity.ERROR,
    "a lock object reaches worker-side code or a pool submission — "
    "locks are per-process; a pickled copy in a spawn worker "
    "synchronizes nothing")

#: threading constructors whose result is treated as a lock object.
LOCK_TYPES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: receiver methods that mutate the receiver (superset of the flow core's
#: set: file-handle and event-ish mutators matter here).
_WRITE_METHODS = frozenset(MUTATING_METHODS) | frozenset({
    "write", "writelines", "flush", "close", "set", "put", "truncate",
})

#: pool/future wait methods that block the calling thread.
_POOL_WAITS = frozenset({
    "map", "starmap", "imap", "imap_unordered", "apply",
    "apply_async", "map_async", "starmap_async", "submit",
    "result", "shutdown", "wait",
})
_THREADY_RE = re.compile(r"(thread|proc|pool|executor|future|worker)",
                         re.IGNORECASE)
_FILEY_RE = re.compile(r"(^|_)(fh|fp|file|stream)s?$", re.IGNORECASE)
_FILE_IO = frozenset({"write", "writelines", "flush", "read",
                      "readline", "readlines", "seek"})

_GUARDED_BY_RE = re.compile(r"#\s*repro:\s*guarded-by\[([^\]]+)\]")


def _is_lock_ctor(node: ast.expr | None) -> bool:
    """True when ``node`` constructs a lock-like object."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if not name:
        return False
    last = name.split(".")[-1]
    return last in LOCK_TYPES or last.endswith("Lock")


def _guarded_annotations(source: str) -> dict[int, str]:
    """``{lineno: lock name}`` for every ``# repro: guarded-by[...]``."""
    out: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _GUARDED_BY_RE.search(line)
        if m:
            lock = m.group(1).strip()
            if lock.startswith("self."):
                lock = lock[5:]
            out[lineno] = lock
    return out


# -- per-function facts -------------------------------------------------------

@dataclass
class Access:
    """One ``self.<attr>`` touch inside a method."""

    attr: str
    kind: str                    # 'read' | 'write'
    method: str
    lineno: int
    held: frozenset[str]         # lock ids held at the access


@dataclass
class Acquisition:
    """One lock acquisition (a ``with <lock>:`` entry)."""

    lock: str
    held_before: tuple[str, ...]
    method: str
    lineno: int


@dataclass
class BlockingCall:
    """A blocking call made while at least one lock was held."""

    what: str
    locks: tuple[str, ...]
    method: str
    lineno: int


@dataclass
class ClassModel:
    """Lock facts for one class."""

    name: str
    lock_attrs: set[str] = field(default_factory=set)
    declared: dict[str, tuple[str, int]] = field(default_factory=dict)
    accesses: list[Access] = field(default_factory=list)

    def lock_id(self, attr: str) -> str:
        return f"{self.name}.{attr}"

    def guards(self) -> dict[str, tuple[str, str]]:
        """``{attr: (lock id, how it was established)}``.

        Declared guards (``# repro: guarded-by[...]``) win; otherwise an
        attribute is guarded by the lock it is most often written under
        (outside ``__init__``), as soon as one such locked write exists.
        """
        out: dict[str, tuple[str, str]] = {}
        for attr, (lock, _) in self.declared.items():
            out[attr] = (self.lock_id(lock), "declared guarded-by")
        votes: dict[str, dict[str, int]] = {}
        for acc in self.accesses:
            if (acc.kind != "write" or acc.method == "__init__"
                    or not acc.held or acc.attr in out):
                continue
            per = votes.setdefault(acc.attr, {})
            for lock in acc.held:
                per[lock] = per.get(lock, 0) + 1
        for attr, per in votes.items():
            lock = max(sorted(per), key=lambda k: per[k])
            out[attr] = (lock, "mutated under")
        return out


class _MethodWalker(ast.NodeVisitor):
    """Walk one function body tracking the set of held locks.

    Records self-attribute accesses (when a class context is given),
    lock acquisitions and blocking-calls-under-lock.  Nested function
    bodies are skipped: they do not run under the enclosing ``with``.
    """

    def __init__(self, method: str, cls: ClassModel | None,
                 module_locks: dict[str, str],
                 acquisitions: list[Acquisition],
                 blocking: list[BlockingCall]) -> None:
        self.method = method
        self.cls = cls
        self.module_locks = module_locks    # name -> lock id
        self.local_locks: dict[str, str] = {}
        self.acquisitions = acquisitions
        self.blocking = blocking
        self.held: list[str] = []

    # -- lock identity -------------------------------------------------------
    def _lock_of(self, expr: ast.expr) -> str | None:
        name = dotted_name(expr)
        if not name:
            return None
        if name.startswith("self.") and self.cls is not None:
            attr = name[5:]
            if attr in self.cls.lock_attrs:
                return self.cls.lock_id(attr)
            return None
        return self.local_locks.get(name) or self.module_locks.get(name)

    def _record(self, attr: str, kind: str, lineno: int) -> None:
        if self.cls is None or attr in self.cls.lock_attrs:
            return
        self.cls.accesses.append(Access(
            attr=attr, kind=kind, method=self.method, lineno=lineno,
            held=frozenset(self.held)))

    # -- structure -----------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        del node  # nested def: body runs later, not under these locks

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        del node

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed: list[str] = []
        for item in node.items:
            lock = self._lock_of(item.context_expr)
            if lock is not None:
                self.acquisitions.append(Acquisition(
                    lock=lock, held_before=tuple(self.held),
                    method=self.method, lineno=item.context_expr.lineno))
                self.held.append(lock)
                pushed.append(lock)
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in pushed:
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # -- assignments ---------------------------------------------------------
    def _self_root(self, target: ast.expr) -> ast.Attribute | None:
        """The ``self.<attr>`` node a write target is rooted at, if any."""
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return node
            node = node.value
        return None

    def _visit_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_target(elt)
            return
        root = self._self_root(target)
        if root is not None:
            self._record(root.attr, "write", target.lineno)
            # still read the subscript index, if any
            node = target
            while isinstance(node, (ast.Subscript, ast.Attribute)):
                if isinstance(node, ast.Subscript):
                    self.visit(node.slice)
                node = node.value
        else:
            self.visit(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        if (isinstance(node.value, ast.Call) and _is_lock_ctor(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            # local lock binding: with-statements on it are tracked
            name = node.targets[0].id
            self.local_locks[name] = f"{self.method}.{name}"
        for target in node.targets:
            self._visit_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._visit_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_target(node.target)
        root = self._self_root(node.target)
        if root is not None:
            # += both reads and writes the attribute
            self._record(root.attr, "read", node.lineno)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_target(target)

    # -- reads and calls -----------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self._record(node.attr, "read", node.lineno)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_blocking(node)
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"):
            # self.<attr>.<method>(...) — a mutator method writes <attr>
            kind = "write" if func.attr in _WRITE_METHODS else "read"
            self._record(func.value.attr, kind, node.lineno)
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        self.generic_visit(node)

    def _check_blocking(self, node: ast.Call) -> None:
        if not self.held:
            return
        name = dotted_name(node.func)
        if not name:
            return
        parts = name.split(".")
        last = parts[-1]
        receiver = parts[-2] if len(parts) > 1 else ""
        what: str | None = None
        if last == "sleep":
            what = f"{name}()"
        elif last == "open" and len(parts) == 1:
            what = "open()"
        elif last == "join" and _THREADY_RE.search(receiver):
            what = f"{name}() (thread/process join)"
        elif last in _POOL_WAITS and _THREADY_RE.search(receiver):
            what = f"{name}() (pool wait)"
        elif last in _FILE_IO and _FILEY_RE.search(receiver):
            what = f"{name}() (file I/O)"
        if what is not None:
            self.blocking.append(BlockingCall(
                what=what, locks=tuple(self.held), method=self.method,
                lineno=node.lineno))


# -- per-module analysis ------------------------------------------------------

@dataclass
class _ModuleFacts:
    classes: list[ClassModel] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)


def _iter_defs(tree: ast.Module):
    """Yield ``(funcdef, enclosing ClassDef | None)`` for every top-level
    function and every method of every (possibly nested) class."""
    def walk(node: ast.AST, cls: ast.ClassDef | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
    yield from walk(tree, None)


def _class_model(cls: ast.ClassDef,
                 annotations: dict[int, str]) -> ClassModel:
    """Discover a class's lock attributes and guarded-by declarations."""
    model = ClassModel(name=cls.name)
    for stmt in cls.body:      # class-level:  X = threading.Lock()
        if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    model.lock_attrs.add(target.id)
    for node in ast.walk(cls):  # instance-level:  self.X = Lock()
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    model.lock_attrs.add(target.attr)
        target_attr: str | None = None
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    target_attr = target.attr
                elif isinstance(target, ast.Name):
                    target_attr = target.id
            lock = annotations.get(node.lineno)
            if lock is not None and target_attr is not None:
                model.declared[target_attr] = (lock, node.lineno)
                model.lock_attrs.add(lock)
    return model


def _analyze_module(mod: ModuleModel) -> _ModuleFacts:
    facts = _ModuleFacts()
    annotations = _guarded_annotations(mod.source)
    modstem = pathlib.PurePath(mod.path).stem
    module_locks = {}
    for name, bindings in mod.module_scope.bindings.items():
        if any(_is_lock_ctor(b.value) for b in bindings):
            module_locks[name] = f"{modstem}.{name}"

    models: dict[int, ClassModel] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ClassDef):
            models[id(node)] = _class_model(node, annotations)

    for func, cls in _iter_defs(mod.tree):
        model = models.get(id(cls)) if cls is not None else None
        if model is not None and not model.lock_attrs:
            model = None  # lock-free class: nothing to guard
        walker = _MethodWalker(
            method=(f"{cls.name}.{func.name}" if cls is not None
                    else func.name),
            cls=model, module_locks=module_locks,
            acquisitions=facts.acquisitions, blocking=facts.blocking)
        for stmt in func.body:
            walker.visit(stmt)

    facts.classes.extend(
        m for m in models.values() if m.lock_attrs)
    return facts


# -- the rules ---------------------------------------------------------------

def _guard_findings(mod: ModuleModel, model: ClassModel,
                    emit) -> None:
    guards = model.guards()
    if not guards:
        return
    declared_lines = {ln for _, ln in model.declared.values()}
    for acc in model.accesses:
        method_leaf = acc.method.rsplit(".", 1)[-1]
        if method_leaf == "__init__" or acc.lineno in declared_lines:
            continue
        guard = guards.get(acc.attr)
        if guard is None:
            continue
        lock, how = guard
        if lock in acc.held:
            continue
        verb = "writes" if acc.kind == "write" else "reads"
        rule = ("flow.lock.unguarded-write" if acc.kind == "write"
                else "flow.lock.unguarded-read")
        emit(mod, acc.lineno, rule,
             f"{model.name}.{acc.attr} is {how} {lock}, but "
             f"{acc.method} {verb} it without holding the lock",
             fix=f"wrap the access in 'with self."
                 f"{lock.rsplit('.', 1)[-1]}:' (or annotate the true "
                 f"guard with '# repro: guarded-by[...]')")


def _order_findings(mod: ModuleModel, acquisitions: list[Acquisition],
                    emit) -> None:
    edges: dict[tuple[str, str], Acquisition] = {}
    adj: dict[str, set[str]] = {}
    for acq in acquisitions:
        for held in acq.held_before:
            if held == acq.lock:
                continue
            edges.setdefault((held, acq.lock), acq)
            adj.setdefault(held, set()).add(acq.lock)

    def reaches(src: str, dst: str) -> bool:
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for nxt in adj.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    reported: set[frozenset[str]] = set()
    for (a, b), acq in sorted(edges.items()):
        if not reaches(b, a):
            continue
        key = frozenset((a, b))
        if key in reported:
            continue
        reported.add(key)
        back = edges.get((b, a))
        where = (f"; the opposite order is taken in {back.method} "
                 f"(line {back.lineno})" if back is not None
                 else " via intermediate locks")
        emit(mod, acq.lineno, "flow.lock.order",
             f"{acq.method} acquires {b} while holding {a}, but another "
             f"path acquires them in the opposite order{where} — two "
             f"threads interleaving these paths deadlock",
             fix="pick one global acquisition order and re-order the "
                 "nested with-blocks to follow it")


def _blocking_findings(mod: ModuleModel, blocking: list[BlockingCall],
                       emit) -> None:
    for call in blocking:
        held = ", ".join(call.locks)
        emit(mod, call.lineno, "flow.lock.blocking",
             f"{call.method} calls {call.what} while holding {held} — "
             f"every thread contending for the lock stalls for the "
             f"call's full duration",
             fix="move the blocking call outside the locked region "
                 "(snapshot state under the lock, then operate on the "
                 "snapshot)")


def _worker_capture_findings(modules: list[ModuleModel],
                             graph: CallGraph, emit) -> None:
    from repro.analysis.concurrency import find_submissions, worker_roots

    def lock_binding(scope: Scope, name: str) -> bool:
        owner = scope.resolve(name)
        if owner is None:
            return False
        value = owner.last_value(name)
        return value is not None and _is_lock_ctor(value)

    roots = worker_roots(graph)
    root_scopes = [s for s, _ in roots]
    why = {id(s): w for s, w in roots}
    seen: set[tuple[int, str]] = set()
    for scope in graph.reachable_from(root_scopes):
        mod = graph.module_of(scope)
        reason = why.get(id(scope), "called from worker-side code")
        for name in sorted(scope.reads):
            if scope.binds(name) or not lock_binding(scope, name):
                continue
            if (id(scope), name) in seen:
                continue
            seen.add((id(scope), name))
            emit(mod, scope.lineno, "flow.lock.worker-capture",
                 f"worker-side function {scope.name!r} ({reason}) uses "
                 f"lock {name!r} from an enclosing scope; in a spawn "
                 f"worker it is an unrelated pickled copy that "
                 f"synchronizes nothing",
                 fix="synchronize in the parent (return results instead) "
                     "or use a multiprocessing primitive created by the "
                     "pool's initializer")
    for mod in modules:
        for scope in mod.scopes:
            for sub in find_submissions(scope):
                for node in ast.walk(sub.call):
                    if (isinstance(node, ast.Name)
                            and isinstance(node.ctx, ast.Load)
                            and lock_binding(scope, node.id)):
                        emit(mod, sub.lineno, "flow.lock.worker-capture",
                             f"lock {node.id!r} is passed into "
                             f"{sub.api}() — locks are per-process and "
                             f"do not survive pickling into workers",
                             fix="keep locks out of submission "
                                 "arguments; synchronize on the parent "
                                 "side")


# -- entry points -------------------------------------------------------------

def check_modules(modules: list[ModuleModel]) -> list[Diagnostic]:
    """Run every ``flow.lock.*`` rule over a set of parsed modules."""
    findings: list[tuple[ModuleModel, int, Diagnostic]] = []

    def emit(mod: ModuleModel, lineno: int, rule: str, message: str,
             fix: str = "") -> None:
        findings.append((mod, lineno, LOCK_RULES.diag(
            rule, message, location=f"{mod.path}:{lineno}", fix=fix)))

    for mod in modules:
        facts = _analyze_module(mod)
        for model in facts.classes:
            _guard_findings(mod, model, emit)
        _order_findings(mod, facts.acquisitions, emit)
        _blocking_findings(mod, facts.blocking, emit)
    graph = CallGraph(modules)
    _worker_capture_findings(modules, graph, emit)

    out: list[Diagnostic] = []
    for mod, lineno, diag in findings:
        if not _suppressed(diag, lineno, _suppressions(mod.source)):
            out.append(diag)
    return out


def check_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Run the lockset pass over one module's source text."""
    try:
        modules = [build_module(source, path=path)]
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]
    return check_modules(modules)


def check_paths(paths) -> list[Diagnostic]:
    """Run the lockset pass over files/directories as one unit (the
    worker-capture rule needs the cross-file call graph)."""
    modules: list[ModuleModel] = []
    diags: list[Diagnostic] = []
    for f in iter_python_files(paths):
        try:
            modules.append(build_module(
                f.read_text(encoding="utf-8"), path=str(f)))
        except SyntaxError as exc:
            diags.append(Diagnostic(
                rule="code.syntax", severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{f}:{exc.lineno or 0}"))
    diags.extend(check_modules(modules))
    return diags


__all__ = [
    "LOCK_RULES",
    "LOCK_TYPES",
    "Access",
    "Acquisition",
    "BlockingCall",
    "ClassModel",
    "check_modules",
    "check_paths",
    "check_source",
]
