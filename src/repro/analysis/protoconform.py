"""Protocol / state-machine conformance checks (rule ids ``proto.*``).

The job service has three artifacts that must stay in lock-step: the
lifecycle the :class:`~repro.serve.jobs.JobManager` actually implements,
the op set the server dispatches and the client sends, and the contract
``docs/service.md`` promises.  Drift between them is invisible to unit
tests (each side is self-consistent); this whole-unit pass extracts all
three and diffs them.

**State machine** (``proto.state.*``) — the declared spec is read from
the analyzed modules themselves: the ``JOB_STATES`` /
``TERMINAL_JOB_STATES`` tuples and the ``JOB_TRANSITIONS`` edge table
(module-level literals; :mod:`repro.serve.jobs` declares the real ones).
Every string literal assigned to or compared with a ``.state``
attribute / ``["state"]`` key must be a declared state
(``proto.state.unknown``), and an assignment that is provably guarded by
``x.state == "<from>"`` must follow a declared edge
(``proto.state.transition``; leaving a terminal state is the special
case ``proto.state.terminal`` — no resurrection).  Unguarded
assignments are not judged: the pass favours zero false positives.

**Op conformance** (``proto.op.*``) — the server-handled set (literals
compared against an ``op`` parameter, as in ``JobServer._dispatch``),
the client-sent set (first-argument literals of ``.request("<op>")``
calls), the declared ``OPS`` tuple, and the op table in the service doc
are pairwise diffed: ``proto.op.client-only`` / ``proto.op.server-only``
/ ``proto.op.undeclared`` / ``proto.op.unhandled`` /
``proto.op.undocumented``.

**Error codes** (``proto.error.mismatch``) — codes constructed via
``error_reply(_, "<code>", ...)`` / ``ProtocolError("<code>", ...)``
(including through a straight-line local, resolved with
:meth:`~repro.analysis.flow.Scope.last_value`) must be declared in
``ERROR_CODES`` and documented; declared-but-never-constructed codes
are a warning.  Client-local transport codes (``"disconnected"``,
``"timeout"``) are deliberately out of scope — only server-side
construction sites are collected.

Each check only runs when its inputs were actually found in the unit
(no declarations -> no findings), so the pass is quiet on code that
does not implement a protocol.  Suppression uses the shared
``# repro: ignore[rule-id]`` convention.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field

from repro.analysis.codelint import _suppressed, _suppressions
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import (
    ModuleModel,
    Scope,
    build_module,
    dotted_name,
    iter_python_files,
)

PROTO_RULES = RuleSet()
PROTO_RULES.add("proto.state.unknown", Severity.ERROR,
                "state literal is not in the declared JOB_STATES set")
PROTO_RULES.add("proto.state.transition", Severity.ERROR,
                "state assignment follows an edge missing from the "
                "declared JOB_TRANSITIONS table")
PROTO_RULES.add("proto.state.terminal", Severity.ERROR,
                "transition out of a terminal state (terminal states "
                "must not be resurrected)")
PROTO_RULES.add("proto.op.client-only", Severity.ERROR,
                "op the client sends but no server dispatch handles")
PROTO_RULES.add("proto.op.server-only", Severity.ERROR,
                "op the server dispatches but no client method sends")
PROTO_RULES.add("proto.op.undeclared", Severity.ERROR,
                "op implemented on either side but missing from the "
                "declared OPS tuple")
PROTO_RULES.add("proto.op.unhandled", Severity.ERROR,
                "op declared in OPS but not handled by any server "
                "dispatch")
PROTO_RULES.add("proto.op.undocumented", Severity.ERROR,
                "op set drifted from the service doc's op table")
PROTO_RULES.add("proto.error.mismatch", Severity.ERROR,
                "error-code sets drifted (constructed vs declared "
                "ERROR_CODES vs documented)")

#: Default location of the service contract document.
SERVICE_DOC = "docs/service.md"

_DECL_NAMES = ("JOB_STATES", "TERMINAL_JOB_STATES", "JOB_TRANSITIONS")
_SERVE_IMPORT_RE = re.compile(r"(?:from|import)\s+[\w.]*serve")


@dataclass
class _Decl:
    """The declared protocol, harvested from module-level literals."""

    states: set[str] = field(default_factory=set)
    terminal: set[str] = field(default_factory=set)
    transitions: set[tuple[str, str]] = field(default_factory=set)
    ops: set[str] = field(default_factory=set)
    error_codes: set[str] = field(default_factory=set)
    states_at: tuple[str, int] | None = None
    ops_at: tuple[str, int] | None = None
    codes_at: tuple[str, int] | None = None


def _str_elts(node: ast.expr) -> list[str]:
    """String constants of a tuple/list literal (else empty)."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return []
    return [e.value for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)]


def _pair_elts(node: ast.expr) -> list[tuple[str, str]]:
    """(str, str) pairs of a tuple-of-2-tuples literal (else empty)."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return []
    out: list[tuple[str, str]] = []
    for elt in node.elts:
        pair = _str_elts(elt)
        if len(pair) == 2:
            out.append((pair[0], pair[1]))
    return out


def harvest_declarations(modules: list[ModuleModel]) -> _Decl:
    """Collect the declared spec from module-level assignments."""
    decl = _Decl()
    for mod in modules:
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name == "JOB_STATES":
                decl.states.update(_str_elts(stmt.value))
                decl.states_at = (mod.path, stmt.lineno)
            elif name == "TERMINAL_JOB_STATES":
                decl.terminal.update(_str_elts(stmt.value))
            elif name == "JOB_TRANSITIONS":
                decl.transitions.update(_pair_elts(stmt.value))
            elif name == "OPS":
                decl.ops.update(_str_elts(stmt.value))
                decl.ops_at = (mod.path, stmt.lineno)
            elif name == "ERROR_CODES":
                decl.error_codes.update(_str_elts(stmt.value))
                decl.codes_at = (mod.path, stmt.lineno)
    return decl


# -- state-machine extraction -------------------------------------------------

def _state_base(expr: ast.expr) -> str | None:
    """Dotted base when ``expr`` is ``<base>.state`` or
    ``<base>["state"]`` (else None)."""
    if isinstance(expr, ast.Attribute) and expr.attr == "state":
        return dotted_name(expr.value) or "<expr>"
    if (isinstance(expr, ast.Subscript)
            and isinstance(expr.slice, ast.Constant)
            and expr.slice.value == "state"):
        return dotted_name(expr.value) or "<expr>"
    return None


def _literal_leaves(expr: ast.expr | None) -> list[str]:
    """String-constant leaves of an expression: the literal, both arms
    of a conditional, the operands of and/or."""
    if expr is None:
        return []
    if isinstance(expr, ast.Constant):
        return [expr.value] if isinstance(expr.value, str) else []
    if isinstance(expr, ast.IfExp):
        return _literal_leaves(expr.body) + _literal_leaves(expr.orelse)
    if isinstance(expr, ast.BoolOp):
        out: list[str] = []
        for value in expr.values:
            out.extend(_literal_leaves(value))
        return out
    return []


@dataclass(frozen=True)
class StateUse:
    """One state literal observed in the implementation."""

    value: str
    lineno: int
    kind: str                 # 'assign' | 'compare' | 'default'
    guard: str | None = None  # proven prior state for assignments


def _guard_from_test(test: ast.expr) -> tuple[str, str] | None:
    """(base, state) when ``test`` is ``<base>.state == "<lit>"``."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)):
        return None
    left, right = test.left, test.comparators[0]
    if isinstance(left, ast.Constant):
        left, right = right, left
    base = _state_base(left)
    if base is None or not isinstance(right, ast.Constant) \
            or not isinstance(right.value, str):
        return None
    return base, right.value


class _StateScan:
    """Collect state literals (with proven guards) from one module."""

    def __init__(self) -> None:
        self.uses: list[StateUse] = []

    def scan_module(self, mod: ModuleModel) -> list[StateUse]:
        self.uses = []
        self._block(mod.tree.body, {}, in_class=False)
        return self.uses

    # -- statements ----------------------------------------------------------
    def _block(self, stmts: list[ast.stmt], guards: dict[str, str],
               in_class: bool) -> None:
        for stmt in stmts:
            self._stmt(stmt, guards, in_class)

    def _stmt(self, s: ast.stmt, guards: dict[str, str],
              in_class: bool) -> None:
        # Compound statements recurse into their bodies below; scan only
        # their header expressions here so each Compare is seen once.
        headers: list[ast.expr] = []
        if isinstance(s, (ast.If, ast.While)):
            headers = [s.test]
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            headers = [s.iter]
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            headers = [item.context_expr for item in s.items]
        elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef)) \
                or isinstance(s, ast.Try) \
                or (hasattr(ast, "TryStar")
                    and isinstance(s, ast.TryStar)):
            headers = []
        else:
            headers = [s]  # type: ignore[list-item]
        for header in headers:
            for expr in ast.walk(header):
                if isinstance(expr, ast.Compare):
                    self._compare(expr)
        if isinstance(s, ast.If):
            guard = _guard_from_test(s.test)
            body_guards = dict(guards)
            if guard is not None:
                body_guards[guard[0]] = guard[1]
            self._block(s.body, body_guards, in_class)
            self._block(s.orelse, guards, in_class)
        elif isinstance(s, ast.ClassDef):
            self._block(s.body, {}, in_class=True)
        elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._block(s.body, {}, in_class=False)
        elif isinstance(s, (ast.For, ast.AsyncFor, ast.While)):
            self._block(s.body, guards, in_class)
            self._block(s.orelse, guards, in_class)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            self._block(s.body, guards, in_class)
        elif isinstance(s, ast.Try) or (hasattr(ast, "TryStar")
                                        and isinstance(s, ast.TryStar)):
            self._block(s.body, guards, in_class)
            for handler in s.handlers:
                self._block(handler.body, guards, in_class)
            self._block(s.orelse, guards, in_class)
            self._block(s.finalbody, guards, in_class)
        elif isinstance(s, ast.Assign):
            for target in s.targets:
                self._assign(target, s.value, s.lineno, guards)
        elif isinstance(s, ast.AnnAssign) and s.value is not None:
            self._assign(s.target, s.value, s.lineno, guards)
            if in_class and isinstance(s.target, ast.Name) \
                    and s.target.id == "state":
                for value in _literal_leaves(s.value):
                    self.uses.append(StateUse(value, s.lineno, "default"))

    def _assign(self, target: ast.expr, value: ast.expr, lineno: int,
                guards: dict[str, str]) -> None:
        base = _state_base(target)
        if base is None:
            return
        for literal in _literal_leaves(value):
            self.uses.append(StateUse(literal, lineno, "assign",
                                      guard=guards.get(base)))

    # -- comparisons ---------------------------------------------------------
    def _compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        if not any(_state_base(op) is not None for op in operands):
            return
        for op in operands:
            if _state_base(op) is not None:
                continue
            if isinstance(op, ast.Constant) and isinstance(op.value, str):
                self.uses.append(StateUse(op.value, node.lineno,
                                          "compare"))
            elif isinstance(op, (ast.Tuple, ast.List, ast.Set)):
                for value in _str_elts(op):
                    self.uses.append(StateUse(value, node.lineno,
                                              "compare"))


def _scans_states(mod: ModuleModel) -> bool:
    """Whether a module's state literals should be held to the declared
    lifecycle: it references the declarations or imports the serve
    package (job records travel through both)."""
    if any(name in mod.source for name in _DECL_NAMES):
        return True
    return bool(_SERVE_IMPORT_RE.search(mod.source))


# -- op / error-code extraction -----------------------------------------------

@dataclass(frozen=True)
class OpUse:
    op: str
    path: str
    lineno: int


def server_handled_ops(modules: list[ModuleModel]) -> list[OpUse]:
    """Literals compared against an ``op`` parameter (the dispatch)."""
    out: list[OpUse] = []
    for mod in modules:
        for scope in mod.functions():
            if "op" not in scope.params:
                continue
            for node in ast.walk(scope.node):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left] + list(node.comparators)
                if not any(isinstance(o, ast.Name) and o.id == "op"
                           for o in operands):
                    continue
                for o in operands:
                    if isinstance(o, ast.Constant) \
                            and isinstance(o.value, str):
                        out.append(OpUse(o.value, mod.path, node.lineno))
                    elif isinstance(o, (ast.Tuple, ast.List, ast.Set)):
                        for value in _str_elts(o):
                            out.append(OpUse(value, mod.path,
                                             node.lineno))
    return out


def client_sent_ops(modules: list[ModuleModel]) -> list[OpUse]:
    """First-argument literals of ``.request("<op>", ...)`` calls."""
    out: list[OpUse] = []
    for mod in modules:
        for scope in mod.scopes:
            for site in scope.calls:
                node = site.node
                if not (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "request"):
                    continue
                if node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    out.append(OpUse(node.args[0].value, mod.path,
                                     site.lineno))
    return out


def constructed_error_codes(modules: list[ModuleModel]) -> list[OpUse]:
    """Code literals at ``error_reply``/``ProtocolError`` construction
    sites; a straight-line local resolves through
    :meth:`Scope.last_value` (so conditional codes are seen too)."""
    out: list[OpUse] = []

    def literals(scope: Scope, expr: ast.expr, lineno: int) -> list[str]:
        if isinstance(expr, ast.Name):
            expr = scope.last_value(expr.id, before_line=lineno)
            if expr is None:
                return []
        return _literal_leaves(expr)

    for mod in modules:
        for scope in mod.scopes:
            for site in scope.calls:
                last = site.callee.split(".")[-1] if site.callee else ""
                arg: ast.expr | None = None
                if last == "error_reply" and len(site.node.args) >= 2:
                    arg = site.node.args[1]
                elif last == "ProtocolError" and site.node.args:
                    arg = site.node.args[0]
                if arg is None:
                    continue
                for value in literals(scope, arg, site.lineno):
                    out.append(OpUse(value, mod.path, site.lineno))
    return out


# -- the service doc ----------------------------------------------------------

_DOC_CELL_RE = re.compile(r"`([^`]+)`")


def doc_tables(text: str) -> tuple[dict[str, int], dict[str, int]]:
    """(ops, error codes) promised by a markdown contract doc.

    A table whose first header cell is ``op`` (resp. ``code``)
    contributes the backticked first-column entry of each row; values
    map to their line numbers.
    """
    ops: dict[str, int] = {}
    codes: dict[str, int] = {}
    current: dict[str, int] | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            current = None
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        first = cells[0] if cells else ""
        if first == "op":
            current = ops
            continue
        if first == "code":
            current = codes
            continue
        if current is None or not first or set(first) <= set("-: "):
            continue
        m = _DOC_CELL_RE.match(first)
        if m:
            current.setdefault(m.group(1), lineno)
    return ops, codes


# -- the pass -----------------------------------------------------------------

def check_modules(modules: list[ModuleModel], doc_text: str | None = None,
                  doc_path: str = SERVICE_DOC) -> list[Diagnostic]:
    """Run every ``proto.*`` rule over a set of parsed modules as one
    unit, optionally against a markdown contract doc."""
    decl = harvest_declarations(modules)
    findings: list[tuple[ModuleModel | None, int, Diagnostic]] = []

    def emit(mod: ModuleModel | None, location: str, lineno: int,
             rule: str, message: str, fix: str = "",
             severity: Severity | None = None) -> None:
        findings.append((mod, lineno, PROTO_RULES.diag(
            rule, message, location=location, fix=fix,
            severity=severity)))

    def emit_at(at: tuple[str, int] | None, rule: str, message: str,
                fix: str = "", severity: Severity | None = None) -> None:
        path, lineno = at if at is not None else ("<unit>", 0)
        mod = next((m for m in modules if m.path == path), None)
        emit(mod, f"{path}:{lineno}", lineno, rule, message, fix=fix,
             severity=severity)

    # -- lifecycle ----------------------------------------------------------
    if decl.states:
        scan = _StateScan()
        for mod in modules:
            if not _scans_states(mod):
                continue
            for use in scan.scan_module(mod):
                loc = f"{mod.path}:{use.lineno}"
                if use.value not in decl.states:
                    emit(mod, loc, use.lineno, "proto.state.unknown",
                         f"state literal {use.value!r} is not one of "
                         f"the declared JOB_STATES "
                         f"({', '.join(sorted(decl.states))})",
                         fix="fix the typo or declare the state")
                    continue
                if use.kind != "assign" or use.guard is None \
                        or not decl.transitions:
                    continue
                edge = (use.guard, use.value)
                if edge in decl.transitions or use.guard == use.value:
                    continue
                if use.guard in decl.terminal:
                    emit(mod, loc, use.lineno, "proto.state.terminal",
                         f"transition {use.guard!r} -> {use.value!r} "
                         f"resurrects a terminal state",
                         fix="terminal states must not change; create "
                             "a new job instead")
                else:
                    emit(mod, loc, use.lineno, "proto.state.transition",
                         f"transition {use.guard!r} -> {use.value!r} is "
                         f"not in the declared JOB_TRANSITIONS table",
                         fix="add the edge to JOB_TRANSITIONS or fix "
                             "the assignment")

    # -- ops ----------------------------------------------------------------
    handled = server_handled_ops(modules)
    sent = client_sent_ops(modules)
    handled_set = {u.op for u in handled}
    sent_set = {u.op for u in sent}

    def first(uses: list[OpUse], op: str) -> OpUse:
        return next(u for u in uses if u.op == op)

    if handled_set and sent_set:
        for op in sorted(sent_set - handled_set):
            use = first(sent, op)
            emit_at((use.path, use.lineno), "proto.op.client-only",
                    f"client sends op {op!r} but no server dispatch "
                    f"handles it",
                    fix="add a dispatch branch (and document the op) "
                        "or drop the client method")
        for op in sorted(handled_set - sent_set):
            use = first(handled, op)
            emit_at((use.path, use.lineno), "proto.op.server-only",
                    f"server handles op {op!r} but no client method "
                    f"sends it",
                    fix="add the client method or retire the dispatch "
                        "branch")
    if decl.ops:
        for op in sorted((handled_set | sent_set) - decl.ops):
            uses = [u for u in handled + sent if u.op == op]
            emit_at((uses[0].path, uses[0].lineno), "proto.op.undeclared",
                    f"op {op!r} is implemented but missing from the "
                    f"declared OPS tuple",
                    fix="add it to OPS (validate_request rejects "
                        "undeclared ops at runtime)")
        if handled_set:
            for op in sorted(decl.ops - handled_set):
                emit_at(decl.ops_at, "proto.op.unhandled",
                        f"op {op!r} is declared in OPS but no server "
                        f"dispatch handles it",
                        fix="implement the dispatch branch or remove "
                            "the op from OPS")

    # -- error codes --------------------------------------------------------
    used = constructed_error_codes(modules)
    used_set = {u.op for u in used}
    if decl.error_codes:
        for code in sorted(used_set - decl.error_codes):
            use = first(used, code)
            emit_at((use.path, use.lineno), "proto.error.mismatch",
                    f"error code {code!r} is constructed but missing "
                    f"from the declared ERROR_CODES tuple",
                    fix="declare the code (clients branch on it)")
        if used_set:
            for code in sorted(decl.error_codes - used_set):
                emit_at(decl.codes_at, "proto.error.mismatch",
                        f"error code {code!r} is declared but never "
                        f"constructed by the server",
                        severity=Severity.WARNING,
                        fix="retire the code or wire up the error path")

    # -- the contract doc ---------------------------------------------------
    if doc_text is not None:
        doc_ops, doc_codes = doc_tables(doc_text)
        implemented_ops = decl.ops | handled_set
        if doc_ops and implemented_ops:
            for op in sorted(implemented_ops - set(doc_ops)):
                emit_at(decl.ops_at or
                        ((first(handled, op).path, first(handled, op)
                          .lineno) if op in handled_set else None),
                        "proto.op.undocumented",
                        f"op {op!r} is implemented but missing from "
                        f"the op table in {doc_path}",
                        fix="document the op (the doc is the contract)")
            for op in sorted(set(doc_ops) - implemented_ops):
                emit(None, f"{doc_path}:{doc_ops[op]}", 0,
                     "proto.op.undocumented",
                     f"op {op!r} is documented in {doc_path} but not "
                     f"implemented",
                     fix="drop the stale row or implement the op")
        declared_codes = decl.error_codes
        if doc_codes and declared_codes:
            for code in sorted(declared_codes - set(doc_codes)):
                emit_at(decl.codes_at, "proto.error.mismatch",
                        f"error code {code!r} is declared but missing "
                        f"from the code table in {doc_path}",
                        fix="document the code")
            for code in sorted(set(doc_codes) - declared_codes):
                emit(None, f"{doc_path}:{doc_codes[code]}", 0,
                     "proto.error.mismatch",
                     f"error code {code!r} is documented in {doc_path} "
                     f"but not declared in ERROR_CODES",
                     fix="drop the stale row or declare the code")

    # -- per-line suppressions ----------------------------------------------
    out: list[Diagnostic] = []
    for mod, lineno, diag in findings:
        if mod is not None:
            suppressions = _suppressions(mod.source)
            if _suppressed(diag, lineno, suppressions):
                continue
        out.append(diag)
    return out


def check_source(source: str, path: str = "<string>",
                 doc_text: str | None = None) -> list[Diagnostic]:
    """Run the conformance pass over one module's source text."""
    try:
        modules = [build_module(source, path=path)]
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]
    return check_modules(modules, doc_text=doc_text)


def check_paths(paths, doc: str | pathlib.Path | None = None
                ) -> list[Diagnostic]:
    """Run the conformance pass over files/directories as one unit.

    ``doc`` is the markdown contract to cross-check (defaults to
    :data:`SERVICE_DOC` when that file exists under the current
    directory; pass a path to force it, or a nonexistent one to skip).
    """
    if doc is None and pathlib.Path(SERVICE_DOC).is_file():
        doc = SERVICE_DOC
    doc_text: str | None = None
    doc_path = SERVICE_DOC
    if doc is not None and pathlib.Path(doc).is_file():
        doc_text = pathlib.Path(doc).read_text(encoding="utf-8")
        doc_path = str(doc)
    modules: list[ModuleModel] = []
    diags: list[Diagnostic] = []
    for f in iter_python_files(paths):
        try:
            modules.append(build_module(
                f.read_text(encoding="utf-8"), path=str(f)))
        except SyntaxError as exc:
            diags.append(Diagnostic(
                rule="code.syntax", severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{f}:{exc.lineno or 0}"))
    diags.extend(check_modules(modules, doc_text=doc_text,
                               doc_path=doc_path))
    return diags


__all__ = [
    "PROTO_RULES",
    "SERVICE_DOC",
    "OpUse",
    "StateUse",
    "check_modules",
    "check_paths",
    "check_source",
    "client_sent_ops",
    "constructed_error_codes",
    "doc_tables",
    "harvest_declarations",
    "server_handled_ops",
]
