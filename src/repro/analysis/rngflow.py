"""Flow-sensitive RNG provenance checks (rule ids ``flow.rng.*``).

Every stochastic quantity in this repo must flow from a seeded
:class:`numpy.random.Generator` threaded through function parameters (or
seeded instance state) — that is what makes runs reproducible and
checkpoint/resume bit-exact (PR 2).  The syntactic ``code.global-rng``
rule catches ``np.random.uniform`` calls; this pass tracks where a
*generator object* comes from:

* ``flow.rng.no-param`` — a function samples from a module-global
  generator instead of taking an ``rng`` parameter (or using seeded
  ``self.*`` state): callers cannot control its stream, and two call
  orders give two histories.
* ``flow.rng.unseeded`` — ``np.random.default_rng()`` with no seed
  argument outside an entry point (``main``/``cmd_*`` functions, example
  scripts): the stream differs every process, so the run cannot be
  reproduced or resumed.
* ``flow.rng.shared-closure`` — a closure submitted to concurrent
  execution samples from a generator captured from the parent scope:
  workers either share one stream (races, thread path) or each get a
  pickled copy producing *identical* streams (pool path).  Spawn child
  generators instead (``rng.spawn()`` / ``SeedSequence.spawn``).

Provenance the pass accepts as correct: a parameter of the sampling
function (or of any enclosing function, when not concurrently executed),
``self``/``cls`` attribute state, and a local ``default_rng(seed)``
construction with an explicit seed.
"""

from __future__ import annotations

import ast
import pathlib

from repro.analysis.codelint import _suppressed, _suppressions
from repro.analysis.concurrency import find_submissions
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import (
    ModuleModel,
    Scope,
    build_module,
    dotted_name,
    iter_python_files,
)

RNG_RULES = RuleSet()
RNG_RULES.add("flow.rng.no-param", Severity.ERROR,
              "function samples from a module-global Generator instead "
              "of a threaded rng parameter")
RNG_RULES.add("flow.rng.unseeded", Severity.WARNING,
              "default_rng() without a seed outside an entry point "
              "(stream differs every process; resume breaks)")
RNG_RULES.add("flow.rng.shared-closure", Severity.ERROR,
              "closure submitted to concurrent execution samples from a "
              "parent-scope Generator (identical or racing streams)")

#: Sampling methods of numpy.random.Generator (and legacy RandomState).
SAMPLER_METHODS = frozenset({
    "random", "uniform", "normal", "standard_normal", "integers",
    "choice", "permutation", "permuted", "shuffle", "exponential",
    "beta", "gamma", "binomial", "poisson", "multivariate_normal",
    "lognormal", "laplace", "triangular", "rayleigh", "dirichlet",
    "geometric", "hypergeometric", "multinomial", "chisquare",
    "standard_cauchy", "standard_exponential", "standard_gamma", "bytes",
    "randint", "rand", "randn",  # legacy RandomState spellings
})

#: Names that look like generator objects.  Deliberately narrow: a false
#: negative is cheap (the sampler-method check still guards), a false
#: positive on e.g. ``gen.send`` would be noise.
_RNG_NAME_HINTS = ("rng", "random_state")


def is_rng_name(name: str, scope: Scope | None = None) -> bool:
    """Heuristic: is ``name`` a Generator-typed variable?"""
    base = name.split(".")[-1].lower()
    if base in _RNG_NAME_HINTS or base.endswith("_rng") \
            or base.startswith("rng_"):
        return True
    if scope is not None:
        annotation = scope.param_annotations.get(name, "")
        if annotation.split(".")[-1] in ("Generator", "RandomState",
                                         "BitGenerator"):
            return True
    return False


def is_entry_point(scope: Scope, path: str) -> bool:
    """Entry points own their seeding policy: ``main``-like functions and
    script/module scopes of ``examples``/``__main__`` files."""
    if scope.name == "main" or scope.name.startswith("cmd_"):
        return True
    parts = pathlib.PurePath(path).parts
    stem = pathlib.PurePath(path).stem
    if scope.is_module and (stem == "__main__" or "examples" in parts):
        return True
    return False


def _submitted_scopes(mod: ModuleModel) -> set[int]:
    """ids of function scopes submitted to concurrent execution."""
    out: set[int] = set()
    for scope in mod.scopes:
        for sub in find_submissions(scope):
            if isinstance(sub.func, ast.Lambda):
                for child in scope.children:
                    if child.node is sub.func:
                        out.add(id(child))
            else:
                name = dotted_name(sub.func)
                if name and "." not in name:
                    owner = scope.resolve(name)
                    if owner is not None and not owner.is_module:
                        for child in owner.children:
                            if child.name == name:
                                out.add(id(child))
    return out


def check_module(mod: ModuleModel) -> list[Diagnostic]:
    """Run every ``flow.rng.*`` rule over one parsed module."""
    findings: list[tuple[int, Diagnostic]] = []
    submitted = _submitted_scopes(mod)

    def emit(lineno: int, rule: str, message: str, fix: str = "") -> None:
        findings.append((lineno, RNG_RULES.diag(
            rule, message, location=f"{mod.path}:{lineno}", fix=fix)))

    for scope in mod.scopes:
        if scope.is_class:
            continue
        entry = is_entry_point(scope, mod.path)

        # -- unseeded default_rng() anywhere in a non-entry-point scope ------
        if not entry:
            for site in scope.calls:
                if site.callee.split(".")[-1] != "default_rng":
                    continue
                if not site.node.args and not site.node.keywords:
                    where = ("module level" if scope.is_module
                             else f"function {scope.name!r}")
                    emit(site.lineno, "flow.rng.unseeded",
                         f"default_rng() without a seed at {where}",
                         fix="accept an rng/seed parameter and derive the "
                             "generator from it")

        # -- sampling provenance ---------------------------------------------
        for site in scope.calls:
            callee = site.callee
            if "." not in callee:
                continue
            base, method = callee.rsplit(".", 1)
            if method not in SAMPLER_METHODS:
                continue
            root = base.split(".")[0]
            if root in ("self", "cls"):
                continue  # seeded instance state (checked at __init__)
            if "." in base:
                continue  # foo.bar.normal(...): provenance untrackable
            if not is_rng_name(base, scope):
                continue
            owner = scope.resolve(base)
            if owner is None:
                continue  # imported / builtin: other rules cover it
            if owner is scope:
                continue  # parameter or local construction (checked above)
            if owner.is_module:
                emit(site.lineno, "flow.rng.no-param",
                     f"function {scope.name!r} samples from module-global "
                     f"generator {base!r} without taking an rng parameter",
                     fix="thread the Generator through a parameter")
            elif id(scope) in submitted:
                emit(site.lineno, "flow.rng.shared-closure",
                     f"concurrently-executed closure {scope.name!r} "
                     f"samples from generator {base!r} captured from "
                     f"{owner.name!r} — streams race or repeat",
                     fix="spawn per-task generators (rng.spawn(n)) and "
                         "pass one to each submission")

    suppressions = _suppressions(mod.source)
    return [diag for lineno, diag in findings
            if not _suppressed(diag, lineno, suppressions)]


def check_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Run the RNG-flow pass over one module's source text."""
    try:
        mod = build_module(source, path=path)
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]
    return check_module(mod)


def check_paths(paths) -> list[Diagnostic]:
    """Run the RNG-flow pass over files and/or directory trees."""
    diags: list[Diagnostic] = []
    for f in iter_python_files(paths):
        diags.extend(check_source(f.read_text(encoding="utf-8"),
                                  path=str(f)))
    return diags


__all__ = [
    "RNG_RULES",
    "SAMPLER_METHODS",
    "check_module",
    "check_paths",
    "check_source",
    "is_entry_point",
    "is_rng_name",
]
