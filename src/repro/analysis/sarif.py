"""SARIF 2.1.0 renderer for analysis diagnostics.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning ingests: uploading a ``*.sarif`` artifact
surfaces findings as PR annotations.  This renderer maps the repo's
:class:`~repro.analysis.diagnostics.Diagnostic` model onto the minimal
conformant subset:

* one ``run`` with ``tool.driver`` = ``ma-opt lint``, rule metadata
  taken from the analyzers' :class:`RuleSet` catalogs;
* severity mapping ``ERROR -> "error"``, ``WARNING -> "warning"``,
  ``INFO -> "note"``;
* ``location`` strings of the form ``path:line`` become physical
  locations (URIs are repo-relative); locationless findings (config
  checks, ERC element names) carry the raw string in the message only.

No external dependency: the document is plain JSON.
"""

from __future__ import annotations

import json
import re

from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_LOC_RE = re.compile(r"^(?P<path>[^:]+\.(?:py|cir|sp|net|json|ya?ml))"
                     r":(?P<line>\d+)$")


def _physical_location(location: str) -> dict | None:
    m = _LOC_RE.match(location)
    if not m:
        return None
    uri = m.group("path").replace("\\", "/").lstrip("./")
    out: dict = {"artifactLocation": {"uri": uri}}
    line = int(m.group("line"))
    if line > 0:
        out["region"] = {"startLine": line}
    return out


def _result(diag: Diagnostic) -> dict:
    message = diag.message
    if diag.fix:
        message += f" (fix: {diag.fix})"
    result: dict = {
        "ruleId": diag.rule,
        "level": _LEVELS[Severity(diag.severity)],
        "message": {"text": message},
    }
    phys = _physical_location(diag.location)
    if phys is not None:
        result["locations"] = [{"physicalLocation": phys}]
    elif diag.location:
        result["message"]["text"] += f" [at {diag.location}]"
    return result


def _rule_entries(rule_sets) -> list[dict]:
    entries: dict[str, dict] = {}
    for rs in rule_sets:
        for rule in rs:
            entries[rule.id] = {
                "id": rule.id,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": _LEVELS[Severity(rule.severity)]},
            }
    return [entries[k] for k in sorted(entries)]


def to_sarif(diagnostics, rule_sets=(),
             tool_name: str = "ma-opt lint",
             tool_version: str = "0.1") -> dict:
    """Build a SARIF 2.1.0 document (as a plain dict) from findings.

    ``rule_sets`` is an iterable of :class:`RuleSet`; pass every catalog
    whose rules may appear so the driver metadata is complete.  Unknown
    rule ids (e.g. ``code.syntax``) are still valid SARIF — results may
    reference rules absent from the driver.
    """
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "version": tool_version,
                "informationUri":
                    "https://example.invalid/ma-opt/static-analysis",
                "rules": _rule_entries(rule_sets),
            }},
            "results": [_result(d) for d in diagnostics],
        }],
    }


def render_sarif(diagnostics, rule_sets=(), **kwargs) -> str:
    """JSON text of :func:`to_sarif`."""
    return json.dumps(to_sarif(diagnostics, rule_sets, **kwargs),
                      indent=2, sort_keys=True)


__all__ = ["SARIF_VERSION", "render_sarif", "to_sarif"]
