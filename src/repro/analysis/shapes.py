"""Symbolic shape/dimension contract checks (rule ids ``shape.*``).

The paper fixes the networks' dimensional contracts: the critic maps the
doubled design space to the metric vector (``(x, Δx) ∈ D^{2d} → m+1``
metrics, Eq. 4), each actor is square (``D^d → D^d``, Eqs. 5–6), and the
elite set holds ``N_es`` designs ranked out of the population (Eq. 2).
A transposed width or an off-by-one metric column trains without error —
numpy broadcasts — and silently degrades every downstream number, the
failure mode DNN-Opt's authors call out for surrogate pipelines.

This pass evaluates those contracts *statically*, by symbolic evaluation
over the construction sites:

* ``shape.critic-io`` — the ``MLP([...])`` built inside ``Critic`` must
  start at ``2*d`` and end at ``n_metrics`` (symbolically, in terms of
  the constructor's parameters);
* ``shape.actor-io`` — the actor's MLP must start and end at ``d``;
* ``shape.critic-metrics`` — every ``Critic(...)``/``CriticEnsemble(...)``
  construction site whose metric-width argument resolves to an
  ``<x>.m``-anchored expression must pass exactly ``m + 1`` (the FoM
  column rides along with the m constraint metrics);
* ``shape.mlp-sizes`` — a literal MLP size list must have at least an
  input and an output width, every constant entry positive;
* ``shape.elite-bound`` — the configured elite-set sizes (dataclass
  default and tuned override) must not exceed the initial population
  they rank (Eq. 2 needs ``N_es ≤ |X^tot|`` at the first ranking);
* ``shape.ns-box`` — the near-sampling defaults must describe a real
  box: ``ns_samples ≥ 1``, ``0 < ns_radius ≤ 0.5`` (the box stays inside
  the unit cube), ``0 ≤ ns_phase < t_ns``.

Symbolic values are linear expressions over dotted names (``2*d``,
``task.m + 1``) folded through straight-line local assignments — enough
to follow ``n_metrics = task.m + 1`` into a constructor call.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

from repro.analysis.codelint import _suppressed, _suppressions
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import dotted_name

SHAPE_RULES = RuleSet()
SHAPE_RULES.add("shape.critic-io", Severity.ERROR,
                "critic MLP does not map (x, dx) in D^{2d} to the m+1 "
                "metric vector (Eq. 4)")
SHAPE_RULES.add("shape.actor-io", Severity.ERROR,
                "actor MLP is not square D^d -> D^d (Eqs. 5-6)")
SHAPE_RULES.add("shape.critic-metrics", Severity.ERROR,
                "critic construction site passes a metric width other "
                "than m + 1")
SHAPE_RULES.add("shape.mlp-sizes", Severity.ERROR,
                "malformed MLP size list (fewer than two widths, or a "
                "nonpositive constant width)")
SHAPE_RULES.add("shape.elite-bound", Severity.ERROR,
                "configured elite-set size exceeds the initial "
                "population it ranks (Eq. 2: N_es <= |X^tot|)")
SHAPE_RULES.add("shape.ns-box", Severity.ERROR,
                "near-sampling defaults do not describe a valid box "
                "(ns_samples >= 1, 0 < ns_radius <= 0.5, "
                "0 <= ns_phase < t_ns)")
SHAPE_RULES.add("shape.contract-missing", Severity.WARNING,
                "a contract site (class / MLP call / config field) could "
                "not be located — the checker is blind there")


# -- symbolic linear expressions ---------------------------------------------

@dataclass(frozen=True)
class Sym:
    """``const + Σ coeff·var`` over dotted variable names."""

    const: float = 0.0
    terms: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, const: float = 0.0, **terms: float) -> "Sym":
        return cls(const=const,
                   terms=tuple(sorted((v, c) for v, c in terms.items()
                                      if c != 0)))

    @classmethod
    def var(cls, name: str, coeff: float = 1.0) -> "Sym":
        return cls(terms=((name, coeff),) if coeff else ())

    def _as_dict(self) -> dict[str, float]:
        return dict(self.terms)

    def __add__(self, other: "Sym") -> "Sym":
        terms = self._as_dict()
        for v, c in other.terms:
            terms[v] = terms.get(v, 0.0) + c
        return Sym(const=self.const + other.const,
                   terms=tuple(sorted((v, c) for v, c in terms.items()
                                      if c != 0)))

    def __neg__(self) -> "Sym":
        return Sym(const=-self.const,
                   terms=tuple((v, -c) for v, c in self.terms))

    def scaled(self, k: float) -> "Sym":
        if k == 0:
            return Sym()
        return Sym(const=self.const * k,
                   terms=tuple((v, c * k) for v, c in self.terms))

    @property
    def is_const(self) -> bool:
        return not self.terms

    def anchored_on(self, suffix: str) -> bool:
        """True when some variable ends with ``suffix`` (e.g. ``.m``)."""
        return any(v == suffix.lstrip(".") or v.endswith(suffix)
                   for v, _ in self.terms)

    def __str__(self) -> str:
        parts = []
        for v, c in self.terms:
            parts.append(v if c == 1 else f"{c:g}*{v}")
        if self.const or not parts:
            parts.append(f"{self.const:g}")
        return " + ".join(parts)


def sym_eval(node: ast.expr | None,
             env: dict[str, Sym] | None = None) -> Sym | None:
    """Evaluate an expression to a :class:`Sym`, or None when nonlinear /
    dynamic.  ``env`` maps local names to already-resolved values."""
    env = env or {}
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)):
            return None
        return Sym(const=float(node.value))
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        if not name:
            return None
        if name in env:
            return env[name]
        return Sym.var(name)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = sym_eval(node.operand, env)
        return -inner if inner is not None else None
    if isinstance(node, ast.BinOp):
        left = sym_eval(node.left, env)
        right = sym_eval(node.right, env)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left + (-right)
        if isinstance(node.op, ast.Mult):
            if left.is_const:
                return right.scaled(left.const)
            if right.is_const:
                return left.scaled(right.const)
    return None


# -- AST helpers --------------------------------------------------------------

def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _calls_named(tree: ast.AST, name: str) -> list[ast.Call]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee.split(".")[-1] == name:
                out.append(node)
    return out


def _straightline_env(fn: ast.FunctionDef) -> dict[str, Sym]:
    """Fold single-target straight-line assignments into a Sym env."""
    env: dict[str, Sym] = {}
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            value = sym_eval(stmt.value, env)
            if value is not None:
                env[stmt.targets[0].id] = value
    return env


def _mlp_size_list(call: ast.Call) -> ast.List | None:
    if call.args and isinstance(call.args[0], ast.List):
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "sizes" and isinstance(kw.value, ast.List):
            return kw.value
    return None


def _arg(call: ast.Call, position: int, keyword: str) -> ast.expr | None:
    """A call argument by position (0-based, self excluded) or keyword."""
    if len(call.args) > position:
        return call.args[position]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


# -- the contract checks ------------------------------------------------------

def check_networks_source(source: str,
                          path: str = "core/networks.py"
                          ) -> list[Diagnostic]:
    """Critic/Actor IO contracts inside the networks module."""
    findings: list[tuple[int, Diagnostic]] = []

    def emit(lineno: int, rule: str, message: str, fix: str = "",
             severity: Severity | None = None) -> None:
        findings.append((lineno, SHAPE_RULES.diag(
            rule, message, location=f"{path}:{lineno}", fix=fix,
            severity=severity)))

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]

    contracts = (
        # class, rule, params (d-index, width-index), in-spec, out-spec
        ("Critic", "shape.critic-io",
         lambda d, w: (Sym.var(d, 2.0), Sym.var(w))),
        ("Actor", "shape.actor-io",
         lambda d, w: (Sym.var(d), Sym.var(d))),
    )
    for cls_name, rule, spec in contracts:
        cls = _find_class(tree, cls_name)
        if cls is None:
            emit(0, "shape.contract-missing",
                 f"class {cls_name!r} not found in {path}")
            continue
        init = _find_method(cls, "__init__")
        mlps = _calls_named(init, "MLP") if init is not None else []
        if init is None or not mlps:
            emit(cls.lineno, "shape.contract-missing",
                 f"{cls_name}.__init__ builds no MLP the checker can see")
            continue
        params = [a.arg for a in init.args.args if a.arg != "self"]
        d_name = params[0] if params else "d"
        w_name = params[1] if len(params) > 1 else d_name
        want_in, want_out = spec(d_name, w_name)
        env = _straightline_env(init)
        for call in mlps:
            sizes = _mlp_size_list(call)
            if sizes is None:
                emit(call.lineno, "shape.contract-missing",
                     f"{cls_name} builds an MLP without a literal size "
                     f"list; the IO contract is unchecked")
                continue
            _check_size_list(sizes, path, emit)
            if not sizes.elts:
                continue
            got_in = sym_eval(sizes.elts[0], env)
            got_out = sym_eval(sizes.elts[-1], env)
            if got_in is not None and got_in != want_in:
                emit(call.lineno, rule,
                     f"{cls_name} MLP input width is {got_in}, the "
                     f"contract requires {want_in}",
                     fix=f"first size must be {want_in}")
            if got_out is not None and got_out != want_out:
                emit(call.lineno, rule,
                     f"{cls_name} MLP output width is {got_out}, the "
                     f"contract requires {want_out}",
                     fix=f"last size must be {want_out}")

    suppressions = _suppressions(source)
    return [d for lineno, d in findings
            if not _suppressed(d, lineno, suppressions)]


def _check_size_list(sizes: ast.List, path: str, emit) -> None:
    if len(sizes.elts) < 2 and not any(
            isinstance(e, ast.Starred) for e in sizes.elts):
        emit(sizes.lineno, "shape.mlp-sizes",
             f"MLP size list has {len(sizes.elts)} entries; an input and "
             f"an output width are required")
    for elt in sizes.elts:
        if isinstance(elt, ast.Constant) and isinstance(
                elt.value, (int, float)) and elt.value <= 0:
            emit(elt.lineno, "shape.mlp-sizes",
                 f"MLP width {elt.value!r} is not positive")


def check_construction_source(source: str, path: str = "<string>"
                              ) -> list[Diagnostic]:
    """``shape.critic-metrics`` + actor-width checks at construction
    sites (anywhere ``Critic``/``CriticEnsemble``/``Actor`` is built)."""
    findings: list[tuple[int, Diagnostic]] = []

    def emit(lineno: int, rule: str, message: str, fix: str = "") -> None:
        findings.append((lineno, SHAPE_RULES.diag(
            rule, message, location=f"{path}:{lineno}", fix=fix)))

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]

    # Skip the defining module: inside class Critic the names are formal
    # parameters, not task-anchored expressions.
    defined_here = {cls.name for cls in tree.body
                    if isinstance(cls, ast.ClassDef)}
    functions = [n for n in ast.walk(tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    for fn in functions:
        env = _straightline_env(fn)
        for call in ast.walk(fn):
            if not isinstance(call, ast.Call):
                continue
            ctor = dotted_name(call.func).split(".")[-1]
            if ctor in ("Critic", "CriticEnsemble") \
                    and ctor not in defined_here:
                width = sym_eval(_arg(call, 1, "n_metrics"), env)
                if width is None or not width.anchored_on(".m"):
                    continue  # provenance unknown: pass-through parameter
                anchor = next(v for v, _ in width.terms
                              if v == "m" or v.endswith(".m"))
                want = Sym.var(anchor) + Sym(const=1.0)
                if width != want:
                    emit(call.lineno, "shape.critic-metrics",
                         f"{ctor} built with metric width {width}; the "
                         f"critic must predict all m constraint metrics "
                         f"plus the FoM column ({want})",
                         fix=f"pass {want}")
            if ctor == "Actor" and ctor not in defined_here:
                d = sym_eval(_arg(call, 0, "d"), env)
                if d is None or not d.anchored_on(".d"):
                    continue
                anchor = next(v for v, _ in d.terms
                              if v == "d" or v.endswith(".d"))
                want = Sym.var(anchor)
                if d != want:
                    emit(call.lineno, "shape.actor-io",
                         f"Actor built over dimension {d}; actors are "
                         f"square maps over the task's design space "
                         f"({want})",
                         fix=f"pass {want}")

    suppressions = _suppressions(source)
    return [d for lineno, d in findings
            if not _suppressed(d, lineno, suppressions)]


# -- config-default contracts -------------------------------------------------

def _dataclass_defaults(tree: ast.Module, cls_name: str
                        ) -> dict[str, float]:
    """Constant-folded field defaults of one (dataclass) class."""
    cls = _find_class(tree, cls_name)
    out: dict[str, float] = {}
    if cls is None:
        return out
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name) and node.value is not None:
            value = sym_eval(node.value, {})
            if value is not None and value.is_const:
                out[node.target.id] = value.const
    return out


def _dict_literal_entries(tree: ast.Module, name: str) -> dict[str, float]:
    """Constant numeric entries of a module-level ``NAME = {...}``."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name \
                and isinstance(node.value, ast.Dict):
            out: dict[str, float] = {}
            for k, v in zip(node.value.keys, node.value.values):
                if isinstance(k, ast.Constant) and isinstance(
                        k.value, str):
                    value = sym_eval(v, {})
                    if value is not None and value.is_const:
                        out[k.value] = value.const
            return out
    return {}


def check_config_sources(config_source: str,
                         experiments_source: str | None = None,
                         config_path: str = "core/config.py",
                         experiments_path: str = "experiments/config.py"
                         ) -> list[Diagnostic]:
    """``shape.elite-bound`` / ``shape.ns-box`` over config defaults."""
    findings: list[Diagnostic] = []

    def emit(path: str, rule: str, message: str, fix: str = "",
             severity: Severity | None = None) -> None:
        findings.append(SHAPE_RULES.diag(
            rule, message, location=path, fix=fix, severity=severity))

    try:
        tree = ast.parse(config_source)
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{config_path}:{exc.lineno or 0}")]
    defaults = _dataclass_defaults(tree, "MAOptConfig")
    if not defaults:
        emit(config_path, "shape.contract-missing",
             "MAOptConfig defaults not found; config contracts unchecked")
        return findings

    # -- near-sampling box ----------------------------------------------------
    ns_samples = defaults.get("ns_samples")
    ns_radius = defaults.get("ns_radius")
    ns_phase = defaults.get("ns_phase")
    t_ns = defaults.get("t_ns")
    if ns_samples is not None and ns_samples < 1:
        emit(config_path, "shape.ns-box",
             f"ns_samples default {ns_samples:g} < 1: the near-sampling "
             f"set X^NS is empty")
    if ns_radius is not None and not 0 < ns_radius <= 0.5:
        emit(config_path, "shape.ns-box",
             f"ns_radius default {ns_radius:g} is outside (0, 0.5]: the "
             f"per-dimension box leaves the normalized unit cube")
    if ns_phase is not None and t_ns is not None \
            and not 0 <= ns_phase < t_ns:
        emit(config_path, "shape.ns-box",
             f"ns_phase default {ns_phase:g} is outside [0, t_ns={t_ns:g})"
             f": Alg. 2 never fires")

    # -- elite bound ----------------------------------------------------------
    n_elite = defaults.get("n_elite")
    populations: list[tuple[str, float, str]] = []
    if n_elite is not None:
        populations.append(("MAOptConfig.n_elite", n_elite, config_path))
    if experiments_source is not None:
        try:
            exp_tree = ast.parse(experiments_source)
        except SyntaxError as exc:
            return findings + [Diagnostic(
                rule="code.syntax", severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{experiments_path}:{exc.lineno or 0}")]
        tuned = _dict_literal_entries(exp_tree, "TUNED_MAOPT")
        if "n_elite" in tuned:
            populations.append(("TUNED_MAOPT['n_elite']", tuned["n_elite"],
                                experiments_path))
        bench = _dataclass_defaults(exp_tree, "BenchConfig")
        n_init = bench.get("n_init")
        if n_init is not None:
            for label, value, path in populations:
                if value > n_init:
                    emit(path, "shape.elite-bound",
                         f"{label} = {value:g} exceeds the default "
                         f"initial population BenchConfig.n_init = "
                         f"{n_init:g}; Eq. 2 ranks the elite set out of "
                         f"X^tot, which starts at n_init designs",
                         fix="shrink the elite set or raise n_init")
    return findings


# -- orchestration ------------------------------------------------------------

#: Files the full-repo check reads, relative to the ``repro`` source root.
CONTRACT_FILES = {
    "networks": "core/networks.py",
    "config": "core/config.py",
    "experiments": "experiments/config.py",
}
#: Construction-site sweep: modules that build critics/actors.
CONSTRUCTION_GLOBS = ("core/*.py", "bench/*.py", "baselines/*.py")


def check_shapes(src_root: str | pathlib.Path | None = None
                 ) -> list[Diagnostic]:
    """Run every ``shape.*`` contract over a ``repro`` source tree.

    ``src_root`` is the directory containing ``core/networks.py`` (the
    installed package directory by default).  Trees missing a contract
    file get a ``shape.contract-missing`` warning rather than a crash,
    so the checker degrades loudly on refactors.
    """
    if src_root is None:
        import repro

        src_root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(src_root)
    diags: list[Diagnostic] = []

    def read(rel: str) -> str | None:
        p = root / rel
        return p.read_text(encoding="utf-8") if p.exists() else None

    networks = read(CONTRACT_FILES["networks"])
    if networks is None:
        diags.append(SHAPE_RULES.diag(
            "shape.contract-missing",
            f"{CONTRACT_FILES['networks']} not found under {root}",
            location=str(root)))
    else:
        diags.extend(check_networks_source(
            networks, path=str(root / CONTRACT_FILES["networks"])))

    config = read(CONTRACT_FILES["config"])
    experiments = read(CONTRACT_FILES["experiments"])
    if config is None:
        diags.append(SHAPE_RULES.diag(
            "shape.contract-missing",
            f"{CONTRACT_FILES['config']} not found under {root}",
            location=str(root)))
    else:
        diags.extend(check_config_sources(
            config, experiments,
            config_path=str(root / CONTRACT_FILES["config"]),
            experiments_path=str(root / CONTRACT_FILES["experiments"])))

    for pattern in CONSTRUCTION_GLOBS:
        for f in sorted(root.glob(pattern)):
            diags.extend(check_construction_source(
                f.read_text(encoding="utf-8"), path=str(f)))
    return diags


__all__ = [
    "CONTRACT_FILES",
    "SHAPE_RULES",
    "Sym",
    "check_config_sources",
    "check_construction_source",
    "check_networks_source",
    "check_shapes",
    "sym_eval",
]
