"""Whole-unit taint tracking for the service trust boundary
(rule ids ``flow.taint.*``).

PR 8 put a socket in front of the optimizer: client-supplied job specs
now flow from :func:`repro.serve.protocol.decode` into schedulers,
checkpoint paths and budget arithmetic.  This pass polices that boundary
mechanically:

* **sources** — values returned by ``decode`` / ``validate_request`` /
  network reads, and ``spec`` parameters inside the job-spec modules
  (``serve/jobs.py``, ``serve/protocol.py``; any module can opt in with
  a ``# repro: taint-module`` comment);
* **propagation** — assignments, attribute/subscript access on tainted
  bases, f-strings/concatenation, container literals, and calls: method
  results on tainted receivers stay tainted, and taint crosses file
  boundaries through the best-effort
  :class:`~repro.analysis.flow.CallGraph` via per-function summaries
  (tainted parameters in, tainted returns out) iterated to a fixpoint;
* **sanitizers** — a value returned by (or passed through a
  statement-level call to) ``validate_job`` / ``canonical_*`` /
  ``sanitize_*`` / ``escape_*`` / ``safe_*`` / ``validate_*`` is clean,
  and a ``# repro: sanitized[rule-id]`` comment vouches for one line;
* **sinks** — filesystem path construction (``flow.taint.path``),
  ``exec``/``eval``/``subprocess`` (``flow.taint.exec``),
  ``float()``/``int()`` budget coercion that bypasses the ``job.*``
  RuleSet (``flow.taint.budget``), format-string injection into raw
  frame writes (``flow.taint.format`` — going through
  ``protocol.encode`` is the sanctioned, escaping path), and unbounded
  reads from a network stream (``flow.taint.frame-size`` — the frame
  cap must ride on every ``readline``/``read``).

Like every flow pass in this repo the analysis is a heuristic linter,
not a verifier: it favours zero false positives (unresolvable receivers
and ambiguous callees stay silent) over completeness.  Suppression uses
the shared ``# repro: ignore[rule-id]`` convention.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field

from repro.analysis.codelint import _suppressed, _suppressions
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.flow import (
    CallGraph,
    ModuleModel,
    Scope,
    build_module,
    dotted_name,
    iter_python_files,
)

TAINT_RULES = RuleSet()
TAINT_RULES.add("flow.taint.path", Severity.ERROR,
                "untrusted value reaches filesystem path construction "
                "without a canonicalizer")
TAINT_RULES.add("flow.taint.exec", Severity.ERROR,
                "untrusted value reaches exec/eval/subprocess")
TAINT_RULES.add("flow.taint.budget", Severity.ERROR,
                "untrusted value coerced with float()/int() bypassing "
                "the job.* validation rules")
TAINT_RULES.add("flow.taint.format", Severity.ERROR,
                "untrusted value interpolated into a raw wire frame "
                "(bypasses protocol.encode's JSON escaping)")
TAINT_RULES.add("flow.taint.frame-size", Severity.ERROR,
                "unbounded read from a network stream (no frame-size "
                "cap argument)")

#: Calls whose result is untrusted wherever they appear.  ``decode`` is
#: special-cased in :func:`_is_source_call`: ``protocol.decode(...)``
#: counts everywhere, a bare ``.decode()`` method only inside the
#: trust-boundary modules (bytes read from the repo's own files are not
#: client input).
SOURCE_CALLS = frozenset({"decode", "validate_request", "recv",
                          "recv_into"})


def _is_source_call(call: ast.Call, in_source_module: bool) -> bool:
    last = _call_last(call)
    if last in ("validate_request", "recv", "recv_into"):
        return True
    if last == "decode":
        callee = dotted_name(call.func)
        if callee == "decode" or callee.endswith("protocol.decode"):
            return True
        return in_source_module and bool(callee)
    return False

#: Parameter names treated as untrusted inside the job-spec modules.
SOURCE_PARAM_NAMES = frozenset({"spec"})

#: ``serve/`` modules whose spec-shaped parameters are sources.
_SOURCE_FILES = frozenset({"jobs.py", "protocol.py"})

#: Names whose call result (or statement-level application) cleanses.
_SANITIZER_EXACT = frozenset({"validate_job", "quote"})
_SANITIZER_PREFIXES = ("canonical", "sanitize", "escape", "safe_",
                      "validate_")

#: Stream constructors: a name bound to one of these is a network stream
#: for the frame-size rule.
_STREAM_CTORS = frozenset({"makefile", "create_connection"})

_TAINT_MODULE_RE = re.compile(r"#\s*repro:\s*taint-module\b")
_SANITIZED_RE = re.compile(r"#\s*repro:\s*sanitized(?:\[([^\]]*)\])?")

_EXEC_BARE = frozenset({"eval", "exec", "compile"})
_PATH_CTORS = frozenset({"Path", "PurePath", "PurePosixPath",
                         "PureWindowsPath"})
_PATHY_HINTS = ("dir", "path", "root", "folder", "dest")


def _sanitized_lines(source: str) -> dict[int, tuple[str, ...]]:
    """Line -> rule prefixes vouched for by ``# repro: sanitized[...]``."""
    out: dict[int, tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SANITIZED_RE.search(line)
        if not m:
            continue
        rules = m.group(1)
        out[lineno] = tuple(
            r.strip() for r in rules.split(",") if r.strip()
        ) if rules else ()
    return out


def is_source_module(mod: ModuleModel) -> bool:
    """Whether spec-shaped parameters in ``mod`` are taint sources."""
    parts = pathlib.PurePath(mod.path).parts
    if "serve" in parts and parts[-1] in _SOURCE_FILES:
        return True
    return bool(_TAINT_MODULE_RE.search(mod.source))


def _is_sanitizer(last: str) -> bool:
    if last in SOURCE_CALLS:
        return False
    return last in _SANITIZER_EXACT or last.startswith(_SANITIZER_PREFIXES)


def _call_last(call: ast.Call) -> str:
    """Last segment of the callee (works for subscripted receivers)."""
    callee = dotted_name(call.func)
    if callee:
        return callee.split(".")[-1]
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _pathlike(expr: ast.expr) -> bool:
    """Whether ``expr`` is visibly a filesystem path (the LHS test for
    the ``/``-join sink; keeps tainted numeric division out)."""
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        return _pathlike(expr.left)
    if isinstance(expr, ast.Call):
        return _call_last(expr) in _PATH_CTORS | {"joinpath"}
    name = dotted_name(expr)
    if name:
        last = name.split(".")[-1].lower()
        return any(hint in last for hint in _PATHY_HINTS)
    return False


@dataclass
class _Summary:
    """Interprocedural taint facts for one function, grown monotonically
    across fixpoint rounds."""

    caller_tainted: set[str] = field(default_factory=set)
    return_labels: set[str] = field(default_factory=set)


class _TaintPass:
    """One whole-unit analysis: fixpoint over summaries, then emission."""

    def __init__(self, modules: list[ModuleModel]) -> None:
        self.modules = modules
        self.graph = CallGraph(modules)
        self.summaries: dict[int, _Summary] = {}
        self.findings: list[tuple[ModuleModel, int, Diagnostic]] = []
        self.changed = False
        self._emitted: set[tuple[str, str]] = set()
        self._source_mod = {id(m): is_source_module(m) for m in modules}
        self._class_streams = {id(m): _class_stream_attrs(m)
                               for m in modules}

    def summary(self, scope: Scope) -> _Summary:
        return self.summaries.setdefault(id(scope), _Summary())

    def run(self) -> list[tuple[ModuleModel, int, Diagnostic]]:
        for _ in range(20):
            self.changed = False
            self._sweep(emit=False)
            if not self.changed:
                break
        self._sweep(emit=True)
        return self.findings

    def _sweep(self, emit: bool) -> None:
        for mod in self.modules:
            for scope in mod.scopes:
                if scope.is_class:
                    continue
                _FunctionTaint(self, mod, scope, emit=emit).run()

    def emit(self, mod: ModuleModel, lineno: int, rule: str,
             message: str, fix: str = "") -> None:
        key = (rule, f"{mod.path}:{lineno}")
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.findings.append((mod, lineno, TAINT_RULES.diag(
            rule, message, location=f"{mod.path}:{lineno}", fix=fix)))


def _class_stream_attrs(mod: ModuleModel) -> frozenset[str]:
    """``self.<attr>`` names any method of the module binds to a stream
    constructor (so cross-method reads keep their frame-size check)."""
    out: set[str] = set()
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        if _call_last(node.value) not in _STREAM_CTORS:
            continue
        for target in node.targets:
            name = dotted_name(target)
            if name.startswith("self."):
                out.add(name)
    return frozenset(out)


class _FunctionTaint:
    """Source-order walk of one scope with a label-per-name taint map.

    Labels are the entry parameters a value derives from, plus ``"*"``
    for values produced by a source call; summaries map labels back to
    actual arguments at call sites, which is what keeps the pass
    context-sensitive (a trusted caller of ``build_config`` does not
    inherit the spec-module taint).
    """

    def __init__(self, owner: _TaintPass, mod: ModuleModel, scope: Scope,
                 emit: bool) -> None:
        self.owner = owner
        self.mod = mod
        self.scope = scope
        self.emitting = emit
        self.taint: dict[str, frozenset[str]] = {}
        self.formatted: set[str] = set()
        self.streams: set[str] = set(owner._class_streams[id(mod)])
        if not scope.is_module:
            entry = set(self.owner.summary(scope).caller_tainted)
            if self.owner._source_mod[id(mod)]:
                entry.update(p for p in scope.params
                             if p in SOURCE_PARAM_NAMES)
            for p in entry:
                self.taint[p] = frozenset({p})

    # -- driving -------------------------------------------------------------
    def run(self) -> None:
        node = self.scope.node
        if isinstance(node, ast.Lambda):
            self.scan_expr(node.body)
            self._note_return(node.body)
            return
        body = getattr(node, "body", None)
        if isinstance(body, list):
            self.exec_block(body)

    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, s: ast.stmt) -> None:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef)):
            return  # separate scopes, analyzed on their own
        if isinstance(s, ast.Assign):
            self.scan_expr(s.value)
            labels = self.labels(s.value)
            formatted = self._formatted(s.value)
            stream = self._is_stream_expr(s.value)
            for target in s.targets:
                self._bind(target, labels, formatted, stream, s.value)
            self._statement_sanitize(s.value)
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self.scan_expr(s.value)
                self._bind(s.target, self.labels(s.value),
                           self._formatted(s.value),
                           self._is_stream_expr(s.value), s.value)
                self._statement_sanitize(s.value)
        elif isinstance(s, ast.AugAssign):
            self.scan_expr(s.value)
            if isinstance(s.target, ast.Name):
                extra = self.labels(s.value)
                if extra:
                    old = self.taint.get(s.target.id, frozenset())
                    self.taint[s.target.id] = old | extra
                if self._formatted(s.value):
                    self.formatted.add(s.target.id)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self.scan_expr(s.value)
                self._note_return(s.value)
        elif isinstance(s, ast.Expr):
            self.scan_expr(s.value)
            self._statement_sanitize(s.value)
        elif isinstance(s, (ast.If, ast.While)):
            self.scan_expr(s.test)
            self.exec_block(s.body)
            self.exec_block(s.orelse)
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            self.scan_expr(s.iter)
            self._bind(s.target, self.labels(s.iter), False, False, None)
            self.exec_block(s.body)
            self.exec_block(s.orelse)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            for item in s.items:
                self.scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.labels(item.context_expr), False,
                               self._is_stream_expr(item.context_expr),
                               item.context_expr)
            self.exec_block(s.body)
        elif isinstance(s, ast.Try) or (hasattr(ast, "TryStar")
                                        and isinstance(s, ast.TryStar)):
            self.exec_block(s.body)
            for handler in s.handlers:
                self.exec_block(handler.body)
            self.exec_block(s.orelse)
            self.exec_block(s.finalbody)
        elif isinstance(s, ast.Delete):
            for target in s.targets:
                if isinstance(target, ast.Name):
                    self.taint.pop(target.id, None)
                    self.formatted.discard(target.id)
        elif hasattr(ast, "Match") and isinstance(s, ast.Match):
            self.scan_expr(s.subject)
            for case in s.cases:
                self.exec_block(case.body)
        else:
            for child in ast.iter_child_nodes(s):
                if isinstance(child, ast.expr):
                    self.scan_expr(child)

    # -- binding / summaries -------------------------------------------------
    def _bind(self, target: ast.expr, labels: frozenset[str],
              formatted: bool, stream: bool,
              value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            if labels:
                self.taint[target.id] = labels
            else:
                self.taint.pop(target.id, None)
            if formatted:
                self.formatted.add(target.id)
            else:
                self.formatted.discard(target.id)
            if stream:
                self.streams.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # conn, addr = sock.accept(): the first element is the stream
            for i, elt in enumerate(target.elts):
                elt_stream = (stream or (
                    i == 0 and isinstance(value, ast.Call)
                    and _call_last(value) == "accept"))
                self._bind(elt, labels, False, elt_stream, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels, False, False, None)
        elif isinstance(target, ast.Attribute) and stream:
            name = dotted_name(target)
            if name:
                self.streams.add(name)

    def _note_return(self, value: ast.expr) -> None:
        labels = self.labels(value)
        if not labels or self.scope.is_module:
            return
        summ = self.owner.summary(self.scope)
        if not labels <= summ.return_labels:
            summ.return_labels |= labels
            self.owner.changed = True

    def _statement_sanitize(self, value: ast.expr) -> None:
        """``validate_job(spec)`` at statement level vouches for its
        arguments from then on (branchless heuristic — the repo idiom
        rejects on errors right after)."""
        if not isinstance(value, ast.Call):
            return
        if not _is_sanitizer(_call_last(value)):
            return
        for arg in value.args:
            if isinstance(arg, ast.Name):
                self.taint.pop(arg.id, None)

    def _is_stream_expr(self, value: ast.expr | None) -> bool:
        if not isinstance(value, ast.Call):
            return False
        return _call_last(value) in _STREAM_CTORS

    # -- taint labels --------------------------------------------------------
    def labels(self, e: ast.expr | None) -> frozenset[str]:
        if e is None:
            return frozenset()
        if isinstance(e, ast.Name):
            return self.taint.get(e.id, frozenset())
        if isinstance(e, (ast.Attribute, ast.Subscript)):
            return self.labels(e.value)
        if isinstance(e, ast.Call):
            return self._call_labels(e)
        if isinstance(e, ast.JoinedStr):
            out: set[str] = set()
            for part in e.values:
                if isinstance(part, ast.FormattedValue):
                    out |= self.labels(part.value)
            return frozenset(out)
        if isinstance(e, ast.FormattedValue):
            return self.labels(e.value)
        if isinstance(e, ast.BinOp):
            return self.labels(e.left) | self.labels(e.right)
        if isinstance(e, ast.BoolOp):
            out = set()
            for v in e.values:
                out |= self.labels(v)
            return frozenset(out)
        if isinstance(e, ast.IfExp):
            return self.labels(e.body) | self.labels(e.orelse)
        if isinstance(e, (ast.UnaryOp,)):
            return self.labels(e.operand)
        if isinstance(e, ast.Await):
            return self.labels(e.value)
        if isinstance(e, ast.Starred):
            return self.labels(e.value)
        if isinstance(e, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in e.elts:
                out |= self.labels(elt)
            return frozenset(out)
        if isinstance(e, ast.Dict):
            out = set()
            for k in e.keys:
                if k is not None:
                    out |= self.labels(k)
            for v in e.values:
                out |= self.labels(v)
            return frozenset(out)
        if isinstance(e, ast.NamedExpr):
            labels = self.labels(e.value)
            self._bind(e.target, labels, self._formatted(e.value),
                       False, e.value)
            return labels
        if isinstance(e, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                          ast.DictComp)):
            out = set()
            for gen in e.generators:
                out |= self.labels(gen.iter)
            return frozenset(out)
        return frozenset()  # Constant, Compare, Lambda, ...

    def _call_labels(self, call: ast.Call) -> frozenset[str]:
        last = _call_last(call)
        if _is_source_call(call, self.owner._source_mod[id(self.mod)]):
            return frozenset({"*"})
        if isinstance(call.func, ast.Attribute):
            receiver = dotted_name(call.func.value)
            if (receiver in self.streams
                    and last in ("read", "readline", "readlines")):
                return frozenset({"*"})
        if _is_sanitizer(last):
            return frozenset()
        out: set[str] = set()
        if isinstance(call.func, ast.Attribute):
            out |= self.labels(call.func.value)  # method on tainted base
        callee = dotted_name(call.func)
        target = (self.owner.graph.resolve_callee(self.scope, callee)
                  if callee else None)
        if target is not None:
            out |= self._return_labels(call, target)
        else:
            for arg in call.args:
                out |= self.labels(arg)
            for kw in call.keywords:
                out |= self.labels(kw.value)
        return frozenset(out)

    @staticmethod
    def _param_map(call: ast.Call, target: Scope
                   ) -> list[tuple[str, ast.expr]]:
        """(param name, actual argument) pairs for a resolved call."""
        params = target.params
        offset = 1 if params and params[0] in ("self", "cls") else 0
        out: list[tuple[str, ast.expr]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            idx = i + offset
            if idx < len(params):
                out.append((params[idx], arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                out.append((kw.arg, kw.value))
        return out

    def _return_labels(self, call: ast.Call, target: Scope
                       ) -> frozenset[str]:
        summ = self.owner.summary(target)
        out: set[str] = set()
        if "*" in summ.return_labels:
            out.add("*")
        wanted = summ.return_labels - {"*"}
        if wanted:
            for param, actual in self._param_map(call, target):
                if param in wanted:
                    out |= self.labels(actual)
        return frozenset(out)

    def _propagate(self, call: ast.Call) -> None:
        callee = dotted_name(call.func)
        if not callee:
            return
        last = callee.split(".")[-1]
        if last in SOURCE_CALLS or _is_sanitizer(last):
            return
        target = self.owner.graph.resolve_callee(self.scope, callee)
        if target is None:
            return
        summ = self.owner.summary(target)
        for param, actual in self._param_map(call, target):
            if self.labels(actual) and param not in summ.caller_tainted:
                summ.caller_tainted.add(param)
                self.owner.changed = True

    # -- sinks ---------------------------------------------------------------
    def scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._propagate(node)
                if self.emitting:
                    self._check_call_sinks(node)
            elif (self.emitting and isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Div)):
                labels = self.labels(node.right)
                if labels and _pathlike(node.left):
                    self._sink(node, "flow.taint.path",
                               f"{self._origin(labels)} joined into a "
                               f"filesystem path with '/'",
                               fix="canonicalize the component (or "
                                   "validate_job the spec) first")

    def _check_call_sinks(self, call: ast.Call) -> None:
        callee = dotted_name(call.func)
        last = _call_last(call)
        parts = callee.split(".") if callee else []
        arg_labels = frozenset().union(
            *(self.labels(a) for a in call.args),
            *(self.labels(kw.value) for kw in call.keywords),
        ) if (call.args or call.keywords) else frozenset()

        # exec / subprocess ---------------------------------------------------
        is_exec = (
            (isinstance(call.func, ast.Name)
             and call.func.id in _EXEC_BARE)
            or callee in ("os.system", "os.popen")
            or (parts[:1] == ["subprocess"])
            or (parts[:1] == ["os"]
                and last.startswith(("exec", "spawn")))
        )
        if is_exec and arg_labels:
            self._sink(call, "flow.taint.exec",
                       f"{self._origin(arg_labels)} reaches "
                       f"{callee or last}()",
                       fix="never execute client-derived values; map "
                           "them through a fixed table")
            return

        # budget coercion -----------------------------------------------------
        if (isinstance(call.func, ast.Name)
                and call.func.id in ("float", "int") and call.args):
            labels = self.labels(call.args[0])
            if labels:
                self._sink(call, "flow.taint.budget",
                           f"{self._origin(labels)} coerced with "
                           f"{call.func.id}() before validation",
                           fix="run validate_job (the job.* rules) "
                               "before using budget fields")

        # path construction ---------------------------------------------------
        path_hit = frozenset()
        if last in _PATH_CTORS or last == "joinpath" \
                or callee.endswith("path.join") \
                or last in ("makedirs", "rmtree"):
            path_hit = arg_labels
        elif callee in ("open", "io.open", "os.open") and call.args:
            path_hit = self.labels(call.args[0])
        elif callee in ("os.remove", "os.unlink", "os.rename",
                        "os.replace", "os.rmdir") and call.args:
            path_hit = self.labels(call.args[0])
        if path_hit:
            self._sink(call, "flow.taint.path",
                       f"{self._origin(path_hit)} used to construct a "
                       f"filesystem path via {callee or last}()",
                       fix="canonicalize the component (or validate_job "
                           "the spec) first")

        # raw frame writes ----------------------------------------------------
        if (isinstance(call.func, ast.Attribute)
                and last in ("write", "sendall", "send") and call.args
                and self._formatted(call.args[0])):
            self._sink(call, "flow.taint.format",
                       "untrusted value formatted into a raw frame "
                       "write (string interpolation instead of "
                       "protocol.encode)",
                       fix="build a dict and send protocol.encode(doc) "
                           "so JSON escaping applies")

        # unbounded stream reads ----------------------------------------------
        if (isinstance(call.func, ast.Attribute)
                and last in ("read", "readline", "readlines")
                and not call.args and not call.keywords):
            receiver = dotted_name(call.func.value)
            if receiver and receiver in self.streams:
                self._sink(call, "flow.taint.frame-size",
                           f"unbounded {last}() on network stream "
                           f"{receiver!r} — a peer can exhaust memory",
                           fix="pass a size cap (MAX_FRAME_BYTES + 1) "
                               "and reject oversized frames")

    def _formatted(self, e: ast.expr) -> bool:
        if isinstance(e, ast.JoinedStr):
            return bool(self.labels(e))
        if isinstance(e, ast.BinOp) and isinstance(e.op, (ast.Add,
                                                          ast.Mod)):
            if not self.labels(e):
                return False
            return any(self._stringy(side) for side in (e.left, e.right))
        if isinstance(e, ast.Call) and isinstance(e.func, ast.Attribute):
            if e.func.attr == "encode":
                return self._formatted(e.func.value)
            if e.func.attr == "format":
                return bool(self.labels(e))
        if isinstance(e, ast.Name):
            return e.id in self.formatted
        return False

    def _stringy(self, e: ast.expr) -> bool:
        if isinstance(e, ast.Constant):
            return isinstance(e.value, (str, bytes))
        if isinstance(e, ast.JoinedStr):
            return True
        if isinstance(e, ast.Name):
            return e.id in self.formatted
        if isinstance(e, ast.BinOp):
            return self._stringy(e.left) or self._stringy(e.right)
        return False

    @staticmethod
    def _origin(labels: frozenset[str]) -> str:
        named = sorted(labels - {"*"})
        if named:
            return ("untrusted value (from parameter "
                    + "/".join(repr(n) for n in named) + ")")
        return "untrusted network input"

    def _sink(self, node: ast.AST, rule: str, message: str,
              fix: str = "") -> None:
        self.owner.emit(self.mod, getattr(node, "lineno", 0), rule,
                        message, fix=fix)


def check_modules(modules: list[ModuleModel]) -> list[Diagnostic]:
    """Run every ``flow.taint.*`` rule over a set of parsed modules as
    one unit (taint crosses file boundaries through the call graph)."""
    findings = _TaintPass(modules).run()
    out: list[Diagnostic] = []
    for mod, lineno, diag in findings:
        suppressions = _suppressions(mod.source)
        sanitized = _sanitized_lines(mod.source)
        if _suppressed(diag, lineno, suppressions):
            continue
        if _suppressed(diag, lineno, sanitized):
            continue
        out.append(diag)
    return out


def check_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Run the taint pass over one module's source text."""
    try:
        modules = [build_module(source, path=path)]
    except SyntaxError as exc:
        return [Diagnostic(rule="code.syntax", severity=Severity.ERROR,
                           message=f"syntax error: {exc.msg}",
                           location=f"{path}:{exc.lineno or 0}")]
    return check_modules(modules)


def check_paths(paths) -> list[Diagnostic]:
    """Run the taint pass over files/directories as one unit."""
    modules: list[ModuleModel] = []
    diags: list[Diagnostic] = []
    for f in iter_python_files(paths):
        try:
            modules.append(build_module(
                f.read_text(encoding="utf-8"), path=str(f)))
        except SyntaxError as exc:
            diags.append(Diagnostic(
                rule="code.syntax", severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{f}:{exc.lineno or 0}"))
    diags.extend(check_modules(modules))
    return diags


__all__ = [
    "SOURCE_CALLS",
    "SOURCE_PARAM_NAMES",
    "TAINT_RULES",
    "check_modules",
    "check_paths",
    "check_source",
    "is_source_module",
]
