"""Baseline optimizers the paper compares against (plus extras).

* :mod:`repro.baselines.bayesopt` — Gaussian-process Bayesian optimization
  (the paper's BO [21] column).
* :mod:`repro.baselines.random_search` — uniform random sampling (sanity
  floor).
* :mod:`repro.baselines.pso` / :mod:`repro.baselines.de` — the population
  metaheuristics the paper's related-work section cites (PSO [7], DE [8]).

All baselines share the same entry-point signature as the MA-Opt wrapper in
:mod:`repro.experiments.runner`: they consume a task, a simulation budget
and the shared initial set, and return an
:class:`~repro.core.result.OptimizationResult`.
"""

from repro.baselines.bayesopt import BayesOpt
from repro.baselines.de import DifferentialEvolution
from repro.baselines.gp import GaussianProcess
from repro.baselines.ppo import PPOSizer
from repro.baselines.pso import ParticleSwarm
from repro.baselines.random_search import RandomSearch

__all__ = [
    "GaussianProcess",
    "BayesOpt",
    "RandomSearch",
    "ParticleSwarm",
    "DifferentialEvolution",
    "PPOSizer",
]
