"""Shared scaffolding for baseline optimizers."""

from __future__ import annotations

import pathlib
import time
from typing import Any, Iterable

import numpy as np

from repro.core.fom import FigureOfMerit
from repro.core.problem import SizingTask
from repro.core.result import EvaluationRecord, OptimizationResult
from repro.obs import NULL_TELEMETRY, RunLogger, Telemetry


class BaselineOptimizer:
    """Budgeted black-box minimizer of the task FoM.

    Subclasses implement :meth:`_propose` (next design(s) to simulate) and
    may override :meth:`_observe` to update internal state.  The driver
    enforces the shared-initial-set protocol and produces the same
    :class:`OptimizationResult` as the MA-Opt family.

    Like :class:`~repro.core.ma_opt.MAOptimizer`, baselines accept a
    :class:`~repro.obs.Telemetry` bundle and observer callbacks; each
    simulation is treated as a round of size one for observer purposes.

    Checkpoint/resume: :meth:`save_checkpoint` snapshots the driver state
    (histories, records, RNG, wall-clock offset) and :meth:`restore`
    rebuilds it, after which :meth:`run` continues toward its budget from
    the records it already holds.  Subclasses with extra mutable state
    (swarm positions, surrogate datasets, ...) participate by overriding
    :meth:`_extra_state` / :meth:`_load_extra_state`; the default resume
    is bit-exact for any subclass whose only state is the histories plus
    ``self.rng`` (e.g. random search).
    """

    method_name = "baseline"

    def __init__(self, task: SizingTask, seed: int | None = None,
                 telemetry: Telemetry | None = None,
                 observers: Iterable[Any] = ()) -> None:
        self.task = task
        self.rng = np.random.default_rng(seed)
        self.fom = FigureOfMerit(task)
        self.obs = telemetry or NULL_TELEMETRY
        self._observers = self.obs.observers.extended(observers)
        self.run_log = (self.obs.run_logger
                        if self.obs.run_logger is not None else RunLogger())
        self.x_hist: list[np.ndarray] = []
        self.y_hist: list[float] = []
        self._records: list[EvaluationRecord] = []
        self._init_best_fom = np.inf
        self._initialized = False
        self._t_offset = 0.0  # post-init seconds already spent (resume)

    # -- subclass interface ----------------------------------------------------
    def _propose(self) -> np.ndarray:
        """Return the next design (shape (d,)) to simulate."""
        raise NotImplementedError

    def _observe(self, x: np.ndarray, fom_value: float,
                 metrics: np.ndarray) -> None:
        """Hook called after each simulation (default: record history)."""
        del metrics

    def _extra_state(self) -> dict[str, np.ndarray]:
        """Subclass state to checkpoint beyond the shared driver state."""
        return {}

    def _load_extra_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Restore what :meth:`_extra_state` captured."""

    # -- initialization ---------------------------------------------------------
    def _initialize(self, n_init: int, x_init: np.ndarray | None,
                    f_init: np.ndarray | None) -> None:
        if x_init is None:
            x_init = self.task.space.sample(self.rng, n_init)
        x_init = np.atleast_2d(np.asarray(x_init, dtype=float))
        if f_init is None:
            with self.obs.span("simulate", n=len(x_init), kind="init"):
                f_init = self.task.evaluate_batch(x_init)
            self.obs.inc("sims_total", len(x_init), kind="init")
        f_init = np.atleast_2d(np.asarray(f_init, dtype=float))
        init_foms = self.fom(f_init)
        for x, g in zip(x_init, init_foms):
            self.x_hist.append(np.asarray(x, dtype=float))
            self.y_hist.append(float(g))
            self.run_log.emit("evaluation", kind="init", fom=float(g))
        self._init_best_fom = float(np.min(init_foms))
        self._initialized = True

    # -- driver -------------------------------------------------------------------
    def run(self, n_sims: int, n_init: int = 100,
            x_init: np.ndarray | None = None,
            f_init: np.ndarray | None = None) -> OptimizationResult:
        start = time.perf_counter()
        run_id = self.obs.run_id
        if run_id is None:
            from repro.obs.store import new_run_id
            run_id = new_run_id()
            if self.obs is not NULL_TELEMETRY:  # the shared default is
                self.obs.run_id = run_id        # immutable by contract
        self.run_log.emit("run_start", method=self.method_name,
                          task=self.task.name, n_sims=n_sims, run_id=run_id)
        with self.obs.span("run", method=self.method_name,
                           task=self.task.name, run_id=run_id):
            if not self._initialized:
                self._initialize(n_init, x_init, f_init)
            # t_wall convention (shared with MAOptimizer): the clock starts
            # when the first post-init round begins, before proposal work;
            # a restored optimizer resumes the clock where it left off.
            t0 = time.perf_counter() - self._t_offset
            while len(self._records) < n_sims:
                i = len(self._records)
                self._observers.emit("on_round_start", self, i + 1,
                                     self.method_name)
                with self.obs.span("propose"):
                    x = np.clip(self._propose(), 0.0, 1.0)
                t_sim = time.perf_counter()
                with self.obs.span("simulate", n=1, kind=self.method_name):
                    metrics = self.task.evaluate(x)
                self.obs.inc("sims_total", kind=self.method_name)
                self.obs.observe("sim_latency_s",
                                 time.perf_counter() - t_sim,
                                 kind=self.method_name)
                g = float(self.fom(metrics))
                self.x_hist.append(x.copy())
                self.y_hist.append(g)
                self._observe(x, g, metrics)
                rec = EvaluationRecord(
                    index=i, x=x.copy(), metrics=metrics, fom=g,
                    kind=self.method_name, owner=None,
                    feasible=self.task.is_feasible(metrics),
                    t_wall=time.perf_counter() - t0,
                )
                self._records.append(rec)
                self.run_log.emit("evaluation", index=i,
                                  kind=self.method_name, fom=g,
                                  feasible=bool(rec.feasible),
                                  t_wall=rec.t_wall)
                self._observers.emit("on_evaluation", self, rec)
                self._observers.emit(
                    "on_round_end", self, i + 1,
                    {"round": i + 1, "kind": self.method_name, "fom": g})
            self._t_offset = time.perf_counter() - t0
        result = OptimizationResult(
            task_name=self.task.name, method=self.method_name,
            records=list(self._records),
            init_best_fom=self._init_best_fom,
            wall_time_s=time.perf_counter() - start,
            meta={"run_id": run_id},
        )
        self.run_log.emit("run_end", method=self.method_name,
                          n_sims=len(self._records), best_fom=result.best_fom,
                          success=result.success,
                          wall_time_s=result.wall_time_s, run_id=run_id)
        self._observers.emit("on_run_end", self, result)
        return result

    # -- checkpoint / resume -------------------------------------------------
    def save_checkpoint(self, path: str | pathlib.Path) -> pathlib.Path:
        """Snapshot driver state (histories, records, RNG) atomically.

        The equivalent of :meth:`MAOptimizer.save_checkpoint` for the
        baseline family; see the class docstring for subclass hooks.
        """
        from repro.resilience.checkpoint import save_checkpoint
        from repro.resilience.state import rng_state

        recs = self._records
        d = self.task.d
        header = {
            "kind": "baseline",
            "method": self.method_name,
            "task": self.task.name,
            "d": d,
            "m": self.task.m,
            "initialized": self._initialized,
            "init_best_fom": self._init_best_fom,
            "rng_state": rng_state(self.rng),
            "t_offset": self._t_offset,
        }
        arrays: dict[str, np.ndarray] = {
            "hist/x": (np.array(self.x_hist) if self.x_hist
                       else np.empty((0, d))),
            "hist/y": np.array(self.y_hist),
            "records/x": (np.array([r.x for r in recs]) if recs
                          else np.empty((0, d))),
            "records/metrics": (np.array([r.metrics for r in recs]) if recs
                                else np.empty((0, self.task.m + 1))),
            "records/fom": np.array([r.fom for r in recs]),
            "records/feasible": np.array([r.feasible for r in recs],
                                         dtype=bool),
            "records/t_wall": np.array([r.t_wall for r in recs]),
        }
        for key, value in self._extra_state().items():
            arrays[f"extra/{key}"] = np.asarray(value)
        final = save_checkpoint(path, header, arrays)
        self.run_log.emit("checkpoint_saved", path=str(final),
                          n_records=len(recs))
        self.obs.inc("checkpoints_total")
        self._observers.emit("on_checkpoint", self, final)
        return final

    @classmethod
    def restore(cls, path: str | pathlib.Path, task: SizingTask,
                telemetry: Telemetry | None = None,
                observers: Iterable[Any] = (),
                **kwargs: Any) -> "BaselineOptimizer":
        """Rebuild an optimizer from :meth:`save_checkpoint` output.

        ``kwargs`` are forwarded to the subclass constructor (hyper-
        parameters are not checkpointed — pass the same ones).
        """
        from repro.resilience.checkpoint import load_checkpoint
        from repro.resilience.state import set_rng_state

        header, arrays = load_checkpoint(path)
        if header.get("kind") != "baseline":
            raise ValueError(f"{path} is not a baseline checkpoint")
        if header["method"] != cls.method_name:
            raise ValueError(
                f"checkpoint is for method {header['method']!r}, "
                f"restore it with that class (got {cls.method_name!r})")
        if (header["task"] != task.name or header["d"] != task.d
                or header["m"] != task.m):
            raise ValueError(
                f"checkpoint was taken on task {header['task']!r}; "
                f"got {task.name!r}")
        opt = cls(task, telemetry=telemetry, observers=observers, **kwargs)
        opt.x_hist = [np.array(x) for x in arrays["hist/x"]]
        opt.y_hist = [float(y) for y in arrays["hist/y"]]
        for i in range(len(arrays["records/fom"])):
            opt._records.append(EvaluationRecord(
                index=i,
                x=np.array(arrays["records/x"][i]),
                metrics=np.array(arrays["records/metrics"][i]),
                fom=float(arrays["records/fom"][i]),
                kind=cls.method_name, owner=None,
                feasible=bool(arrays["records/feasible"][i]),
                t_wall=float(arrays["records/t_wall"][i]),
            ))
        opt._initialized = bool(header["initialized"])
        opt._init_best_fom = float(header["init_best_fom"])
        opt._t_offset = float(header["t_offset"])
        opt._load_extra_state({
            key[len("extra/"):]: value for key, value in arrays.items()
            if key.startswith("extra/")
        })
        set_rng_state(opt.rng, header["rng_state"])
        opt.run_log.emit("checkpoint_restored", path=str(path),
                         n_records=len(opt._records))
        return opt
