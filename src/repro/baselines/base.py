"""Shared scaffolding for baseline optimizers."""

from __future__ import annotations

import time

import numpy as np

from repro.core.fom import FigureOfMerit
from repro.core.problem import SizingTask
from repro.core.result import EvaluationRecord, OptimizationResult


class BaselineOptimizer:
    """Budgeted black-box minimizer of the task FoM.

    Subclasses implement :meth:`_propose` (next design(s) to simulate) and
    may override :meth:`_observe` to update internal state.  The driver
    enforces the shared-initial-set protocol and produces the same
    :class:`OptimizationResult` as the MA-Opt family.
    """

    method_name = "baseline"

    def __init__(self, task: SizingTask, seed: int | None = None) -> None:
        self.task = task
        self.rng = np.random.default_rng(seed)
        self.fom = FigureOfMerit(task)
        self.x_hist: list[np.ndarray] = []
        self.y_hist: list[float] = []

    # -- subclass interface ----------------------------------------------------
    def _propose(self) -> np.ndarray:
        """Return the next design (shape (d,)) to simulate."""
        raise NotImplementedError

    def _observe(self, x: np.ndarray, fom_value: float,
                 metrics: np.ndarray) -> None:
        """Hook called after each simulation (default: record history)."""
        del metrics

    # -- driver -------------------------------------------------------------------
    def run(self, n_sims: int, n_init: int = 100,
            x_init: np.ndarray | None = None,
            f_init: np.ndarray | None = None) -> OptimizationResult:
        start = time.perf_counter()
        if x_init is None:
            x_init = self.task.space.sample(self.rng, n_init)
        x_init = np.atleast_2d(np.asarray(x_init, dtype=float))
        if f_init is None:
            f_init = self.task.evaluate_batch(x_init)
        f_init = np.atleast_2d(np.asarray(f_init, dtype=float))
        init_foms = self.fom(f_init)
        for x, g in zip(x_init, init_foms):
            self.x_hist.append(np.asarray(x, dtype=float))
            self.y_hist.append(float(g))
        records: list[EvaluationRecord] = []
        t0 = time.perf_counter()
        for i in range(n_sims):
            x = np.clip(self._propose(), 0.0, 1.0)
            metrics = self.task.evaluate(x)
            g = float(self.fom(metrics))
            self.x_hist.append(x.copy())
            self.y_hist.append(g)
            self._observe(x, g, metrics)
            records.append(EvaluationRecord(
                index=i, x=x.copy(), metrics=metrics, fom=g,
                kind=self.method_name, owner=None,
                feasible=self.task.is_feasible(metrics),
                t_wall=time.perf_counter() - t0,
            ))
        return OptimizationResult(
            task_name=self.task.name, method=self.method_name,
            records=records, init_best_fom=float(np.min(init_foms)),
            wall_time_s=time.perf_counter() - start,
        )
