"""Shared scaffolding for baseline optimizers."""

from __future__ import annotations

import time
from typing import Any, Iterable

import numpy as np

from repro.core.fom import FigureOfMerit
from repro.core.problem import SizingTask
from repro.core.result import EvaluationRecord, OptimizationResult
from repro.obs import NULL_TELEMETRY, RunLogger, Telemetry


class BaselineOptimizer:
    """Budgeted black-box minimizer of the task FoM.

    Subclasses implement :meth:`_propose` (next design(s) to simulate) and
    may override :meth:`_observe` to update internal state.  The driver
    enforces the shared-initial-set protocol and produces the same
    :class:`OptimizationResult` as the MA-Opt family.

    Like :class:`~repro.core.ma_opt.MAOptimizer`, baselines accept a
    :class:`~repro.obs.Telemetry` bundle and observer callbacks; each
    simulation is treated as a round of size one for observer purposes.
    """

    method_name = "baseline"

    def __init__(self, task: SizingTask, seed: int | None = None,
                 telemetry: Telemetry | None = None,
                 observers: Iterable[Any] = ()) -> None:
        self.task = task
        self.rng = np.random.default_rng(seed)
        self.fom = FigureOfMerit(task)
        self.obs = telemetry or NULL_TELEMETRY
        self._observers = self.obs.observers.extended(observers)
        self.run_log = (self.obs.run_logger
                        if self.obs.run_logger is not None else RunLogger())
        self.x_hist: list[np.ndarray] = []
        self.y_hist: list[float] = []

    # -- subclass interface ----------------------------------------------------
    def _propose(self) -> np.ndarray:
        """Return the next design (shape (d,)) to simulate."""
        raise NotImplementedError

    def _observe(self, x: np.ndarray, fom_value: float,
                 metrics: np.ndarray) -> None:
        """Hook called after each simulation (default: record history)."""
        del metrics

    # -- driver -------------------------------------------------------------------
    def run(self, n_sims: int, n_init: int = 100,
            x_init: np.ndarray | None = None,
            f_init: np.ndarray | None = None) -> OptimizationResult:
        start = time.perf_counter()
        self.run_log.emit("run_start", method=self.method_name,
                          task=self.task.name, n_sims=n_sims)
        with self.obs.span("run", method=self.method_name,
                           task=self.task.name):
            if x_init is None:
                x_init = self.task.space.sample(self.rng, n_init)
            x_init = np.atleast_2d(np.asarray(x_init, dtype=float))
            if f_init is None:
                with self.obs.span("simulate", n=len(x_init), kind="init"):
                    f_init = self.task.evaluate_batch(x_init)
                self.obs.inc("sims_total", len(x_init), kind="init")
            f_init = np.atleast_2d(np.asarray(f_init, dtype=float))
            init_foms = self.fom(f_init)
            for x, g in zip(x_init, init_foms):
                self.x_hist.append(np.asarray(x, dtype=float))
                self.y_hist.append(float(g))
                self.run_log.emit("evaluation", kind="init", fom=float(g))
            records: list[EvaluationRecord] = []
            # t_wall convention (shared with MAOptimizer): the clock starts
            # when the first post-init round begins, before proposal work.
            t0 = time.perf_counter()
            for i in range(n_sims):
                self._observers.emit("on_round_start", self, i + 1,
                                     self.method_name)
                with self.obs.span("propose"):
                    x = np.clip(self._propose(), 0.0, 1.0)
                t_sim = time.perf_counter()
                with self.obs.span("simulate", n=1, kind=self.method_name):
                    metrics = self.task.evaluate(x)
                self.obs.inc("sims_total", kind=self.method_name)
                self.obs.observe("sim_latency_s",
                                 time.perf_counter() - t_sim,
                                 kind=self.method_name)
                g = float(self.fom(metrics))
                self.x_hist.append(x.copy())
                self.y_hist.append(g)
                self._observe(x, g, metrics)
                rec = EvaluationRecord(
                    index=i, x=x.copy(), metrics=metrics, fom=g,
                    kind=self.method_name, owner=None,
                    feasible=self.task.is_feasible(metrics),
                    t_wall=time.perf_counter() - t0,
                )
                records.append(rec)
                self.run_log.emit("evaluation", index=i,
                                  kind=self.method_name, fom=g,
                                  feasible=bool(rec.feasible),
                                  t_wall=rec.t_wall)
                self._observers.emit("on_evaluation", self, rec)
                self._observers.emit(
                    "on_round_end", self, i + 1,
                    {"round": i + 1, "kind": self.method_name, "fom": g})
        result = OptimizationResult(
            task_name=self.task.name, method=self.method_name,
            records=records, init_best_fom=float(np.min(init_foms)),
            wall_time_s=time.perf_counter() - start,
        )
        self.run_log.emit("run_end", method=self.method_name,
                          n_sims=len(records), best_fom=result.best_fom,
                          success=result.success,
                          wall_time_s=result.wall_time_s)
        self._observers.emit("on_run_end", self, result)
        return result
