"""Bayesian optimization over the FoM (the paper's BO column, ref [21]).

A single GP models the scalar figure of merit g[f(x)]; the next design
maximizes expected improvement over a candidate pool of uniform samples
plus local perturbations of the incumbent best.  The GP is refit (with
hyper-parameter optimization) every iteration, reproducing BO's O(N^3)
per-iteration cost that the paper's runtime columns expose.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.baselines.base import BaselineOptimizer
from repro.baselines.gp import GaussianProcess
from repro.core.problem import SizingTask


class BayesOpt(BaselineOptimizer):
    """GP + expected-improvement Bayesian optimizer."""

    method_name = "BO"

    def __init__(self, task: SizingTask, seed: int | None = None,
                 n_candidates: int = 1500, local_frac: float = 0.3,
                 local_sigma: float = 0.05, xi: float = 0.01,
                 max_train: int = 400, hp_every: int = 10,
                 **obs_kwargs) -> None:
        super().__init__(task, seed, **obs_kwargs)
        if n_candidates < 10:
            raise ValueError("need a reasonable candidate pool")
        if hp_every < 1:
            raise ValueError("hp_every must be >= 1")
        self.n_candidates = n_candidates
        self.local_frac = local_frac
        self.local_sigma = local_sigma
        self.xi = xi
        self.max_train = max_train
        self.hp_every = hp_every
        self._gp = None
        self._iteration = 0

    def _candidates(self) -> np.ndarray:
        d = self.task.d
        n_local = int(self.local_frac * self.n_candidates)
        n_global = self.n_candidates - n_local
        pool = [self.rng.uniform(0.0, 1.0, size=(n_global, d))]
        if self.y_hist:
            best = self.x_hist[int(np.argmin(self.y_hist))]
            local = best + self.rng.normal(0.0, self.local_sigma,
                                           size=(n_local, d))
            pool.append(np.clip(local, 0.0, 1.0))
        return np.concatenate(pool, axis=0)

    def _propose(self) -> np.ndarray:
        x = np.array(self.x_hist)
        y = np.array(self.y_hist)
        if len(x) > self.max_train:
            # Keep the best designs plus a random subsample of the rest
            # (bounds the cubic cost on very long runs).
            order = np.argsort(y)
            keep = order[: self.max_train // 2]
            rest = order[self.max_train // 2:]
            extra = self.rng.choice(rest, size=self.max_train - keep.size,
                                    replace=False)
            sel = np.concatenate([keep, extra])
            x, y = x[sel], y[sel]
        # Refit the GP every iteration (the O(N^3) Cholesky the paper's
        # runtime columns expose) but re-optimize hyper-parameters only
        # periodically -- the standard BO engineering compromise.
        if self._gp is None:
            self._gp = GaussianProcess(self.task.d)
        gp = self._gp
        gp.fit(x, y, optimize=self._iteration % self.hp_every == 0)
        self._iteration += 1
        cands = self._candidates()
        mean, std = gp.predict(cands)
        y_best = float(np.min(y))
        # Expected improvement for minimization.
        imp = y_best - mean - self.xi
        z = imp / std
        ei = imp * norm.cdf(z) + std * norm.pdf(z)
        return cands[int(np.argmax(ei))]
