"""Differential evolution over the FoM (related work, ref [8])."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOptimizer
from repro.core.problem import SizingTask


class DifferentialEvolution(BaselineOptimizer):
    """DE/rand/1/bin with greedy per-slot replacement.

    Like the PSO baseline, one trial vector is evaluated per simulation so
    budgets are comparable across methods.
    """

    method_name = "DE"

    def __init__(self, task: SizingTask, seed: int | None = None,
                 pop_size: int = 20, f_weight: float = 0.6,
                 crossover: float = 0.9, **obs_kwargs) -> None:
        super().__init__(task, seed, **obs_kwargs)
        if pop_size < 4:
            raise ValueError("DE needs at least 4 individuals")
        if not 0.0 < crossover <= 1.0:
            raise ValueError("crossover must be in (0, 1]")
        self.pop_size = pop_size
        self.f_weight = f_weight
        self.crossover = crossover
        self._state_ready = False
        self._cursor = 0
        self._trial: np.ndarray | None = None

    def _lazy_init(self) -> None:
        hist_x = np.array(self.x_hist)
        hist_y = np.array(self.y_hist)
        order = np.argsort(hist_y)[: self.pop_size]
        d = self.task.d
        if order.size >= self.pop_size:
            self.pop = hist_x[order].copy()
            self.pop_y = hist_y[order].copy()
        else:
            extra = self.rng.uniform(0, 1, size=(self.pop_size - order.size, d))
            self.pop = np.concatenate([hist_x[order], extra])
            self.pop_y = np.concatenate([hist_y[order],
                                         np.full(extra.shape[0], np.inf)])
        self._state_ready = True

    def _propose(self) -> np.ndarray:
        if not self._state_ready:
            self._lazy_init()
        i = self._cursor
        choices = [j for j in range(self.pop_size) if j != i]
        a, b, c = self.rng.choice(choices, size=3, replace=False)
        mutant = self.pop[a] + self.f_weight * (self.pop[b] - self.pop[c])
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = self.rng.uniform(size=self.task.d) < self.crossover
        cross[self.rng.integers(self.task.d)] = True  # at least one gene
        trial = np.where(cross, mutant, self.pop[i])
        self._trial = trial
        return trial.copy()

    def _observe(self, x: np.ndarray, fom_value: float,
                 metrics: np.ndarray) -> None:
        del metrics, x
        i = self._cursor
        if fom_value <= self.pop_y[i]:
            self.pop[i] = self._trial
            self.pop_y[i] = fom_value
        self._cursor = (self._cursor + 1) % self.pop_size
