"""Gaussian-process regression with an ARD squared-exponential kernel.

Implemented from scratch (Cholesky factorization, analytic marginal
likelihood) so the repo carries no dependency beyond numpy/scipy.  The
O(N^3) refit cost per BO iteration is the computational signature the paper
holds against BO — this implementation reproduces it honestly.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.optimize import minimize


class GaussianProcess:
    """GP regressor ``y ~ GP(0, k)`` with ARD-RBF kernel plus noise.

    Hyper-parameters (signal variance, per-dimension lengthscales, noise
    variance) are optimized by L-BFGS on the log marginal likelihood when
    :meth:`fit` is called with ``optimize=True``.
    """

    def __init__(self, d: int, lengthscale: float = 0.3,
                 signal_var: float = 1.0, noise_var: float = 1e-4) -> None:
        if d < 1:
            raise ValueError("d must be >= 1")
        self.d = d
        self.log_ls = np.full(d, np.log(lengthscale))
        self.log_sf2 = np.log(signal_var)
        self.log_sn2 = np.log(noise_var)
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: np.ndarray | None = None
        self._chol = None

    # -- kernel ----------------------------------------------------------------
    def _k(self, xa: np.ndarray, xb: np.ndarray,
           log_ls: np.ndarray, log_sf2: float) -> np.ndarray:
        ls = np.exp(log_ls)
        diff = xa[:, None, :] / ls - xb[None, :, :] / ls
        sq = np.sum(diff**2, axis=-1)
        return np.exp(log_sf2) * np.exp(-0.5 * sq)

    def _nll(self, theta: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        d = self.d
        log_ls, log_sf2, log_sn2 = theta[:d], theta[d], theta[d + 1]
        k = self._k(x, x, log_ls, log_sf2)
        k[np.diag_indices_from(k)] += np.exp(log_sn2) + 1e-10
        try:
            chol = cho_factor(k, lower=True)
        except np.linalg.LinAlgError:
            return 1e10
        alpha = cho_solve(chol, y)
        logdet = 2.0 * np.sum(np.log(np.diag(chol[0])))
        return float(0.5 * y @ alpha + 0.5 * logdet
                     + 0.5 * len(y) * np.log(2 * np.pi))

    # -- fitting ---------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray, optimize: bool = True,
            maxiter: int = 40) -> "GaussianProcess":
        """Fit to data; ``y`` is standardized internally."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise ValueError("x and y lengths differ")
        if x.shape[1] != self.d:
            raise ValueError(f"expected {self.d} input dims, got {x.shape[1]}")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_std
        if optimize and len(ys) >= 4:
            theta0 = np.concatenate([self.log_ls, [self.log_sf2, self.log_sn2]])
            bounds = ([(np.log(0.01), np.log(10.0))] * self.d
                      + [(np.log(1e-3), np.log(1e3)),
                         (np.log(1e-8), np.log(1.0))])
            res = minimize(self._nll, theta0, args=(x, ys), method="L-BFGS-B",
                           bounds=bounds, options={"maxiter": maxiter})
            if np.isfinite(res.fun):
                self.log_ls = res.x[: self.d]
                self.log_sf2 = float(res.x[self.d])
                self.log_sn2 = float(res.x[self.d + 1])
        k = self._k(x, x, self.log_ls, self.log_sf2)
        k[np.diag_indices_from(k)] += np.exp(self.log_sn2) + 1e-10
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, ys)
        self._x = x
        return self

    # -- prediction --------------------------------------------------------------
    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new`` (de-standardized)."""
        if self._x is None:
            raise RuntimeError("fit the GP first")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        ks = self._k(x_new, self._x, self.log_ls, self.log_sf2)
        mean_s = ks @ self._alpha
        v = cho_solve(self._chol, ks.T)
        var_s = np.exp(self.log_sf2) - np.sum(ks * v.T, axis=1)
        var_s = np.maximum(var_s, 1e-12)
        mean = mean_s * self._y_std + self._y_mean
        std = np.sqrt(var_s) * self._y_std
        return mean, std
