"""AutoCkt-style true-RL baseline: PPO with multi-discrete sizing actions.

The paper's introduction argues that genuine RL sizing agents (AutoCkt
[13], GCN-RL [14], ...) "require thousands of SPICE simulations"; MA-Opt's
whole premise is beating them at a 200-simulation budget.  This module
makes that comparison runnable: a from-scratch PPO agent in the AutoCkt
mold —

* **episodes**: start from a random design, take ``horizon`` steps;
* **observation**: the normalized design concatenated with squashed
  per-constraint violations;
* **action**: per-parameter {down, hold, up} moves of ``step_frac`` of the
  range (multi-discrete categorical policy);
* **reward**: −FoM per step, plus a terminal bonus when all specs are met
  (episode ends early on success);
* **update**: clipped-surrogate PPO with a value baseline and entropy
  bonus, gradients derived analytically through the categorical softmax.

Every environment step costs one simulation, so at MA-Opt's budget the
agent gets only a handful of episodes — reproducing exactly the
sample-inefficiency the paper criticizes (see the RL-budget bench).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOptimizer
from repro.core.problem import SizingTask
from repro.nn import MLP, Adam

N_CHOICES = 3  # down / hold / up


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


class PPOSizer(BaselineOptimizer):
    """PPO sizing agent (see module docstring)."""

    method_name = "PPO"

    def __init__(self, task: SizingTask, seed: int | None = None,
                 horizon: int = 15, step_frac: float = 0.05,
                 hidden: tuple[int, ...] = (64, 64),
                 lr: float = 3e-4, clip: float = 0.2, gamma: float = 0.95,
                 entropy_coef: float = 0.01, epochs: int = 6,
                 success_bonus: float = 10.0, **obs_kwargs) -> None:
        super().__init__(task, seed, **obs_kwargs)
        if horizon < 1 or not 0 < step_frac < 1 or not 0 < clip < 1:
            raise ValueError("bad PPO hyper-parameters")
        self.horizon = horizon
        self.step_frac = step_frac
        self.clip = clip
        self.gamma = gamma
        self.entropy_coef = entropy_coef
        self.epochs = epochs
        self.success_bonus = success_bonus
        d, m1 = task.d, task.m + 1
        obs_dim = d + m1
        self.policy = MLP([obs_dim, *hidden, d * N_CHOICES],
                          activation="tanh", seed=seed)
        self.value = MLP([obs_dim, *hidden, 1], activation="tanh",
                         seed=None if seed is None else seed + 1)
        self.policy_opt = Adam(self.policy.parameters(), lr=lr)
        self.value_opt = Adam(self.value.parameters(), lr=lr)
        # episode state
        self._x: np.ndarray | None = None
        self._obs: np.ndarray | None = None
        self._t = 0
        self._traj: list[dict] = []
        self._pending: dict | None = None

    # -- observation/action plumbing ----------------------------------------
    def _observe_metrics(self, metrics: np.ndarray) -> np.ndarray:
        viol = self.fom.violations(metrics[None, :])[0]
        return np.tanh(np.concatenate([[metrics[0]], viol]))

    def _reset_episode(self) -> None:
        self._x = self.rng.uniform(0.0, 1.0, size=self.task.d)
        # cheap proxy obs for the fresh state: zeros until first sim lands
        self._obs = np.concatenate([self._x, np.zeros(self.task.m + 1)])
        self._t = 0

    def _policy_logits(self, obs: np.ndarray) -> np.ndarray:
        out = self.policy.forward(obs[None, :])[0]
        return out.reshape(self.task.d, N_CHOICES)

    def _sample_action(self, obs: np.ndarray) -> tuple[np.ndarray, float]:
        logits = self._policy_logits(obs)
        probs = _softmax(logits)
        choices = np.array([
            self.rng.choice(N_CHOICES, p=probs[i])
            for i in range(self.task.d)
        ])
        logp = float(np.sum(np.log(
            probs[np.arange(self.task.d), choices] + 1e-12)))
        return choices, logp

    # -- BaselineOptimizer interface ------------------------------------------
    def _propose(self) -> np.ndarray:
        if self._x is None or self._t >= self.horizon:
            if self._traj:
                self._update()
            self._reset_episode()
        choices, logp = self._sample_action(self._obs)
        delta = (choices.astype(float) - 1.0) * self.step_frac
        nxt = np.clip(self._x + delta, 0.0, 1.0)
        self._pending = {"obs": self._obs.copy(), "choices": choices,
                         "logp": logp}
        return nxt

    def _observe(self, x: np.ndarray, fom_value: float,
                 metrics: np.ndarray) -> None:
        assert self._pending is not None
        feasible = self.task.is_feasible(metrics)
        reward = -fom_value + (self.success_bonus if feasible else 0.0)
        self._pending["reward"] = reward
        self._traj.append(self._pending)
        self._pending = None
        self._x = x.copy()
        self._obs = np.concatenate([self._x,
                                    self._observe_metrics(metrics)])
        self._t += 1
        if feasible:
            self._t = self.horizon  # early termination on success

    # -- PPO update -----------------------------------------------------------
    def _update(self) -> None:
        traj = self._traj
        self._traj = []
        obs = np.array([step["obs"] for step in traj])
        choices = np.array([step["choices"] for step in traj])
        logp_old = np.array([step["logp"] for step in traj])
        rewards = np.array([step["reward"] for step in traj])
        # discounted returns within the (single) episode chunk
        returns = np.empty_like(rewards)
        acc = 0.0
        for i in range(len(rewards) - 1, -1, -1):
            acc = rewards[i] + self.gamma * acc
            returns[i] = acc
        values = self.value.forward(obs)[:, 0]
        adv = returns - values
        if adv.std() > 1e-8:
            adv = (adv - adv.mean()) / adv.std()
        n, d = obs.shape[0], self.task.d
        rows = np.arange(d)
        for _ in range(self.epochs):
            logits = self.policy.forward(obs).reshape(n, d, N_CHOICES)
            probs = _softmax(logits)
            chosen = probs[np.arange(n)[:, None], rows[None, :], choices]
            logp = np.log(chosen + 1e-12).sum(axis=1)
            ratio = np.exp(np.clip(logp - logp_old, -20.0, 20.0))
            unclipped = ratio * adv
            clipped = np.clip(ratio, 1 - self.clip, 1 + self.clip) * adv
            use_unclipped = unclipped <= clipped
            active = np.where(use_unclipped, ratio, 0.0) * adv
            # d(-surrogate)/dlogits = -active * (onehot - probs) (+ entropy)
            onehot = np.zeros_like(probs)
            onehot[np.arange(n)[:, None], rows[None, :], choices] = 1.0
            grad = -(active[:, None, None] * (onehot - probs)) / n
            # entropy bonus: d(-H)/dlogits = probs * (log probs + H_row)
            logp_full = np.log(probs + 1e-12)
            ent_row = -(probs * logp_full).sum(axis=-1, keepdims=True)
            grad += self.entropy_coef * probs * (logp_full + ent_row) / n
            self.policy.zero_grad()
            self.policy.backward(grad.reshape(n, d * N_CHOICES))
            self.policy_opt.step()
        # value regression
        for _ in range(self.epochs):
            pred = self.value.forward(obs)[:, 0]
            diff = pred - returns
            self.value.zero_grad()
            self.value.backward((2.0 * diff / n)[:, None])
            self.value_opt.step()
