"""Particle swarm optimization over the FoM (related work, ref [7])."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOptimizer
from repro.core.problem import SizingTask


class ParticleSwarm(BaselineOptimizer):
    """Global-best PSO with inertia damping and reflecting bounds.

    Evaluations are budgeted one at a time (particles advance round-robin),
    so the total simulation count matches the other methods exactly.
    """

    method_name = "PSO"

    def __init__(self, task: SizingTask, seed: int | None = None,
                 n_particles: int = 20, inertia: float = 0.72,
                 c_cognitive: float = 1.5, c_social: float = 1.5,
                 **obs_kwargs) -> None:
        super().__init__(task, seed, **obs_kwargs)
        if n_particles < 2:
            raise ValueError("need at least 2 particles")
        self.n_particles = n_particles
        self.inertia = inertia
        self.c1 = c_cognitive
        self.c2 = c_social
        self._state_ready = False
        self._cursor = 0

    def _lazy_init(self) -> None:
        d = self.task.d
        hist_x = np.array(self.x_hist)
        hist_y = np.array(self.y_hist)
        order = np.argsort(hist_y)[: self.n_particles]
        if order.size >= self.n_particles:
            self.pos = hist_x[order].copy()
            pbest_y = hist_y[order].copy()
        else:  # not enough history: fill with uniform samples
            extra = self.rng.uniform(0, 1, size=(self.n_particles - order.size, d))
            self.pos = np.concatenate([hist_x[order], extra])
            pbest_y = np.concatenate([hist_y[order],
                                      np.full(extra.shape[0], np.inf)])
        self.vel = self.rng.uniform(-0.1, 0.1, size=(self.n_particles, d))
        self.pbest = self.pos.copy()
        self.pbest_y = pbest_y
        g = int(np.argmin(self.pbest_y))
        self.gbest = self.pbest[g].copy()
        self.gbest_y = float(self.pbest_y[g])
        self._state_ready = True

    def _propose(self) -> np.ndarray:
        if not self._state_ready:
            self._lazy_init()
        i = self._cursor
        r1 = self.rng.uniform(size=self.task.d)
        r2 = self.rng.uniform(size=self.task.d)
        self.vel[i] = (self.inertia * self.vel[i]
                       + self.c1 * r1 * (self.pbest[i] - self.pos[i])
                       + self.c2 * r2 * (self.gbest - self.pos[i]))
        nxt = self.pos[i] + self.vel[i]
        # Reflecting bounds keep particles inside the cube.
        over = nxt > 1.0
        under = nxt < 0.0
        nxt[over] = 2.0 - nxt[over]
        nxt[under] = -nxt[under]
        nxt = np.clip(nxt, 0.0, 1.0)
        self.vel[i][over | under] *= -0.5
        self.pos[i] = nxt
        return nxt.copy()

    def _observe(self, x: np.ndarray, fom_value: float,
                 metrics: np.ndarray) -> None:
        del metrics
        i = self._cursor
        if fom_value < self.pbest_y[i]:
            self.pbest[i] = x.copy()
            self.pbest_y[i] = fom_value
        if fom_value < self.gbest_y:
            self.gbest = x.copy()
            self.gbest_y = fom_value
        self._cursor = (self._cursor + 1) % self.n_particles
