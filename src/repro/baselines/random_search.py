"""Uniform random search — the sanity floor every method must beat."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOptimizer


class RandomSearch(BaselineOptimizer):
    """Proposes i.i.d. uniform designs in the unit cube."""

    method_name = "Random"

    def _propose(self) -> np.ndarray:
        return self.rng.uniform(0.0, 1.0, size=self.task.d)
