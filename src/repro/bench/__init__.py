"""``repro.bench`` — deterministic performance benchmarking & regression
gating.

The counterpart to :mod:`repro.obs`: where telemetry answers "where did
*this* run spend its time", the bench subsystem answers "did the code get
slower *between* runs".  Four pieces:

* **registry** (:mod:`repro.bench.registry`): named, tiered benchmarks
  whose inputs derive entirely from a seeded generator;
* **runner** (:mod:`repro.bench.runner`): warmup + repeats, wall/CPU time,
  tracemalloc peak memory, optional cProfile hotspots, machine
  fingerprint;
* **schema** (:mod:`repro.bench.schema`): versioned JSON result documents
  (written to ``benchmarks/results/perf/``) plus the repo-root
  ``BENCH_core.json`` trajectory (:mod:`repro.bench.trajectory`);
* **compare** (:mod:`repro.bench.compare`): per-benchmark relative
  thresholds with the 0-ok / 1-regression / 2-usage exit-code convention.

CLI: ``ma-opt bench run|compare|list``.  Reference: ``docs/benchmarking.md``.
"""

from repro.bench.compare import (DEFAULT_THRESHOLD, compare_results,
                                 exit_code, has_regressions, render_rows)
from repro.bench.registry import (REGISTRY, Benchmark, BenchmarkRegistry,
                                  builtin_registry)
from repro.bench.runner import (bench_rng, render_result, run_benchmark,
                                run_benchmarks)
from repro.bench.schema import (SCHEMA_VERSION, build_result, load_result,
                                machine_fingerprint, save_result,
                                validate_result)
from repro.bench.trajectory import append_entry, load_trajectory

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "DEFAULT_THRESHOLD",
    "REGISTRY",
    "SCHEMA_VERSION",
    "append_entry",
    "bench_rng",
    "build_result",
    "builtin_registry",
    "compare_results",
    "exit_code",
    "has_regressions",
    "load_result",
    "load_trajectory",
    "machine_fingerprint",
    "render_result",
    "render_rows",
    "run_benchmark",
    "run_benchmarks",
    "save_result",
    "validate_result",
]
