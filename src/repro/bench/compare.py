"""Regression comparator for bench result documents.

Compares the ``wall_s.min`` of each benchmark (minimum-of-repeats is the
standard noise-robust estimator: scheduling jitter only ever adds time)
against a baseline, with a per-benchmark relative threshold:

    delta = (current - baseline) / max(baseline, MIN_BASE_S)

``MIN_BASE_S`` floors the denominator so a zero/near-zero baseline (timer
resolution, trivially fast benchmark) cannot turn nanosecond jitter into
a million-percent regression.

Statuses per benchmark:

* ``ok`` — within threshold;
* ``faster`` — improved past the threshold (never fails the gate);
* ``regression`` — slower than ``threshold``;
* ``new`` — in current only (no baseline to gate against; never fails);
* ``missing`` — in baseline only: the benchmark silently disappeared,
  which gates exactly like a regression (a deleted bench must be deleted
  from the baseline too).

Exit-code convention (shared with ``ma-opt lint``): 0 ok, 1 regression,
2 usage error (unreadable/invalid input) — raised as ``ValueError`` by
:func:`repro.bench.schema.load_result` and mapped to 2 by the CLI.
"""

from __future__ import annotations

from typing import Mapping

#: Default relative regression threshold (+35 % on min wall time).
DEFAULT_THRESHOLD = 0.35

#: Relative-comparison floor: baselines below this are compared as if they
#: took this long (60 µs ~ a few thousand timer granules).
MIN_BASE_S = 60e-6

_FAILING = ("regression", "missing")


def _by_name(doc: dict) -> dict[str, dict]:
    return {entry["name"]: entry for entry in doc.get("benchmarks", [])}


def compare_results(baseline: dict, current: dict,
                    threshold: float = DEFAULT_THRESHOLD,
                    per_bench: Mapping[str, float] | None = None,
                    ) -> list[dict]:
    """Diff two result documents; returns one row per benchmark name.

    ``threshold`` is the default allowed relative slowdown (0.35 = +35 %);
    ``per_bench`` maps benchmark names to overriding thresholds.  Rows
    carry ``name/status/base_s/cur_s/delta/threshold`` and are ordered:
    failures first, then by name.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    per_bench = dict(per_bench or {})
    base = _by_name(baseline)
    cur = _by_name(current)
    rows: list[dict] = []
    for name in sorted(set(base) | set(cur)):
        limit = per_bench.get(name, threshold)
        if limit < 0:
            raise ValueError(f"threshold for {name!r} must be >= 0")
        row = {"name": name, "threshold": limit,
               "base_s": None, "cur_s": None, "delta": None}
        if name not in cur:
            row.update(status="missing",
                       base_s=float(base[name]["wall_s"]["min"]))
        elif name not in base:
            row.update(status="new",
                       cur_s=float(cur[name]["wall_s"]["min"]))
        else:
            b = float(base[name]["wall_s"]["min"])
            c = float(cur[name]["wall_s"]["min"])
            delta = (c - b) / max(b, MIN_BASE_S)
            status = "ok"
            if delta > limit:
                status = "regression"
            elif delta < -limit:
                status = "faster"
            row.update(status=status, base_s=b, cur_s=c, delta=delta)
        rows.append(row)
    rows.sort(key=lambda r: (r["status"] not in _FAILING, r["name"]))
    return rows


def has_regressions(rows: list[dict]) -> bool:
    return any(r["status"] in _FAILING for r in rows)


def exit_code(rows: list[dict], warn_only: bool = False) -> int:
    """0 when clean (or ``warn_only``), 1 when any row gates."""
    return 1 if has_regressions(rows) and not warn_only else 0


def render_rows(rows: list[dict]) -> str:
    """ASCII comparison table, failures first."""
    if not rows:
        return "bench compare: no benchmarks in either result"
    header = (f"{'benchmark':<28} {'status':<11} {'baseline':>10} "
              f"{'current':>10} {'delta':>8} {'limit':>7}")
    lines = [header, "-" * len(header)]
    for r in rows:
        base = "-" if r["base_s"] is None else f"{r['base_s']:.6f}"
        cur = "-" if r["cur_s"] is None else f"{r['cur_s']:.6f}"
        delta = "-" if r["delta"] is None else f"{100 * r['delta']:+.1f}%"
        lines.append(f"{r['name']:<28} {r['status']:<11} {base:>10} "
                     f"{cur:>10} {delta:>8} {100 * r['threshold']:>6.0f}%")
    n_bad = sum(r["status"] in _FAILING for r in rows)
    lines.append(f"{n_bad} failing / {len(rows)} compared"
                 if n_bad else f"ok: {len(rows)} benchmarks within limits")
    return "\n".join(lines)
