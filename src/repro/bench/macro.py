"""Built-in macro benchmarks: end-to-end ``MAOptimizer.run`` timings.

Each payload runs a small-budget optimization with its own
:class:`~repro.obs.Tracer` attached and returns the per-span wall-time
breakdown (via :mod:`repro.obs.report`), so every macro entry's
``extra["breakdown"]`` answers *where* the end-to-end time went — the
same table ``--trace-out`` prints for a real run.

Budgets are deliberately tiny: macro benches exist to catch integration-
level slowdowns (executor overhead, telemetry cost, round orchestration),
not to re-measure the micro hot paths.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import REGISTRY
from repro.core.synthetic import ConstrainedSphere


def _run_maopt(task, seed: int, n_sims: int, n_init: int) -> dict:
    from repro.core.config import MAOptConfig
    from repro.core.ma_opt import MAOptimizer
    from repro.obs import Telemetry, Tracer
    from repro.obs.report import breakdown

    config = MAOptConfig(seed=seed, hidden=(16, 16), critic_steps=10,
                         actor_steps=5, batch_size=16, n_elite=8,
                         ns_samples=500)
    tracer = Tracer()
    opt = MAOptimizer(task, config, telemetry=Telemetry(tracer=tracer))
    result = opt.run(n_sims=n_sims, n_init=n_init)
    rows = [
        {k: (round(v, 6) if isinstance(v, float) else v)
         for k, v in row.items()}
        for row in breakdown(tracer.to_rows())
    ]
    return {"breakdown": rows, "best_fom": result.best_fom,
            "n_sims": len(result.records)}


@REGISTRY.register(
    "macro.run.sphere", repeats=2, warmup=0,
    description="end-to-end MAOptimizer.run on the synthetic sphere "
                "(24 sims + 16 init, small nets) with per-span breakdown")
def _bench_run_sphere(rng: np.random.Generator):
    task = ConstrainedSphere(d=8, seed=7)
    seed = int(rng.integers(0, 2**31))

    def payload():
        return _run_maopt(task, seed, n_sims=24, n_init=16)

    return payload


@REGISTRY.register(
    "macro.run.ota", repeats=1, warmup=0,
    description="end-to-end MAOptimizer.run on the fast-fidelity OTA "
                "(6 sims + 8 init, small nets) with per-span breakdown")
def _bench_run_ota(rng: np.random.Generator):
    from repro.circuits import TwoStageOTA

    task = TwoStageOTA(fidelity="fast")
    seed = int(rng.integers(0, 2**31))

    def payload():
        return _run_maopt(task, seed, n_sims=6, n_init=8)

    return payload
