"""Built-in micro benchmarks: isolated hot paths of the optimizer stack.

Importing this module registers the suite into
:data:`repro.bench.registry.REGISTRY`.  Every setup derives all inputs
from its seeded generator (see ``docs/benchmarking.md``); payloads with
sub-millisecond single calls loop internally so one timed call stays well
above timer resolution — the loop count is part of the benchmark's
definition and must not change without resetting baselines.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.bench.registry import REGISTRY
from repro.core.fom import FigureOfMerit
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.synthetic import ConstrainedSphere

_D = 12          # design dimensionality of the synthetic datasets
_N_SET = 256     # designs in the synthetic X^tot


def _sphere_dataset(rng: np.random.Generator, n: int = _N_SET,
                    d: int = _D) -> tuple[ConstrainedSphere, FigureOfMerit,
                                          TotalDesignSet]:
    """A sphere task plus an X^tot of ``n`` simulated random designs."""
    task = ConstrainedSphere(d=d, seed=7)
    fom = FigureOfMerit(task)
    total = TotalDesignSet(d, task.m + 1)
    for x in task.space.sample(rng, n):
        f = task.evaluate(x)
        total.add(x, f, float(fom(f)))
    return task, fom, total


def _ota_circuit():
    """The mid-space Table-I OTA netlist (the repo's canonical circuit)."""
    from repro.circuits import TwoStageOTA
    from repro.circuits.ota import build_ota

    task = TwoStageOTA(fidelity="fast")
    params = task.space.denormalize(np.full(task.d, 0.5))
    circuit = build_ota(params)
    circuit.ensure_bound()
    return circuit


# -- SPICE engine -----------------------------------------------------------

@REGISTRY.register(
    "micro.mna.assemble", repeats=5, warmup=1,
    description="20x dense MNA assembly of the mid-space OTA at a fixed "
                "iterate (the inner loop of every Newton step)")
def _bench_mna_assemble(rng: np.random.Generator):
    from repro.spice.mna import StampContext

    circuit = _ota_circuit()
    x = rng.normal(0.0, 0.1, size=circuit.size)
    ctx = StampContext(analysis="dc")

    def payload():
        for _ in range(20):
            circuit.assemble(x, ctx)

    return payload


@REGISTRY.register(
    "micro.mna.solve", repeats=5, warmup=1,
    description="cold DC operating point of the mid-space OTA (full "
                "Newton + homotopy ladder)")
def _bench_mna_solve(rng: np.random.Generator):
    from repro.spice.dc import operating_point

    del rng  # the cold solve is input-free by design
    circuit = _ota_circuit()

    def payload():
        operating_point(circuit)

    return payload


@REGISTRY.register(
    "micro.spice.ac-sweep", repeats=5, warmup=1,
    description="AC sweep of the mid-space OTA over 10 Hz..1 GHz at 4 "
                "points/decade from a precomputed operating point")
def _bench_ac_sweep(rng: np.random.Generator):
    from repro.spice.ac import ac_analysis, logspace_frequencies
    from repro.spice.dc import operating_point

    del rng
    circuit = _ota_circuit()
    x_op = operating_point(circuit).x
    freqs = logspace_frequencies(10.0, 1e9, points_per_decade=4)

    def payload():
        ac_analysis(circuit, freqs, x_op)

    return payload


# -- pseudo-samples (Eq. 3) -------------------------------------------------

@REGISTRY.register(
    "micro.pseudo.batch", repeats=5, warmup=1,
    description="50x pseudo_sample_batch(256) from a 256-design X^tot "
                "(one critic-training minibatch each)")
def _bench_pseudo_batch(rng: np.random.Generator):
    from repro.core.pseudo import pseudo_sample_batch

    _task, _fom, total = _sphere_dataset(rng)

    def payload():
        for _ in range(50):
            pseudo_sample_batch(total, _N_SET, rng)

    return payload


@REGISTRY.register(
    "micro.pseudo.all", repeats=5, warmup=1,
    description="all_pseudo_samples(max_pairs=4096) from a 256-design "
                "X^tot (offline critic fitting path)")
def _bench_pseudo_all(rng: np.random.Generator):
    from repro.core.pseudo import all_pseudo_samples

    _task, _fom, total = _sphere_dataset(rng)

    def payload():
        all_pseudo_samples(total, max_pairs=4096, rng=rng)

    return payload


# -- training steps (Eqs. 4-5) ----------------------------------------------

@REGISTRY.register(
    "micro.train.critic", repeats=5, warmup=1,
    description="20 critic MSE steps (batch 64) on pseudo-sample batches "
                "from a 256-design X^tot")
def _bench_train_critic(rng: np.random.Generator):
    from repro.core.networks import Critic
    from repro.core.training import train_critic

    task, _fom, total = _sphere_dataset(rng)
    critic = Critic(task.d, task.m + 1,
                    seed=int(rng.integers(0, 2**31)))

    def payload():
        train_critic(critic, total, steps=20, batch_size=64, rng=rng)

    return payload


@REGISTRY.register(
    "micro.train.actor", repeats=5, warmup=1,
    description="10 actor updates (batch 64) against a frozen critic with "
                "the Eq. 6 elite-box penalty")
def _bench_train_actor(rng: np.random.Generator):
    from repro.core.networks import Actor, Critic
    from repro.core.training import train_actor, train_critic

    task, fom, total = _sphere_dataset(rng)
    critic = Critic(task.d, task.m + 1, seed=int(rng.integers(0, 2**31)))
    train_critic(critic, total, steps=5, batch_size=64, rng=rng)
    actor = Actor(task.d, action_scale=0.2,
                  seed=int(rng.integers(0, 2**31)))
    elite = EliteSet(total, 16)

    def payload():
        train_actor(actor, critic, fom, total, elite, steps=10,
                    batch_size=64, lambda_viol=10.0, rng=rng)

    return payload


@REGISTRY.register(
    "micro.ns.rank-2000", repeats=5, warmup=1,
    description="near-sampling round: rank 2000 candidates (the paper's "
                "N_samples) with one batched critic forward pass")
def _bench_near_sampling(rng: np.random.Generator):
    from repro.core.near_sampling import near_sampling_proposal
    from repro.core.networks import Critic

    task, fom, total = _sphere_dataset(rng)
    critic = Critic(task.d, task.m + 1, seed=int(rng.integers(0, 2**31)))
    critic.fit_scaler(total.metrics)
    x_opt = total.best()[0]

    def payload():
        near_sampling_proposal(critic, fom, x_opt, 0.04, 2000, rng,
                               margin=0.05)

    return payload


@REGISTRY.register(
    "micro.elite.update", repeats=5, warmup=1,
    description="20x shared elite-set re-rank over a 4096-design X^tot")
def _bench_elite_update(rng: np.random.Generator):
    _task, _fom, total = _sphere_dataset(rng, n=4096)
    elite = EliteSet(total, 24)

    def payload():
        for _ in range(20):
            elite.indices()

    return payload


# -- persistence ------------------------------------------------------------

@REGISTRY.register(
    "micro.ckpt.roundtrip", repeats=3, warmup=1,
    description="MAOptimizer checkpoint save + restore round-trip (16-"
                "design sphere run, paper-size 2x100 networks)")
def _bench_checkpoint(rng: np.random.Generator):
    from repro.core.config import MAOptConfig
    from repro.core.ma_opt import MAOptimizer

    task = ConstrainedSphere(d=_D, seed=7)
    config = MAOptConfig(seed=int(rng.integers(0, 2**31)))
    opt = MAOptimizer(task, config)
    opt.initialize(n_init=16)
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-ckpt-")
    path = os.path.join(tmpdir, "bench.ckpt.npz")

    def payload():
        opt.save_checkpoint(path)
        MAOptimizer.restore(path, task)

    def cleanup():
        if os.path.exists(path):
            os.unlink(path)
        os.rmdir(tmpdir)

    return payload, cleanup


@REGISTRY.register(
    "micro.serialize.roundtrip", repeats=3, warmup=1,
    description="OptimizationResult .npz save + load round-trip "
                "(128 records)")
def _bench_serialize(rng: np.random.Generator):
    from repro.core.result import EvaluationRecord, OptimizationResult
    from repro.core.serialize import load_result, save_result

    records = [
        EvaluationRecord(index=i, x=rng.uniform(size=_D),
                         metrics=rng.uniform(size=3),
                         fom=float(rng.uniform()), kind="actor",
                         owner=int(i % 3), feasible=bool(i % 2),
                         t_wall=float(i))
        for i in range(128)
    ]
    result = OptimizationResult(task_name="bench", method="MA-Opt",
                                records=records, init_best_fom=1.0,
                                wall_time_s=1.0)
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-npz-")
    path = os.path.join(tmpdir, "bench-result.npz")

    def payload():
        save_result(result, path)
        load_result(path)

    def cleanup():
        if os.path.exists(path):
            os.unlink(path)
        os.rmdir(tmpdir)

    return payload, cleanup


# -- observability ------------------------------------------------------------

@REGISTRY.register(
    "micro.obs.event-emit", repeats=5, warmup=1,
    description="500x RunLogger.emit streamed to a JSONL file (the "
                "per-evaluation event path, lock + write + flush)")
def _bench_event_emit(rng: np.random.Generator):
    from repro.obs.events import RunLogger

    tmpdir = tempfile.mkdtemp(prefix="repro-bench-events-")
    path = os.path.join(tmpdir, "events.jsonl")
    logger = RunLogger(path=path)
    fom = float(rng.uniform())

    def payload():
        for i in range(500):
            logger.emit("evaluation", kind="actor", index=i, fom=fom,
                        feasible=True, owner=i % 3)

    def cleanup():
        logger.close()
        os.unlink(path)
        os.rmdir(tmpdir)

    return payload, cleanup


@REGISTRY.register(
    "micro.obs.span-overhead", repeats=5, warmup=1,
    description="2000 enter/exit pairs of a live traced span plus the "
                "same count through NULL_TELEMETRY (the ~free no-op path)")
def _bench_span_overhead(rng: np.random.Generator):
    from repro.obs import NULL_TELEMETRY, Telemetry, Tracer

    del rng  # pure control-flow overhead; input-free by design

    def payload():
        tel = Telemetry(tracer=Tracer())
        for _ in range(2000):
            with tel.span("hot", kind="bench"):
                pass
        for _ in range(2000):
            with NULL_TELEMETRY.span("hot", kind="bench"):
                pass

    return payload


# -- static analysis ---------------------------------------------------------

@REGISTRY.register(
    "micro.analysis.rngflow", repeats=5, warmup=1,
    description="flow-sensitive RNG provenance pass over the four "
                "largest core/ modules (parse + scope build + rules)")
def _bench_rngflow(rng: np.random.Generator):
    import pathlib

    import repro
    from repro.analysis.rngflow import check_source

    del rng  # analyzes fixed source text; input-free by design
    root = pathlib.Path(repro.__file__).parent
    sources = [(str(p), p.read_text(encoding="utf-8"))
               for p in sorted((root / "core").glob("*.py"),
                               key=lambda p: -p.stat().st_size)[:4]]

    def payload():
        for path, text in sources:
            check_source(text, path=path)

    return payload


@REGISTRY.register(
    "micro.analysis.locks", repeats=5, warmup=1,
    description="lockset/guarded-by pass over the obs/ telemetry "
                "package (parse + class models + all flow.lock rules)")
def _bench_locks(rng: np.random.Generator):
    import pathlib

    import repro
    from repro.analysis.locks import check_modules
    from repro.analysis.flow import build_module

    del rng  # analyzes fixed source text; input-free by design
    root = pathlib.Path(repro.__file__).parent
    sources = [(str(p), p.read_text(encoding="utf-8"))
               for p in sorted((root / "obs").glob("*.py"))]

    def payload():
        check_modules([build_module(text, path=path)
                       for path, text in sources])

    return payload


@REGISTRY.register(
    "micro.analysis.taint", repeats=5, warmup=1,
    description="service-boundary taint pass over the serve/ package "
                "(parse + call-graph summaries + fixpoint + all "
                "flow.taint rules)")
def _bench_taint(rng: np.random.Generator):
    import pathlib

    import repro
    from repro.analysis.flow import build_module
    from repro.analysis.taint import check_modules

    del rng  # analyzes fixed source text; input-free by design
    root = pathlib.Path(repro.__file__).parent
    sources = [(str(p), p.read_text(encoding="utf-8"))
               for p in sorted((root / "serve").glob("*.py"))]

    def payload():
        check_modules([build_module(text, path=path)
                       for path, text in sources])

    return payload


@REGISTRY.register(
    "micro.analysis.shapes", repeats=5, warmup=1,
    description="full shape-contract sweep (critic/actor IO, config "
                "bounds, construction sites) over the installed package")
def _bench_shapes(rng: np.random.Generator):
    from repro.analysis.shapes import check_shapes

    del rng  # analyzes fixed source text; input-free by design

    def payload():
        check_shapes()

    return payload


# -- job service --------------------------------------------------------------

@REGISTRY.register(
    "micro.serve.job-roundtrip", repeats=5, warmup=1,
    description="20x submit-path document work: canonicalize + validate "
                "(job.* and cfg.* rules) + hash a job spec, then write "
                "its record atomically")
def _bench_serve_job_roundtrip(rng: np.random.Generator):
    from repro.serve.jobs import (Job, canonical_spec, spec_hash,
                                  validate_job)
    from repro.resilience.checkpoint import atomic_write_json

    seeds = rng.integers(0, 1 << 16, size=20)
    specs = [{"task": "sphere", "seed": int(s),
              "overrides": {"n_elite": 8}} for s in seeds]
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    path = os.path.join(tmpdir, "job-record.json")

    def payload():
        for spec in specs:
            canonical = canonical_spec(spec)
            if validate_job(canonical):
                raise RuntimeError("bench spec must validate clean")
            job = Job(job_id=f"job-000001-{spec_hash(canonical)[:8]}",
                      spec=canonical)
            atomic_write_json(path, job.record())

    return payload


@REGISTRY.register(
    "micro.serve.dispatch", repeats=5, warmup=1,
    description="drain a 512-job queue through the scheduling policy "
                "(priority lanes, FIFO, per-tenant caps) with "
                "select_next, tracking running counts")
def _bench_serve_dispatch(rng: np.random.Generator):
    from repro.serve.jobs import Job, canonical_spec, select_next

    lanes = rng.choice(["high", "normal", "low"], size=512)
    tenants = rng.choice([f"t{i}" for i in range(8)], size=512)
    jobs = [Job(job_id=f"job-{i:06d}-deadbeef",
                spec=canonical_spec({"task": "sphere",
                                     "priority": str(lanes[i]),
                                     "tenant": str(tenants[i])}))
            for i in range(512)]

    def payload():
        queued = list(jobs)
        running: dict[str, int] = {}
        drained = 0
        while queued:
            job = select_next(queued, running, tenant_cap=2)
            if job is None:  # caps saturated: retire the running set
                running.clear()
                continue
            queued.remove(job)
            running[job.tenant] = running.get(job.tenant, 0) + 1
            drained += 1
        if drained != len(jobs):
            raise RuntimeError("dispatch bench failed to drain")

    return payload
