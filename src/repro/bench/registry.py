"""Benchmark registry: named, tiered, deterministic performance benchmarks.

A :class:`Benchmark` packages a *setup* function that builds all inputs
from an explicit :class:`numpy.random.Generator` and returns the payload
callable the runner times.  Separating setup from payload keeps one-time
construction (circuits, datasets, networks) out of the measured window,
and deriving every input from the seeded generator makes a benchmark's
inputs bit-identical across runs — the property regression gating relies
on (see ``docs/benchmarking.md``).

Names are dotted ids whose first segment is the tier (``micro.mna.solve``,
``macro.run.sphere``); :meth:`BenchmarkRegistry.select` filters by id
prefix with the same matching rule the static-analysis ``--select`` flag
established.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

import numpy as np

TIERS = ("micro", "macro")

#: setup(rng) returns the payload to time, optionally paired with a
#: cleanup callable: ``payload`` or ``(payload, cleanup)``.
SetupFn = Callable[[np.random.Generator], Any]


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark (see module docstring).

    ``repeats``/``warmup`` are per-benchmark defaults; the runner can
    override both globally.  A payload that returns a ``dict`` has that
    dict recorded under the result's ``extra`` field (macro benchmarks use
    this to attach their per-span wall-time breakdown).
    """

    name: str
    setup: SetupFn
    description: str = ""
    repeats: int = 5
    warmup: int = 1
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(
                f"benchmark {self.name!r}: name must start with a tier "
                f"segment ({'/'.join(TIERS)}), e.g. 'micro.mna.solve'")
        if self.repeats < 1 or self.warmup < 0:
            raise ValueError(
                f"benchmark {self.name!r}: need repeats >= 1, warmup >= 0")

    @property
    def tier(self) -> str:
        """``micro`` or ``macro`` — the name's first dotted segment."""
        return self.name.split(".", 1)[0]


class BenchmarkRegistry:
    """Ordered, name-keyed collection of :class:`Benchmark` objects."""

    def __init__(self) -> None:
        self._benchmarks: dict[str, Benchmark] = {}

    def add(self, benchmark: Benchmark) -> Benchmark:
        if benchmark.name in self._benchmarks:
            raise ValueError(f"benchmark {benchmark.name!r} already registered")
        self._benchmarks[benchmark.name] = benchmark
        return benchmark

    def register(self, name: str, description: str = "", repeats: int = 5,
                 warmup: int = 1, tags: Iterable[str] = ()
                 ) -> Callable[[SetupFn], SetupFn]:
        """Decorator form: ``@registry.register("micro.x.y", ...)`` above a
        setup function."""

        def decorator(setup: SetupFn) -> SetupFn:
            self.add(Benchmark(name=name, setup=setup,
                               description=description, repeats=repeats,
                               warmup=warmup, tags=tuple(tags)))
            return setup

        return decorator

    def get(self, name: str) -> Benchmark:
        try:
            return self._benchmarks[name]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {name!r}; known: {sorted(self._benchmarks)}"
            ) from None

    def names(self) -> list[str]:
        return list(self._benchmarks)

    def select(self, filters: Iterable[str] = ()) -> list[Benchmark]:
        """Benchmarks whose dotted id matches any prefix in ``filters``.

        A prefix matches the whole id or a dotted-segment boundary
        (``micro.mna`` matches ``micro.mna.solve`` but not
        ``micro.mnax.solve``).  No filters selects everything.
        """
        filters = [f for f in filters if f]
        if not filters:
            return list(self._benchmarks.values())
        out = []
        for bench in self._benchmarks.values():
            for prefix in filters:
                p = prefix.rstrip(".")
                if bench.name == p or bench.name.startswith(p + "."):
                    out.append(bench)
                    break
        return out

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __iter__(self) -> Iterator[Benchmark]:
        return iter(self._benchmarks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks


#: The process-wide default registry the built-in suites register into.
REGISTRY = BenchmarkRegistry()


def builtin_registry() -> BenchmarkRegistry:
    """The default registry with the built-in micro + macro suites loaded.

    The suite modules register on first import; calling this twice is
    idempotent.
    """
    from repro.bench import macro, micro  # noqa: F401  (import = register)

    return REGISTRY
