"""Deterministic benchmark runner (wall + CPU time, peak memory, profile).

Measurement protocol, per benchmark:

1. ``setup(rng)`` builds all inputs from a generator seeded by
   ``(seed, crc32(name))`` — per-benchmark streams are independent of
   registration order and of which other benchmarks run, so a filtered run
   times *exactly* the same work as a full one.
2. ``warmup`` untimed payload calls absorb one-time costs (allocator
   growth, branch warmup).
3. ``repeats`` timed calls: wall time via ``time.perf_counter`` (the
   repo-wide ``t_wall`` clock convention) and CPU time via
   ``time.process_time``.
4. One extra *untimed* pass under :mod:`tracemalloc` records peak python
   memory — tracemalloc slows allocation several-fold, so it never shares
   a pass with the timers.
5. With profiling enabled, one more untimed pass runs under
   :mod:`cProfile` and the top-N cumulative hotspots land in the entry's
   ``extra["hotspots"]``.

Every benchmark feeds the attached telemetry bundle: a ``bench`` span per
benchmark, a ``bench_runs_total`` counter, and ``bench_wall_s{bench=...}``
observations — so ``--metrics-out`` captures bench sessions like any
other run.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
import tracemalloc
import zlib
from typing import Callable

import numpy as np

from repro.bench.registry import Benchmark, BenchmarkRegistry
from repro.bench.schema import build_result, stat_summary
from repro.obs import NULL_TELEMETRY, Telemetry


def bench_rng(name: str, seed: int) -> np.random.Generator:
    """The generator benchmark ``name`` sees under ``seed``.

    Keyed by ``(seed, crc32(name))``: stable across sessions and across
    registry ordering, distinct per benchmark.
    """
    return np.random.default_rng([seed, zlib.crc32(name.encode("utf-8"))])


def _resolve_payload(setup_result):
    """``setup`` may return ``payload`` or ``(payload, cleanup)``."""
    if (isinstance(setup_result, tuple) and len(setup_result) == 2
            and callable(setup_result[0]) and callable(setup_result[1])):
        return setup_result
    if callable(setup_result):
        return setup_result, None
    raise TypeError("benchmark setup must return a callable payload "
                    "(optionally paired with a cleanup callable)")


def profile_payload(payload: Callable[[], object], top: int = 10
                    ) -> list[dict]:
    """Run ``payload`` once under cProfile; return the top-``top`` hotspots
    by cumulative time as ``{"func", "ncalls", "tottime_s", "cumtime_s"}``
    rows."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        payload()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    rows: list[dict] = []
    for func in stats.fcn_list[:top]:  # (file, line, name), sorted
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        label = (f"{name}" if filename.startswith("~")
                 else f"{filename}:{lineno}:{name}")
        rows.append({"func": label, "ncalls": int(nc),
                     "tottime_s": float(tt), "cumtime_s": float(ct)})
    return rows


def run_benchmark(bench: Benchmark, seed: int = 0,
                  repeats: int | None = None, warmup: int | None = None,
                  telemetry: Telemetry | None = None,
                  profile: bool = False, profile_top: int = 10) -> dict:
    """Measure one benchmark; returns a schema ``benchmarks[]`` entry."""
    obs = telemetry or NULL_TELEMETRY
    n_repeats = bench.repeats if repeats is None else max(1, repeats)
    n_warmup = bench.warmup if warmup is None else max(0, warmup)
    payload, cleanup = _resolve_payload(bench.setup(bench_rng(bench.name,
                                                              seed)))
    try:
        with obs.span("bench", bench=bench.name, repeats=n_repeats):
            for _ in range(n_warmup):
                payload()
            wall: list[float] = []
            cpu: list[float] = []
            last = None
            for _ in range(n_repeats):
                c0 = time.process_time()
                t0 = time.perf_counter()
                last = payload()
                wall.append(time.perf_counter() - t0)
                cpu.append(time.process_time() - c0)
            tracemalloc.start()
            try:
                payload()
                _current, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            extra: dict = dict(last) if isinstance(last, dict) else {}
            if profile:
                extra["hotspots"] = profile_payload(payload, top=profile_top)
    finally:
        if cleanup is not None:
            cleanup()
    obs.inc("bench_runs_total")
    obs.observe("bench_wall_s", min(wall), bench=bench.name)
    obs.observe("bench_cpu_s", min(cpu), bench=bench.name)
    return {
        "name": bench.name,
        "tier": bench.tier,
        "description": bench.description,
        "repeats": n_repeats,
        "warmup": n_warmup,
        "wall_s": stat_summary(wall),
        "cpu_s": stat_summary(cpu),
        "peak_mem_kb": round(peak / 1024.0, 3),
        "extra": extra,
    }


def run_benchmarks(registry: BenchmarkRegistry, filters=(), seed: int = 0,
                   repeats: int | None = None, warmup: int | None = None,
                   telemetry: Telemetry | None = None,
                   profile: bool = False, profile_top: int = 10,
                   progress: Callable[[str], None] | None = None) -> dict:
    """Run every selected benchmark; returns a schema-valid result document.

    ``filters`` are dotted-id prefixes (see
    :meth:`~repro.bench.registry.BenchmarkRegistry.select`); ``repeats`` /
    ``warmup`` override the per-benchmark defaults when given.
    ``progress`` (e.g. ``print``) is called with a one-line summary after
    each benchmark.
    """
    selected = registry.select(filters)
    if not selected:
        raise ValueError(
            f"no benchmarks match filters {list(filters)!r}; "
            f"known: {registry.names()}")
    entries: list[dict] = []
    for bench in selected:
        entry = run_benchmark(bench, seed=seed, repeats=repeats,
                              warmup=warmup, telemetry=telemetry,
                              profile=profile, profile_top=profile_top)
        entries.append(entry)
        if progress is not None:
            progress(f"{bench.name:<28s} wall {entry['wall_s']['min']:.6f}s "
                     f"cpu {entry['cpu_s']['min']:.6f}s "
                     f"peak {entry['peak_mem_kb']:.0f}kB")
    return build_result(entries, seed=seed)


def render_result(doc: dict) -> str:
    """ASCII table of a result document (mirrors ``repro.obs.report``)."""
    header = (f"{'benchmark':<28} {'tier':<6} {'wall min':>10} "
              f"{'wall mean':>10} {'cpu min':>10} {'peak kB':>9}")
    lines = ["bench results "
             f"(seed {doc.get('seed')}, {len(doc['benchmarks'])} benchmarks)",
             header, "-" * len(header)]
    for entry in doc["benchmarks"]:
        lines.append(
            f"{entry['name']:<28} {entry['tier']:<6} "
            f"{entry['wall_s']['min']:>10.6f} {entry['wall_s']['mean']:>10.6f} "
            f"{entry['cpu_s']['min']:>10.6f} {entry['peak_mem_kb']:>9.1f}")
        for spot in entry.get("extra", {}).get("hotspots", [])[:5]:
            lines.append(f"    {spot['cumtime_s']:>9.4f}s  {spot['func']}")
    return "\n".join(lines)
