"""Versioned JSON schema for performance-benchmark results.

A result document looks like::

    {
      "schema": "repro.bench/result",
      "schema_version": 1,
      "created_unix": 1754500000.0,
      "seed": 0,
      "repro_version": "1.0.0",
      "machine": {"platform": ..., "python": ..., "numpy": ...,
                  "cpu_count": ..., "arch": ...},
      "benchmarks": [
        {"name": "micro.mna.solve", "tier": "micro",
         "repeats": 5, "warmup": 1,
         "wall_s": {"values": [...], "min": ..., "mean": ...,
                    "median": ..., "std": ...},
         "cpu_s": {... same stats ...},
         "peak_mem_kb": 183.4,
         "extra": {}}
      ]
    }

:func:`validate_result` returns a list of human-readable problems (empty
means valid) so callers can distinguish "usage error" from "regression"
under the 0/1/2 exit-code convention.  Documents are written
deterministically (sorted keys) so diffs stay reviewable.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from typing import Any, Sequence

import numpy as np

SCHEMA_NAME = "repro.bench/result"
SCHEMA_VERSION = 1


def machine_fingerprint() -> dict[str, Any]:
    """Environment the numbers were taken on — compared, not gated, by the
    regression tooling (cross-machine timing diffs are advisory)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 0,
        "arch": platform.machine(),
    }


def stat_summary(values: Sequence[float]) -> dict[str, Any]:
    """Raw samples plus the summary statistics the comparator reads."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("stat_summary needs at least one sample")
    return {
        "values": [float(v) for v in arr],
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "std": float(arr.std()),
    }


def build_result(benchmarks: list[dict], seed: int,
                 created_unix: float | None = None) -> dict:
    """Assemble a schema-valid result document from benchmark entries."""
    from repro import __version__

    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "created_unix": (time.time() if created_unix is None
                         else float(created_unix)),
        "seed": int(seed),
        "repro_version": __version__,
        "machine": machine_fingerprint(),
        "benchmarks": benchmarks,
    }


_STAT_KEYS = ("values", "min", "mean", "median", "std")


def _check_stats(problems: list[str], where: str, stats: Any) -> None:
    if not isinstance(stats, dict):
        problems.append(f"{where}: expected a stats object, got "
                        f"{type(stats).__name__}")
        return
    for key in _STAT_KEYS:
        if key not in stats:
            problems.append(f"{where}: missing {key!r}")
    values = stats.get("values")
    if isinstance(values, list):
        if not values:
            problems.append(f"{where}: empty sample list")
        for v in values:
            if not isinstance(v, (int, float)) or v < 0:
                problems.append(f"{where}: bad sample {v!r}")
                break
    elif values is not None:
        problems.append(f"{where}: 'values' must be a list")


def validate_result(doc: Any) -> list[str]:
    """All schema problems in ``doc`` (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected an object"]
    if doc.get("schema") != SCHEMA_NAME:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}; this build "
            f"reads version {SCHEMA_VERSION}")
    if not isinstance(doc.get("machine"), dict):
        problems.append("missing machine fingerprint")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list):
        problems.append("'benchmarks' must be a list")
        return problems
    seen: set[str] = set()
    for i, entry in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
        elif name in seen:
            problems.append(f"{where}: duplicate name {name!r}")
        else:
            seen.add(name)
        _check_stats(problems, f"{where}.wall_s", entry.get("wall_s"))
        _check_stats(problems, f"{where}.cpu_s", entry.get("cpu_s"))
    return problems


def ensure_valid(doc: Any, source: str = "result") -> dict:
    """Return ``doc`` if schema-valid, else raise ``ValueError``."""
    problems = validate_result(doc)
    if problems:
        raise ValueError(f"invalid bench {source}: " + "; ".join(problems))
    return doc


def save_result(doc: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Validate and write ``doc`` as deterministic, indented JSON."""
    ensure_valid(doc)
    path = pathlib.Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_result(path: str | pathlib.Path) -> dict:
    """Load and validate a result document written by :func:`save_result`."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    return ensure_valid(doc, source=str(path))
