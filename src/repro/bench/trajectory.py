"""The ``BENCH_core.json`` trajectory file: bench history across PRs.

One repo-root JSON document accumulates a condensed entry per bench
session (created time, seed, machine platform, min wall seconds per
benchmark), newest last, capped at :data:`MAX_ENTRIES`.  Future perf PRs
gate against the previous entry with ``ma-opt bench compare`` and append
their own — the file *is* the repo's performance trajectory.
"""

from __future__ import annotations

import json
import pathlib

TRAJECTORY_SCHEMA = "repro.bench/trajectory"
TRAJECTORY_VERSION = 1
MAX_ENTRIES = 200


def condense(result: dict) -> dict:
    """One trajectory entry from a full result document."""
    return {
        "created_unix": result.get("created_unix"),
        "seed": result.get("seed"),
        "repro_version": result.get("repro_version"),
        "platform": result.get("machine", {}).get("platform"),
        "wall_min_s": {
            entry["name"]: entry["wall_s"]["min"]
            for entry in result.get("benchmarks", [])
        },
    }


def load_trajectory(path: str | pathlib.Path) -> dict:
    """Load a trajectory file, or a fresh empty document if absent."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA,
                "schema_version": TRAJECTORY_VERSION, "entries": []}
    doc = json.loads(path.read_text(encoding="utf-8"))
    if (doc.get("schema") != TRAJECTORY_SCHEMA
            or doc.get("schema_version") != TRAJECTORY_VERSION
            or not isinstance(doc.get("entries"), list)):
        raise ValueError(f"{path} is not a version-{TRAJECTORY_VERSION} "
                         "bench trajectory file")
    return doc


def append_entry(path: str | pathlib.Path, result: dict,
                 max_entries: int = MAX_ENTRIES) -> dict:
    """Append ``result`` (condensed) to the trajectory at ``path``.

    Creates the file if needed, truncates to the newest ``max_entries``,
    and returns the updated document.
    """
    path = pathlib.Path(path)
    doc = load_trajectory(path)
    doc["entries"].append(condense(result))
    doc["entries"] = doc["entries"][-max_entries:]
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return doc
