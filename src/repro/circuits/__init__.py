"""The paper's three benchmark circuits as sizing tasks.

Each task owns:

* the design space of Tables I / III / V (same parameter names, units,
  ranges and integer multipliers),
* a parametric netlist builder (Fig. 4's schematics realized on the
  :mod:`repro.spice` engine with generic 180 nm model cards),
* a measurement bench for every constraint in Eqs. 7-9,
* the paper's target metric (power / power / quiescent current).

All tasks accept a ``fidelity`` argument: ``"full"`` uses paper-grade
analysis resolution, ``"fast"`` coarsens AC grids and transient steps for
test/bench speed while preserving metric semantics.
"""

from repro.circuits.ldo import LDORegulator
from repro.circuits.ota import TwoStageOTA
from repro.circuits.tia import ThreeStageTIA

__all__ = ["TwoStageOTA", "ThreeStageTIA", "LDORegulator"]
