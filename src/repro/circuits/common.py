"""Shared infrastructure for the circuit sizing tasks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SizingTask

# Unit multipliers used by the parameter tables.
UM = 1e-6
KOHM = 1e3
FF = 1e-15


@dataclass(frozen=True)
class Fidelity:
    """Analysis-resolution knobs shared by all circuit benches.

    ``full`` matches what an HSpice bench would sweep; ``fast`` trades
    resolution for ~5x speed (used by tests and default bench runs).
    """

    ac_ppd: int            # AC points per decade
    noise_ppd: int         # noise-analysis points per decade
    tran_points: int       # transient output points per window

    @classmethod
    def of(cls, name: str) -> "Fidelity":
        presets = {
            "full": cls(ac_ppd=8, noise_ppd=6, tran_points=400),
            "fast": cls(ac_ppd=4, noise_ppd=3, tran_points=120),
        }
        try:
            return presets[name]
        except KeyError:
            raise ValueError(
                f"unknown fidelity {name!r}; options: {sorted(presets)}"
            ) from None


class CircuitTask(SizingTask):
    """Base class for circuit sizing tasks.

    Subclasses implement :meth:`measure`, returning a metric dict; any
    exception inside a measurement is confined to the metrics it produces
    (the caller substitutes decisive fail values), mirroring how a sizing
    flow treats non-convergent or meaningless SPICE measurements.

    ``corner`` selects the process corner every bench simulates at
    (``tt``/``ff``/``ss``/``fs``/``sf``); ``temp_c`` re-evaluates the model
    cards at that junction temperature.  The resulting model pair is exposed
    as :attr:`nmos`/:attr:`pmos` and passed to the netlist builders, making
    PVT-aware sizing a constructor argument away.
    """

    def __init__(self, fidelity: str = "fast", corner: str = "tt",
                 temp_c: float | None = None) -> None:
        from repro.spice.corners import corner_models

        self.fidelity_name = fidelity
        self.fid = Fidelity.of(fidelity)
        self.corner = corner
        self.temp_c = temp_c
        self.nmos, self.pmos = corner_models(corner)
        if temp_c is not None:
            self.nmos = self.nmos.at_temperature(temp_c)
            self.pmos = self.pmos.at_temperature(temp_c)

    def simulate(self, u: np.ndarray) -> dict[str, float]:
        params = self.space.denormalize(u)
        return self.measure(params)

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        raise NotImplementedError

    # -- static analysis -----------------------------------------------------
    def build_netlist(self, params: dict[str, float]):
        """The task's primary bench netlist for a parameter dict, or None.

        Subclasses override this with their netlist builder so static
        analyses (``ma-opt lint``, the pre-simulation ERC gate in
        :class:`~repro.core.parallel.SimulationExecutor`) can inspect the
        exact circuit a design would simulate — without running it.
        """
        return None

    def lint_design(self, u: np.ndarray):
        """Electrical-rule-check one normalized design's netlist.

        Returns :class:`~repro.analysis.diagnostics.Diagnostic` findings
        (empty = clean).  Tasks without a netlist builder lint clean; a
        builder that *raises* on these parameters is itself an
        error-severity finding, since simulation would fail the same way.
        """
        from repro.analysis.erc import ERC_RULES, run_erc

        params = self.space.denormalize(u)
        try:
            circuit = self.build_netlist(params)
        except Exception as exc:
            return [ERC_RULES.diag(
                "erc.parse-error",
                f"netlist builder failed for {self.name}: {exc}",
                location=self.name,
                fix="check the design-space bounds against the builder")]
        if circuit is None:
            return []
        return run_erc(circuit)

    # Small helper: run ``fn`` and return None on *any* simulator error so a
    # single failing measurement doesn't void the rest of the metric dict.
    @staticmethod
    def _try(fn):
        try:
            return fn()
        except Exception:
            return None
