"""3.3 V -> 1.8 V low-dropout regulator (paper Fig. 4c, Tables V & VI, Eq. 9).

Topology:

* error amplifier: five-transistor OTA from the input supply — NMOS pair
  M1a/M1b (W1, L1), PMOS mirror M3/M4 (W2, L2), NMOS tail M5 (W3, L3,
  m=N1);
* bias: a fixed internal 60 kOhm resistor into diode-connected MNB
  (W5, L5, m=N3) sets the reference current; the tail mirrors it with
  ratio (W3 N1 / L3) / (W5 N3 / L5);
* pass device: PMOS MP (W4, L4, m=N2) from VIN to VOUT, gate driven by the
  error amplifier;
* feedback divider R1 (VOUT->FB) / R2 (FB->gnd) against an ideal 0.9 V
  reference, so VOUT = 0.9 * (1 + R1/R2);
* compensation: capacitor C from the pass gate to VOUT (Miller), plus a
  fixed 100 pF on-chip load capacitor.

Feedback polarity: FB drives M1a (whose path through the mirror is
non-inverting to the amp output) so a rising VOUT raises the PMOS gate and
throttles the pass device.

Metrics (Eq. 9): minimize quiescent current at 50 mA load, s.t.
1.75 < VOUT < 1.85 V, load regulation < 0.1 mV/mA, line regulation
< 0.1 %/V, four load/line-step settling times < 35 us, PSRR > 60 dB.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.common import FF, KOHM, UM, CircuitTask
from repro.core.problem import Spec, Target
from repro.core.space import DesignSpace, Parameter
from repro.spice import (
    Circuit,
    NMOS_180,
    PMOS_180,
    ac_analysis,
    operating_point,
    transient_analysis,
)
from repro.spice import measure as M
from repro.spice.ac import logspace_frequencies
from repro.spice.waveforms import Pulse

VIN_NOM = 3.3
VREF = 0.9
VOUT_NOM = 1.8
I_LOAD_NOM = 50e-3
I_LOAD_LOW = 0.1e-6
I_LOAD_HIGH = 150e-3
C_LOAD = 20e-12        # on-die output capacitor (cap-less-LDO style)
R_BIAS = 60e3          # fixed internal bias resistor [Ohm]
PSRR_SPOT_HZ = 10.0    # low-frequency PSRR spot
SETTLE_TOL_V = 0.036   # +-2% of the 1.8 V output


def build_ldo(params: dict[str, float],
              vin: "float | object" = VIN_NOM,
              iload: "float | object" = I_LOAD_NOM,
              nmos=NMOS_180, pmos=PMOS_180) -> Circuit:
    """Construct the LDO netlist from a Table-V parameter dict.

    ``vin`` / ``iload`` accept plain values or waveforms (for the line/load
    transient benches).
    """
    l1, l2, l3, l4, l5 = (params[k] * UM for k in ("L1", "L2", "L3", "L4", "L5"))
    w1, w2, w3, w4, w5 = (params[k] * UM for k in ("W1", "W2", "W3", "W4", "W5"))
    r1 = params["R1"] * KOHM
    r2 = params["R2"] * KOHM
    c_comp = params["C"] * FF
    n1, n2, n3 = (int(params[k]) for k in ("N1", "N2", "N3"))

    ckt = Circuit("ldo-regulator")
    ckt.add_vsource("Vin", "vin", "0", vin)
    ckt.add_vsource("Vref", "vref", "0", VREF)
    # Bias chain (N3 scales the mirror ratio via the diode multiplier).
    ckt.add_resistor("Rb", "vin", "nb", R_BIAS)
    ckt.add_mosfet("MNB", "nb", "nb", "0", "0", nmos, w=w5, l=l5, m=n3)
    # Error amplifier.
    ckt.add_mosfet("M5", "tail", "nb", "0", "0", nmos, w=w3, l=l3, m=n1)
    ckt.add_mosfet("M1a", "d1", "fb", "tail", "0", nmos, w=w1, l=l1)
    ckt.add_mosfet("M1b", "vg", "vref", "tail", "0", nmos, w=w1, l=l1)
    ckt.add_mosfet("M3", "d1", "d1", "vin", "vin", pmos, w=w2, l=l2)
    ckt.add_mosfet("M4", "vg", "d1", "vin", "vin", pmos, w=w2, l=l2)
    # Pass device and compensation.
    ckt.add_mosfet("MP", "vout", "vg", "vin", "vin", pmos, w=w4, l=l4, m=n2)
    ckt.add_capacitor("Cc", "vg", "vout", c_comp)
    # Feedback divider and load.
    ckt.add_resistor("R1", "vout", "fb", r1)
    ckt.add_resistor("R2", "fb", "0", r2)
    ckt.add_capacitor("CL", "vout", "0", C_LOAD)
    ckt.add_isource("Iload", "vout", "0", iload)
    return ckt


class LDORegulator(CircuitTask):
    """Sizing task for the LDO regulator (16 parameters, 9 constraints)."""

    def __init__(self, fidelity: str = "fast", corner: str = "tt",
                 temp_c: float | None = None) -> None:
        super().__init__(fidelity, corner=corner, temp_c=temp_c)
        self.name = "ldo"
        self.space = DesignSpace([
            *(Parameter(f"L{i}", 0.32, 3.0, unit="um") for i in range(1, 6)),
            *(Parameter(f"W{i}", 0.22, 200.0, unit="um") for i in range(1, 6)),
            Parameter("R1", 1.0, 100.0, unit="kOhm"),
            Parameter("R2", 1.0, 100.0, unit="kOhm"),
            Parameter("C", 100.0, 2000.0, unit="fF"),
            *(Parameter(f"N{i}", 1, 20, integer=True) for i in range(1, 4)),
        ])
        self.target = Target("qc", weight=1.0, fail_value=50e-3, unit="A",
                             log_scale=True, log_floor=1e-7)
        t_kw = dict(fail_value=1e-3, unit="s", log_scale=True,
                    log_floor=1e-8)
        self.specs = [
            Spec("vout", ">", 1.75, fail_value=0.0, unit="V"),
            Spec("vout_hi", "<", 1.85, fail_value=5.0, unit="V"),
            # 0.1 mV/mA == 0.1 V/A (i.e. 0.1 Ohm closed-loop output resistance)
            Spec("load_reg", "<", 0.1, fail_value=100.0, unit="V/A",
                 log_scale=True, log_floor=1e-5),
            Spec("line_reg", "<", 0.1, fail_value=100.0, unit="%/V",
                 log_scale=True, log_floor=1e-5),
            Spec("t_load_up", "<", 35e-6, **t_kw),
            Spec("t_load_dn", "<", 35e-6, **t_kw),
            Spec("t_line_up", "<", 35e-6, **t_kw),
            Spec("t_line_dn", "<", 35e-6, **t_kw),
            Spec("psrr", ">", 60.0, fail_value=0.0, unit="dB"),
        ]

    def _build(self, params: dict[str, float], **kwargs) -> Circuit:
        return build_ldo(params, nmos=self.nmos, pmos=self.pmos, **kwargs)

    def build_netlist(self, params: dict[str, float]) -> Circuit:
        """Nominal-load bench netlist (the static-analysis view)."""
        return self._build(params)

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        metrics: dict[str, float | None] = {}
        ckt = self._build(params)
        try:
            op = operating_point(ckt)
        except Exception:
            return {}
        vout = op.v("vout")
        metrics["vout"] = vout
        metrics["vout_hi"] = vout
        # Quiescent current: everything the supply delivers beyond the load.
        i_in = abs(op.branch_current("Vin"))
        metrics["qc"] = max(i_in - I_LOAD_NOM, 0.0)

        # Regulation from warm-started DC solves.
        metrics["load_reg"] = self._try(lambda: self._load_reg(params, op.x))
        metrics["line_reg"] = self._try(lambda: self._line_reg(params, op.x))

        # PSRR at the 1 kHz spot.
        def _psrr() -> float:
            ckt["Vin"].ac = 1.0
            freqs = logspace_frequencies(PSRR_SPOT_HZ, 100.0, 2)
            h = ac_analysis(ckt, freqs, op).v("vout")
            return float(-M.db(h[0]))

        metrics["psrr"] = self._try(_psrr)

        # Only bother with the expensive transients when regulation is sane
        # (a railed LDO never settles; the fail values say so for free).
        if 1.0 < vout < 2.5:
            up, dn = self._try(lambda: self._load_transient(params, op.x)) \
                or (None, None)
            metrics["t_load_up"], metrics["t_load_dn"] = up, dn
            up, dn = self._try(lambda: self._line_transient(params, op.x)) \
                or (None, None)
            metrics["t_line_up"], metrics["t_line_dn"] = up, dn
        return {k: v for k, v in metrics.items() if v is not None}

    # -- DC benches -----------------------------------------------------------
    def _load_reg(self, params: dict[str, float], x_warm: np.ndarray) -> float:
        v = {}
        for tag, iload in (("lo", I_LOAD_LOW), ("hi", I_LOAD_HIGH)):
            ckt = self._build(params, iload=iload)
            v[tag] = operating_point(ckt, x0=x_warm).v("vout")
        return abs(v["lo"] - v["hi"]) / (I_LOAD_HIGH - I_LOAD_LOW)

    def _line_reg(self, params: dict[str, float], x_warm: np.ndarray) -> float:
        v = {}
        for tag, vin in (("lo", 3.0), ("hi", 3.6)):
            ckt = self._build(params, vin=vin)
            v[tag] = operating_point(ckt, x0=x_warm).v("vout")
        return 100.0 * abs(v["hi"] - v["lo"]) / VOUT_NOM / 0.6

    # -- transient benches -------------------------------------------------------
    def _two_edge_settling(self, ckt: Circuit, window: float, t_up: float,
                           t_dn: float) -> tuple[float | None, float | None]:
        """Settling time after each of the two stimulus edges.

        The first segment ends shortly *before* the second edge begins so
        its reference value is not polluted by the second edge's kick.
        """
        dt = window / self.fid.tran_points
        tran = transient_analysis(ckt, window, dt)
        t, v = tran.times, tran.v("vout")
        guard = 1.0e-6

        def _settle(edge: float, end: float) -> float | None:
            seg = (t >= edge) & (t <= end)
            ts, vs = t[seg], v[seg]
            if ts.size < 4:
                return None
            final = float(vs[-1])
            if abs(final - VOUT_NOM) > 0.1:
                return None  # did not return to regulation
            outside = np.abs(vs - final) > SETTLE_TOL_V
            if not np.any(outside):
                return 0.0
            last = int(np.nonzero(outside)[0][-1])
            if last + 1 >= ts.size:
                return None
            return float(ts[last + 1] - edge)

        return (_settle(t_up, t_dn - guard - 0.5e-6),
                _settle(t_dn, float(t[-1])))

    def _load_transient(self, params: dict[str, float],
                        x_warm: np.ndarray) -> tuple[float | None, float | None]:
        del x_warm  # the bench starts from its own DC point
        window = 100e-6
        wave = Pulse(I_LOAD_LOW, I_LOAD_HIGH, td=5e-6, tr=0.5e-6, tf=0.5e-6,
                     pw=45e-6)
        ckt = self._build(params, iload=wave)
        return self._two_edge_settling(ckt, window, t_up=5.5e-6, t_dn=51e-6)

    def _line_transient(self, params: dict[str, float],
                        x_warm: np.ndarray) -> tuple[float | None, float | None]:
        del x_warm
        window = 100e-6
        wave = Pulse(VIN_NOM, 2.0, td=5e-6, tr=0.5e-6, tf=0.5e-6, pw=45e-6)
        ckt = self._build(params, vin=wave)
        # Falling VIN edge first (3.3 -> 2.0), rising second (2.0 -> 3.3).
        dn, up = self._two_edge_settling(ckt, window, t_up=5.5e-6, t_dn=51e-6)
        return up, dn
