"""Two-stage Miller-compensated OTA (paper Fig. 4a, Tables I & II, Eq. 7).

Topology (generic two-stage OTA, NMOS input pair):

* first stage: NMOS differential pair M1a/M1b (W1, L1) with PMOS
  current-mirror load M3/M4 (W2, L2) and NMOS tail M5 (W3, L3, m=N1);
* bias: resistor R from VDD into diode-connected NMOS MB (W3, L3), whose
  gate node biases M5 and the second-stage sink;
* second stage: PMOS common-source driver M6 (W4, L4, m=N2) with NMOS
  current sink M7 (W5, L5, m=N3);
* compensation: Miller capacitor Cf from the first-stage output to the
  output; C is the load capacitor at the output.

Signal polarity: the non-inverting input is M1b's gate (``inn`` node here),
the inverting input is M1a's gate, so the unity-gain bench ties the output
back to M1a's gate.

Metrics (Eq. 7): minimize power s.t. DC gain > 60 dB, CMRR > 80 dB,
PSRR > 80 dB, PM > 60 deg, settling < 100 ns, UGF > 30 MHz,
output swing > 1.5 V, integrated output noise < 30 mVrms.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.common import FF, KOHM, UM, CircuitTask
from repro.core.problem import Spec, Target
from repro.core.space import DesignSpace, Parameter
from repro.spice import (
    Circuit,
    NMOS_180,
    PMOS_180,
    ac_analysis,
    noise_analysis,
    operating_point,
    transient_analysis,
)
from repro.spice import measure as M
from repro.spice.ac import logspace_frequencies
from repro.spice.waveforms import Pulse

VDD = 1.8
VCM = 0.9
STEP = 0.2           # settling-bench input step [V]
NOISE_BAND = (10.0, 1e7)   # integration band for output noise [Hz]


def build_ota(params: dict[str, float], closed_loop: bool = False,
              step_input: bool = False,
              nmos=NMOS_180, pmos=PMOS_180) -> Circuit:
    """Construct the OTA netlist from a Table-I parameter dict.

    ``closed_loop`` ties the output to the inverting input (unity-gain
    buffer); ``step_input`` replaces the non-inverting input's DC source
    with the settling-bench step.  ``nmos``/``pmos`` select the model cards
    (process corners).
    """
    l1, l2, l3, l4, l5 = (params[k] * UM for k in ("L1", "L2", "L3", "L4", "L5"))
    w1, w2, w3, w4, w5 = (params[k] * UM for k in ("W1", "W2", "W3", "W4", "W5"))
    r_bias = params["R"] * KOHM
    c_load = params["C"] * FF
    c_miller = params["Cf"] * FF
    n1, n2, n3 = (int(params[k]) for k in ("N1", "N2", "N3"))

    ckt = Circuit("two-stage-ota")
    ckt.add_vsource("Vdd", "vdd", "0", VDD)
    if step_input:
        wave = Pulse(VCM, VCM + STEP, td=20e-9, tr=1e-9, tf=1e-9, pw=1.0)
        ckt.add_vsource("Vp", "inn", "0", wave)
    else:
        ckt.add_vsource("Vp", "inn", "0", VCM)          # non-inverting input
    if closed_loop:
        ckt.add_resistor("Rfb", "out", "inp", 1.0)      # direct feedback
    else:
        ckt.add_vsource("Vn", "inp", "0", VCM)          # inverting input
    # Bias chain.
    ckt.add_resistor("Rb", "vdd", "nb", r_bias)
    ckt.add_mosfet("MB", "nb", "nb", "0", "0", nmos, w=w3, l=l3)
    # First stage.
    ckt.add_mosfet("M5", "tail", "nb", "0", "0", nmos, w=w3, l=l3, m=n1)
    ckt.add_mosfet("M1a", "d1", "inp", "tail", "0", nmos, w=w1, l=l1)
    ckt.add_mosfet("M1b", "out1", "inn", "tail", "0", nmos, w=w1, l=l1)
    ckt.add_mosfet("M3", "d1", "d1", "vdd", "vdd", pmos, w=w2, l=l2)
    ckt.add_mosfet("M4", "out1", "d1", "vdd", "vdd", pmos, w=w2, l=l2)
    # Second stage.
    ckt.add_mosfet("M6", "out", "out1", "vdd", "vdd", pmos, w=w4, l=l4, m=n2)
    ckt.add_mosfet("M7", "out", "nb", "0", "0", nmos, w=w5, l=l5, m=n3)
    # Compensation and load.
    ckt.add_capacitor("Cf", "out1", "out", c_miller)
    ckt.add_capacitor("CL", "out", "0", c_load)
    return ckt


class TwoStageOTA(CircuitTask):
    """Sizing task for the two-stage OTA (16 parameters, 8 constraints)."""

    def __init__(self, fidelity: str = "fast", corner: str = "tt",
                 temp_c: float | None = None) -> None:
        super().__init__(fidelity, corner=corner, temp_c=temp_c)
        self.name = "ota"
        self.space = DesignSpace([
            *(Parameter(f"L{i}", 0.18, 2.0, unit="um") for i in range(1, 6)),
            *(Parameter(f"W{i}", 0.22, 150.0, unit="um") for i in range(1, 6)),
            Parameter("R", 0.1, 100.0, unit="kOhm"),
            Parameter("C", 100.0, 2000.0, unit="fF"),
            Parameter("Cf", 100.0, 10000.0, unit="fF"),
            *(Parameter(f"N{i}", 1, 20, integer=True) for i in range(1, 4)),
        ])
        self.target = Target("power", weight=1.0, fail_value=VDD * 0.1,
                             unit="W", log_scale=True, log_floor=1e-7)
        self.specs = [
            Spec("dc_gain", ">", 60.0, fail_value=0.0, unit="dB"),
            Spec("cmrr", ">", 80.0, fail_value=0.0, unit="dB"),
            Spec("psrr", ">", 80.0, fail_value=0.0, unit="dB"),
            Spec("pm", ">", 60.0, fail_value=0.0, unit="deg"),
            Spec("settling", "<", 100e-9, fail_value=1e-6, unit="s",
                 log_scale=True, log_floor=1e-10),
            Spec("ugf", ">", 30e6, fail_value=1e3, unit="Hz",
                 log_scale=True, log_floor=1e3),
            Spec("swing", ">", 1.5, fail_value=0.0, unit="V"),
            Spec("noise", "<", 30e-3, fail_value=1.0, unit="Vrms",
                 log_scale=True, log_floor=1e-6),
        ]

    def build_netlist(self, params: dict[str, float]) -> Circuit:
        """Open-loop bench netlist (the static-analysis view of a design)."""
        return build_ota(params, nmos=self.nmos, pmos=self.pmos)

    # -- measurements ---------------------------------------------------------
    def measure(self, params: dict[str, float]) -> dict[str, float]:
        metrics: dict[str, float | None] = {}
        fid = self.fid

        # Open-loop bench: OP, differential / common-mode / supply AC, noise.
        ckt = build_ota(params, nmos=self.nmos, pmos=self.pmos)
        try:
            op = operating_point(ckt)
        except Exception:
            return {}
        metrics["power"] = VDD * abs(op.branch_current("Vdd"))

        freqs = logspace_frequencies(10.0, 3e9, fid.ac_ppd)

        def _ac_with(vp_ac: float, vn_ac: float, vdd_ac: float) -> np.ndarray:
            ckt["Vp"].ac = vp_ac
            ckt["Vn"].ac = vn_ac
            ckt["Vdd"].ac = vdd_ac
            return ac_analysis(ckt, freqs, op).v("out")

        h_dm = self._try(lambda: _ac_with(0.5, -0.5, 0.0))
        if h_dm is not None:
            metrics["dc_gain"] = float(M.db(h_dm[0]))
            ugf = M.unity_gain_frequency(freqs, h_dm)
            metrics["ugf"] = ugf
            metrics["pm"] = M.phase_margin(freqs, h_dm) if ugf else None
            h_cm = self._try(lambda: _ac_with(1.0, 1.0, 0.0))
            if h_cm is not None:
                metrics["cmrr"] = float(M.db(h_dm[0]) - M.db(h_cm[0]))
            h_ps = self._try(lambda: _ac_with(0.0, 0.0, 1.0))
            if h_ps is not None:
                metrics["psrr"] = float(M.db(h_dm[0]) - M.db(h_ps[0]))

        # Closed-loop bench: output swing at the centered OP, settling, and
        # the output noise of the unity-gain configuration (measuring noise
        # open-loop would just report the amplified equivalent input noise).
        buf = build_ota(params, closed_loop=True, nmos=self.nmos,
                        pmos=self.pmos)
        op_buf = self._try(lambda: operating_point(buf))
        if op_buf is not None:
            vov6 = max(op_buf.element_info("M6")["vov"], 0.1)
            vov7 = max(op_buf.element_info("M7")["vov"], 0.1)
            metrics["swing"] = VDD - vov6 - vov7
            metrics["settling"] = self._try(
                lambda: self._settling(params, op_buf.x)
            )

            def _noise() -> float:
                buf["Vp"].ac = 1.0
                buf["Vdd"].ac = 0.0
                nfreqs = logspace_frequencies(*NOISE_BAND, fid.noise_ppd)
                nz = noise_analysis(buf, "out", nfreqs, input_source="Vp",
                                    x_op=op_buf)
                return nz.integrated_output_noise()

            metrics["noise"] = self._try(_noise)
        return {k: v for k, v in metrics.items() if v is not None}

    def _settling(self, params: dict[str, float], x_buf: np.ndarray) -> float | None:
        """1 %% settling time of the unity-gain buffer to a 0.2 V step."""
        window = 400e-9
        step_ckt = build_ota(params, closed_loop=True, step_input=True,
                             nmos=self.nmos, pmos=self.pmos)
        dt = window / self.fid.tran_points
        tran = transient_analysis(step_ckt, window, dt, x0=x_buf)
        vout = tran.v("out")
        t_edge = 21e-9
        if abs(vout[-1] - (VCM + STEP)) > 0.1 * STEP:
            return None  # output railed / grossly off target
        # Settle to the buffer's own final value (static gain error is
        # policed by the dc_gain spec, not here).
        return M.settling_time(tran.times, vout, final_value=None,
                               tol=0.01, t_start=t_edge)
