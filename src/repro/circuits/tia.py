"""Three-stage transimpedance amplifier (paper Fig. 4b, Tables III & IV, Eq. 8).

Topology: three cascaded NMOS common-source stages with PMOS current-source
loads, enclosed by a resistive feedback R (with parallel compensation Cf)
from output to input — the classic shunt-shunt feedback TIA.  The odd
number of inverting stages makes the loop negative.

* stage i (i = 1..3): NMOS driver Mi (Wi, Li) and PMOS load MPi
  (W4, L4, m=Ni) biased from a shared gate rail;
* bias rail: series diode pair MPB (W4, L4) / MNB (W5, L5) across the
  supply sets the PMOS gate voltage;
* input: photodiode modeled as AC current source with 200 fF junction
  capacitance;
* a 0 V source Vinj sits between the output and the feedback resistor; its
  AC excitation measures the loop gain by single voltage injection
  (Rosenstark approximation, valid here because the amplifier output
  impedance is much smaller than the feedback impedance).

Metrics (Eq. 8): minimize power s.t. DC gain > 80 dB, unity-gain frequency
> 1 GHz, input-referred current noise at 1 MHz below 10 pA/sqrt(Hz).

"DC gain" is read as the amplifier's open-loop *voltage* gain (the paper
writes plain dB, exactly as for the OTA).  At DC the feedback network loads
the gate-input amplifier negligibly, so the low-frequency loop gain from
the injection measurement equals that voltage gain; both the gain and the
unity-gain frequency therefore come from the same loop transfer function.
The closed-loop transimpedance is reported as the auxiliary ``zt_ohm``
metric.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.common import FF, KOHM, UM, CircuitTask
from repro.core.problem import Spec, Target
from repro.core.space import DesignSpace, Parameter
from repro.spice import (
    Circuit,
    NMOS_180,
    PMOS_180,
    ac_analysis,
    noise_analysis,
    operating_point,
)
from repro.spice import measure as M
from repro.spice.ac import logspace_frequencies

VDD = 1.8
C_PHOTODIODE = 2e-12     # photodiode junction capacitance
C_OUT = 200e-15          # next-stage load at the TIA output
NOISE_SPOT_HZ = 1e5      # flicker-sensitive spot frequency


def build_tia(params: dict[str, float],
              nmos=NMOS_180, pmos=PMOS_180) -> Circuit:
    """Construct the TIA netlist from a Table-III parameter dict.

    ``nmos``/``pmos`` select the model cards (process corners).
    """
    l1, l2, l3, l4, l5 = (params[k] * UM for k in ("L1", "L2", "L3", "L4", "L5"))
    w1, w2, w3, w4, w5 = (params[k] * UM for k in ("W1", "W2", "W3", "W4", "W5"))
    r_fb = params["R"] * KOHM
    c_fb = params["Cf"] * FF
    n1, n2, n3 = (int(params[k]) for k in ("N1", "N2", "N3"))

    ckt = Circuit("three-stage-tia")
    ckt.add_vsource("Vdd", "vdd", "0", VDD)
    # Input photodiode: AC test current + junction capacitance.
    ckt.add_isource("Iin", "0", "in", 0.0)
    ckt.add_capacitor("Cpd", "in", "0", C_PHOTODIODE)
    # Bias rail for the PMOS loads.
    ckt.add_mosfet("MPB", "pb", "pb", "vdd", "vdd", pmos, w=w4, l=l4)
    ckt.add_mosfet("MNB", "pb", "pb", "0", "0", nmos, w=w5, l=l5)
    # Gain stages.
    ckt.add_mosfet("M1", "n1", "in", "0", "0", nmos, w=w1, l=l1)
    ckt.add_mosfet("MP1", "n1", "pb", "vdd", "vdd", pmos, w=w4, l=l4, m=n1)
    ckt.add_mosfet("M2", "n2", "n1", "0", "0", nmos, w=w2, l=l2)
    ckt.add_mosfet("MP2", "n2", "pb", "vdd", "vdd", pmos, w=w4, l=l4, m=n2)
    ckt.add_mosfet("M3", "out", "n2", "0", "0", nmos, w=w3, l=l3)
    ckt.add_mosfet("MP3", "out", "pb", "vdd", "vdd", pmos, w=w4, l=l4, m=n3)
    ckt.add_capacitor("Cout", "out", "0", C_OUT)
    # Feedback network with a loop-gain injection point at the amp output.
    ckt.add_vsource("Vinj", "out", "fbr", 0.0)
    ckt.add_resistor("Rfb", "fbr", "in", r_fb)
    ckt.add_capacitor("Cfb", "fbr", "in", c_fb)
    return ckt


class ThreeStageTIA(CircuitTask):
    """Sizing task for the three-stage TIA (15 parameters, 3 constraints)."""

    def __init__(self, fidelity: str = "fast", corner: str = "tt",
                 temp_c: float | None = None) -> None:
        super().__init__(fidelity, corner=corner, temp_c=temp_c)
        self.name = "tia"
        self.space = DesignSpace([
            *(Parameter(f"L{i}", 0.18, 2.0, unit="um") for i in range(1, 6)),
            *(Parameter(f"W{i}", 0.22, 150.0, unit="um") for i in range(1, 6)),
            Parameter("R", 0.1, 100.0, unit="kOhm"),
            Parameter("Cf", 100.0, 2000.0, unit="fF"),
            *(Parameter(f"N{i}", 1, 20, integer=True) for i in range(1, 4)),
        ])
        self.target = Target("power", weight=1.0, fail_value=VDD * 0.1,
                             unit="W", log_scale=True, log_floor=1e-7)
        self.specs = [
            Spec("dc_gain", ">", 80.0, fail_value=0.0, unit="dB"),
            Spec("ugf", ">", 1e9, fail_value=1e6, unit="Hz",
                 log_scale=True, log_floor=1e5),
            Spec("in_noise", "<", 10e-12, fail_value=1e-9,
                 unit="A/sqrt(Hz) @1MHz", log_scale=True, log_floor=1e-14),
        ]

    def build_netlist(self, params: dict[str, float]):
        """Transimpedance bench netlist (the static-analysis view)."""
        return build_tia(params, nmos=self.nmos, pmos=self.pmos)

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        metrics: dict[str, float | None] = {}
        fid = self.fid
        ckt = build_tia(params, nmos=self.nmos, pmos=self.pmos)
        try:
            op = operating_point(ckt)
        except Exception:
            return {}
        metrics["power"] = VDD * abs(op.branch_current("Vdd"))

        freqs = logspace_frequencies(1e3, 3e10, fid.ac_ppd)

        # Closed-loop transimpedance: drive the photodiode current.
        def _zt() -> np.ndarray:
            ckt["Iin"].ac = 1.0
            ckt["Vinj"].ac = 0.0
            return ac_analysis(ckt, freqs, op).v("out")

        zt = self._try(_zt)
        if zt is not None:
            metrics["zt_ohm"] = float(np.abs(zt[0]))

        # Loop gain by voltage injection at the amplifier output.
        def _loop() -> np.ndarray:
            ckt["Iin"].ac = 0.0
            ckt["Vinj"].ac = 1.0
            ac = ac_analysis(ckt, freqs, op)
            v_fwd = ac.v("fbr")
            v_ret = ac.v("out")
            safe = np.where(np.abs(v_fwd) < 1e-18, 1e-18, v_fwd)
            return -v_ret / safe

        loop = self._try(_loop)
        if loop is not None:
            metrics["dc_gain"] = float(M.db(loop[0]))
            metrics["ugf"] = M.unity_gain_frequency(freqs, loop)
            metrics["loop_pm"] = M.phase_margin(freqs, loop)

        # Input-referred current noise at the 1 MHz spot.
        def _noise() -> float:
            ckt["Iin"].ac = 1.0
            ckt["Vinj"].ac = 0.0
            nfreqs = logspace_frequencies(1e5, 1e7, max(fid.noise_ppd, 3))
            nz = noise_analysis(ckt, "out", nfreqs, input_source="Iin", x_op=op)
            spot = np.interp(np.log10(NOISE_SPOT_HZ), np.log10(nz.freqs),
                             nz.input_referred_psd)
            return float(np.sqrt(spot))

        metrics["in_noise"] = self._try(_noise)
        return {k: v for k, v in metrics.items() if v is not None}
