"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``describe <task>``   print the task's target, constraints and Table of
                      parameter ranges.
``optimize <task>``   run one optimizer (default MA-Opt) on the task and
                      report the best design.
``compare <task>``    run the paper's multi-method comparison and print the
                      Table II/IV/VI-style summary plus the Fig. 5 panel.
``netlist <task>``    print the netlist of a design (mid-space by default).
``lint <targets>``    static analysis: ERC over task netlists or deck
                      files, ``--config`` cross-validation, ``--code``
                      AST lint, ``--locks`` lockset/guarded-by checks,
                      ``--taint`` service-boundary taint tracking,
                      ``--proto`` protocol/state-machine conformance
                      (``--all`` for everything).  Exit 1 on
                      error-severity findings.
``sanitize <cmd>``    run any other command under the runtime race
                      sanitizer (telemetry channels watched, schedule
                      torture on).  Exit 1 when races are observed.
``bench <cmd>``       performance benchmarking: ``run`` the micro/macro
                      suites, ``compare`` two result files (exit 1 on
                      regression), ``list`` the registry.
``runs <cmd>``        query the durable run store (``--store`` on
                      optimize/compare): ``list``, ``show``, ``diff``,
                      ``export`` (json/prom/sarif).
``tail <run>``        follow a live run's event/metric stream (poll +
                      offset resume; works on finished runs with
                      ``--once``).
``serve``             run the optimization job service: async job
                      queue with priority lanes and per-tenant caps on
                      a local socket; ``--resume`` continues a killed
                      server's unfinished jobs from checkpoints.
``submit <task>``     submit a job to a running server (``--wait`` to
                      block until it finishes).
``jobs <cmd>``        query the server: ``list``, ``status``,
                      ``result``, ``cancel``, ``tail`` (follows the
                      job's run directory live).

Tasks: ``ota``, ``tia``, ``ldo``, ``sphere`` (cheap synthetic).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.experiments.config import TUNED_MAOPT as _MAOPT_TUNED


def _make_task(name: str, fidelity: str, corner: str = "tt"):
    from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA
    from repro.core.synthetic import ConstrainedSphere

    factories = {
        "ota": lambda: TwoStageOTA(fidelity=fidelity, corner=corner),
        "tia": lambda: ThreeStageTIA(fidelity=fidelity, corner=corner),
        "ldo": lambda: LDORegulator(fidelity=fidelity, corner=corner),
        "sphere": lambda: ConstrainedSphere(d=12, seed=3),
    }
    try:
        return factories[name]()
    except KeyError:
        raise SystemExit(
            f"unknown task {name!r}; options: {sorted(factories)}"
        ) from None



def cmd_describe(args: argparse.Namespace) -> int:
    from repro.experiments import parameter_table

    task = _make_task(args.task, args.fidelity, args.corner)
    print(task.describe())
    print()
    print(parameter_table(task))
    return 0


def _build_telemetry(args: argparse.Namespace):
    """Telemetry bundle for the CLI's --log-level/--trace-out/--metrics-out/
    --events-out flags; returns None when no flag is set (no-op fast path)."""
    from repro.obs import (MetricsRegistry, RunLogger, Telemetry, Tracer,
                           configure_logging)

    wants = (args.log_level or args.trace_out or args.metrics_out
             or args.events_out)
    if not wants:
        return None
    # Fail before the run, not after: --trace-out/--metrics-out only write
    # at export time, so a bad path would otherwise waste the whole run.
    for path in (args.trace_out, args.metrics_out, args.events_out):
        if path:
            try:
                open(path, "a", encoding="utf-8").close()
            except OSError as exc:
                raise SystemExit(f"repro: error: cannot write {path}: "
                                 f"{exc.strerror or exc}")
    logger = None
    if args.log_level:
        logger = configure_logging(args.log_level)
    run_logger = None
    if args.events_out or logger is not None:
        run_logger = RunLogger(path=args.events_out, logger=logger)
    telemetry = Telemetry(
        tracer=Tracer() if args.trace_out else None,
        metrics=MetricsRegistry() if args.metrics_out else None,
        run_logger=run_logger,
    )
    from repro.analysis import dynrace

    # No-op unless 'ma-opt sanitize' activated a sanitizer upstream.
    return dynrace.instrument_telemetry(telemetry)


def _finish_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Export the sinks selected on the command line.

    ``telemetry`` may be the bundle built by :func:`_build_telemetry` or a
    run-store recorder's bundle (which always carries every channel), so
    each export is gated on its flag actually being set.
    """
    if telemetry is None:
        return
    if telemetry.tracer is not None and args.trace_out:
        n = telemetry.tracer.export_jsonl(args.trace_out)
        print(f"wrote {n} spans to {args.trace_out}")
        from repro.obs.report import report_from_tracer

        print(report_from_tracer(telemetry.tracer))
    if telemetry.metrics is not None and args.metrics_out:
        telemetry.metrics.export(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if telemetry.run_logger is not None:
        telemetry.run_logger.close()
        if args.events_out:
            # Store-backed loggers stream into the run directory; the
            # in-memory dump covers --events-out for both shapes.
            telemetry.run_logger.export_jsonl(args.events_out)
            print(f"wrote {len(telemetry.run_logger)} events "
                  f"to {args.events_out}")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--log-level", default=None,
                   choices=("debug", "info", "warning", "error"),
                   help="mirror run events to stdlib logging at this level")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write the span trace as JSONL and print a "
                        "per-phase wall-time breakdown")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="export metrics (.csv -> CSV, else JSON)")
    p.add_argument("--events-out", metavar="PATH", default=None,
                   help="write one JSONL run event per evaluation/round")


_MA_METHODS = ("DNN-Opt", "MA-Opt1", "MA-Opt2", "MA-Opt")


def _build_resilience(args: argparse.Namespace):
    """ResilienceConfig from the --max-retries/--sim-timeout/--checkpoint*
    flags; None when none of them is set (legacy fail-fast behaviour)."""
    if not (args.max_retries or args.sim_timeout is not None
            or args.checkpoint or args.checkpoint_every):
        return None
    from repro.core.config import ResilienceConfig

    return ResilienceConfig(
        max_retries=args.max_retries,
        sim_timeout_s=args.sim_timeout,
        checkpoint_every=args.checkpoint_every or 0,
        checkpoint_path=args.checkpoint,
    )


def _wrap_faults(task, args: argparse.Namespace):
    """Wrap the task in a seeded FaultyTask when --inject-faults is set."""
    if not args.inject_faults:
        return task
    from repro.resilience import FaultyTask

    rate = args.inject_faults
    if not 0.0 < rate <= 1.0:
        raise SystemExit("repro: error: --inject-faults must be in (0, 1]")
    return FaultyTask(task, error_rate=rate / 2, nan_rate=rate / 2,
                      seed=args.seed)


def cmd_optimize(args: argparse.Namespace) -> int:
    from repro.experiments import make_initial_set, run_method

    task = _wrap_faults(_make_task(args.task, args.fidelity, args.corner),
                        args)
    resilience = _build_resilience(args)
    telemetry = _build_telemetry(args)
    recorder = None
    if args.store:
        from repro.obs.store import RunStore

        recorder = RunStore(args.store).create_run(
            method=args.method, task=task.name, base=telemetry,
            meta={"seed": args.seed, "n_sims": args.sims,
                  "n_init": args.init})
        from repro.analysis import dynrace

        telemetry = dynrace.instrument_telemetry(recorder.telemetry)
        print(f"run {recorder.run_id} recording to "
              f"{args.store}/{recorder.run_id} "
              f"(follow with: ma-opt tail {recorder.run_id})")
    overrides = dict(_MAOPT_TUNED)
    if resilience is not None:
        overrides["resilience"] = resilience
    if args.parallel:
        overrides["parallel"] = True
    if args.heartbeat:
        overrides["heartbeat_s"] = args.heartbeat
    try:
        if args.resume:
            if args.method not in _MA_METHODS:
                raise SystemExit(
                    f"repro: error: --resume supports the MA-Opt family "
                    f"({', '.join(_MA_METHODS)}), not {args.method!r}")
            from repro.core.ma_opt import MAOptimizer

            opt = MAOptimizer.restore(args.resume, task, telemetry=telemetry)
            print(f"{args.method} on {task.name!r}: resumed from "
                  f"{args.resume} at {len(opt.records)} sims, "
                  f"running to {args.sims}")
            res = opt.run(n_sims=args.sims, method_name=args.method,
                          checkpoint_path=args.checkpoint,
                          checkpoint_every=args.checkpoint_every)
        else:
            print(f"{args.method} on {task.name!r}: "
                  f"{args.init} init + {args.sims} sims (seed {args.seed})")
            x, f = make_initial_set(task, args.init, seed=args.seed,
                                    telemetry=telemetry,
                                    resilience=resilience)
            res = run_method(args.method, task, args.sims, x, f,
                             seed=args.seed, maopt_overrides=overrides,
                             telemetry=telemetry)
    except Exception as exc:
        if recorder is not None:
            recorder.mark_failed(repr(exc))
        raise
    _finish_telemetry(args, telemetry)
    trace = res.best_fom_trace()
    print(f"best FoM: {trace[0]:.4f} -> {trace[-1]:.4f}; "
          f"specs met: {res.success}; wall {res.wall_time_s:.1f}s")
    best = res.best_feasible() or res.best_record()
    print("best design:")
    for name, value in task.space.denormalize(best.x).items():
        print(f"  {name:6s} = {value:.4f} {task.space[name].unit}")
    print("metrics:")
    for name, value in zip(task.metric_names, best.metrics):
        print(f"  {name:10s} = {value:.5g}")
    if args.save:
        from repro.core.serialize import save_result

        save_result(res, args.save)
        print(f"saved run to {args.save}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments import comparison_table, fom_curves, run_comparison
    from repro.experiments.figures import render_ascii

    task = _make_task(args.task, args.fidelity)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    telemetry = _build_telemetry(args)
    run_store = None
    if args.store:
        from repro.obs.store import RunStore

        run_store = RunStore(args.store)
        print(f"recording each (method, run) cell to {args.store}/")
    results = run_comparison(task, methods, n_runs=args.runs,
                             n_sims=args.sims, n_init=args.init,
                             seed=args.seed, verbose=not args.quiet,
                             maopt_overrides=_MAOPT_TUNED,
                             telemetry=telemetry,
                             checkpoint_dir=args.checkpoint_dir,
                             run_store=run_store)
    _finish_telemetry(args, telemetry)
    print()
    print(comparison_table(results, task))
    print()
    print(render_ascii(fom_curves(results),
                       title=f"FoM convergence on {task.name}"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    build_report(args.results, args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_netlist(args: argparse.Namespace) -> int:
    task = _make_task(args.task, args.fidelity)
    builders = {}
    try:
        from repro.circuits.ldo import build_ldo
        from repro.circuits.ota import build_ota
        from repro.circuits.tia import build_tia

        builders = {"ota": build_ota, "tia": build_tia, "ldo": build_ldo}
    except ImportError:  # pragma: no cover
        pass
    if args.task not in builders:
        raise SystemExit(f"no netlist builder for task {args.task!r}")
    u = np.full(task.d, args.point)
    params = task.space.denormalize(u)
    print(builders[args.task](params).netlist_text())
    return 0


def _cell(value, spec: str = "") -> str:
    """Table cell: '-' for missing values, formatted otherwise."""
    if value is None:
        return "-"
    return format(value, spec)


def cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.obs.store import RunStore

    records = RunStore(args.store).list_runs()
    if not records:
        print(f"no runs in {args.store}/")
        return 0
    header = (f"{'run_id':<24} {'status':<9} {'method':<10} {'task':<14} "
              f"{'sims':>6} {'best_fom':>12} {'ok':>3} {'wall_s':>8}")
    print(header)
    print("-" * len(header))
    for record in records:
        s = record.summary()
        ok = "-" if s["success"] is None else ("yes" if s["success"]
                                               else "no")
        print(f"{s['run_id']:<24} {_cell(s['status']):<9} "
              f"{_cell(s['method']):<10} {_cell(s['task']):<14} "
              f"{_cell(s['n_sims']):>6} {_cell(s['best_fom'], '.6g'):>12} "
              f"{ok:>3} {_cell(s['wall_time_s'], '.2f'):>8}")
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.store import RunStore

    try:
        record = RunStore(args.store).load(args.run)
    except KeyError as exc:
        raise SystemExit(f"repro: error: {exc.args[0]}")
    print(_json.dumps(record.manifest, indent=2, sort_keys=True))
    by_kind: dict[str, int] = {}
    for event in record.events():
        kind = str(event.get("event"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    if by_kind:
        print("\nevents:")
        for kind in sorted(by_kind):
            print(f"  {kind:<20} {by_kind[kind]}")
    trace = record.trace_rows()
    if trace:
        from repro.obs.report import breakdown, render_breakdown

        print()
        print(render_breakdown(breakdown(trace),
                               title=f"wall-time breakdown: {record.run_id}"))
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.store import RunStore, diff_runs

    store = RunStore(args.store)
    try:
        diff = diff_runs(store.load(args.a), store.load(args.b))
    except KeyError as exc:
        raise SystemExit(f"repro: error: {exc.args[0]}")
    print(f"diff {diff['a']} .. {diff['b']}")
    if not diff["fields"] and not diff["counters"]:
        print("  (no differences)")
        return 0
    for name, entry in diff["fields"].items():
        delta = (f"  (delta {entry['delta']:+g})" if "delta" in entry
                 else "")
        print(f"  {name}: {entry['a']} -> {entry['b']}{delta}")
    for key, entry in diff["counters"].items():
        print(f"  counter {key}: {entry['a']:g} -> {entry['b']:g} "
              f"(delta {entry['delta']:+g})")
    return 0


def cmd_runs_export(args: argparse.Namespace) -> int:
    from repro.obs.store import RunStore, export_run

    try:
        record = RunStore(args.store).load(args.run)
        text = export_run(record, args.format)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"repro: error: {exc.args[0]}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.format} export of {record.run_id} "
              f"to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    from repro.obs.tail import resolve_run_dir, tail_run

    try:
        run_dir = resolve_run_dir(args.run, store_root=args.store)
    except KeyError as exc:
        raise SystemExit(f"repro: error: {exc.args[0]}")
    try:
        tail_run(run_dir, poll_s=args.poll, once=args.once,
                 max_polls=args.max_polls, stall_after_s=args.stall_after)
    except KeyboardInterrupt:
        return 130
    return 0


def _shapes_root(code_paths: list[str]):
    """The ``repro`` package dir to run shape contracts over: the first
    ``--code`` path that contains ``core/networks.py`` (so ``--code
    src/repro`` checks the tree being linted), else the installed
    package (``check_shapes`` default)."""
    import pathlib

    for path in code_paths:
        p = pathlib.Path(path)
        if (p / "core" / "networks.py").exists():
            return p
    return None


def _lint_code_path(path: str, args: argparse.Namespace,
                    cache) -> list:
    """codelint (+ flow passes with ``--flow``) over one ``--code``
    target, routing the per-file passes through the result cache."""
    from repro.analysis.cache import analyzer_fingerprint
    from repro.analysis.codelint import CODE_RULES, lint_source
    from repro.analysis.flow import iter_python_files

    per_file = [("codelint", analyzer_fingerprint("codelint", CODE_RULES),
                 lint_source)]
    if args.flow:
        from repro.analysis.rngflow import RNG_RULES
        from repro.analysis.rngflow import check_source as rng_check

        per_file.append(
            ("rngflow", analyzer_fingerprint("rngflow", RNG_RULES),
             rng_check))
    diags: list = []
    for f in iter_python_files([path]):
        source = f.read_text(encoding="utf-8")
        for _, fp, run in per_file:
            if cache is None:
                diags.extend(run(source, str(f)))
            else:
                diags.extend(cache.cached_call(fp, str(f), source, run))
    if args.flow:
        # The concurrency pass builds a call graph across the whole
        # target; its result depends on *other* files, so a per-file
        # cache key would be unsound — it always runs.
        from repro.analysis.concurrency import check_paths as conc_check

        diags.extend(conc_check([path]))
    if args.locks:
        # Same story as concurrency: the lockset pass resolves guards
        # and worker closures across the whole target, so it bypasses
        # the per-file cache too.
        from repro.analysis.locks import check_paths as locks_check

        diags.extend(locks_check([path]))
    diags.extend(_unit_passes(path, args, cache))
    return diags


def _unit_cached(name: str, rules, run, target: str, cache,
                 extra: str = "") -> list:
    """Route a whole-unit pass through the incremental cache.

    Whole-unit results depend on *every* file in the target, so the
    cache key digests the full ``(path, content-hash)`` list (plus
    ``extra`` for out-of-tree inputs like the service doc) — any file
    change reruns the pass, and the per-file soundness caveat in
    :mod:`repro.analysis.cache` does not apply.
    """
    from repro.analysis.cache import analyzer_fingerprint, content_hash
    from repro.analysis.flow import iter_python_files

    if cache is None:
        return run()
    parts = [f"{f}:{content_hash(f.read_text(encoding='utf-8'))}"
             for f in iter_python_files([target])]
    if extra:
        parts.append(extra)
    return cache.cached_call(
        analyzer_fingerprint(name, rules), f"<{name}-unit:{target}>",
        "\n".join(parts), lambda _source, _path: run())


def _unit_passes(target: str, args: argparse.Namespace, cache) -> list:
    """The service-boundary whole-unit passes (``--taint``/``--proto``)
    over one Python target, through the whole-unit cache."""
    diags: list = []
    if args.taint:
        from repro.analysis.taint import TAINT_RULES
        from repro.analysis.taint import check_paths as taint_check

        diags.extend(_unit_cached(
            "taint", TAINT_RULES, lambda: taint_check([target]),
            target, cache))
    if args.proto:
        import os

        from repro.analysis.cache import content_hash
        from repro.analysis.protoconform import PROTO_RULES, SERVICE_DOC
        from repro.analysis.protoconform import check_paths as proto_check

        doc = args.proto_doc
        doc_file = doc if doc is not None else SERVICE_DOC
        extra = ""
        if os.path.isfile(doc_file):
            with open(doc_file, encoding="utf-8") as fh:
                extra = f"{doc_file}:{content_hash(fh.read())}"
        diags.extend(_unit_cached(
            "protoconform", PROTO_RULES,
            lambda: proto_check([target], doc=doc), target, cache,
            extra=extra))
    return diags


def _lint_groups(args: argparse.Namespace) -> list[tuple[str, list]]:
    """Collect ``(target label, diagnostics)`` groups for ``lint``."""
    import os

    from repro.analysis.configlint import check_config
    from repro.analysis.erc import lint_deck

    groups: list[tuple[str, list]] = []
    cache = None
    if args.use_cache and (args.code or args.taint or args.proto):
        from repro.analysis.cache import AnalysisCache

        cache = AnalysisCache.load(args.cache_path)
    for target in args.targets:
        if os.path.exists(target):
            # With --locks/--taint/--proto, Python trees/files given
            # positionally are whole-unit targets ('ma-opt lint --taint
            # --proto src/repro'); deck files keep their ERC meaning.
            if (args.locks or args.taint or args.proto) \
                    and (os.path.isdir(target) or target.endswith(".py")):
                diags: list = []
                if args.locks:
                    from repro.analysis.locks import \
                        check_paths as locks_check

                    diags.extend(locks_check([target]))
                diags.extend(_unit_passes(target, args, cache))
                groups.append((target, diags))
                continue
            with open(target, encoding="utf-8") as fh:
                groups.append((target, lint_deck(fh.read())))
            continue
        try:
            task = _make_task(target, args.fidelity, args.corner)
        except SystemExit:
            print(f"repro: error: unknown lint target {target!r} "
                  f"(neither a file nor a task name)", file=sys.stderr)
            raise SystemExit(2) from None
        lint_design = getattr(task, "lint_design", None)
        if lint_design is None:
            raise SystemExit(
                f"repro: error: task {target!r} has no netlist to lint")
        u = np.full(task.d, args.point)
        groups.append((target, lint_design(u)))
    if args.config:
        from repro.core.config import MAOptConfig

        config = MAOptConfig(**_MAOPT_TUNED)
        task = (_make_task(args.task, args.fidelity, args.corner)
                if args.task else None)
        groups.append(("config", check_config(
            config, task=task, n_sims=args.sims, n_init=args.init)))
    for path in args.code:
        if not os.path.exists(path):
            raise SystemExit(f"repro: error: no such path {path!r}")
        groups.append((path, _lint_code_path(path, args, cache)))
    if cache is not None:
        cache.save()
        args._cache_stats = (cache.hits, cache.misses)
    if args.shapes:
        from repro.analysis.shapes import check_shapes

        groups.append(("shapes", check_shapes(_shapes_root(args.code))))
    return groups


def _unknown_prefixes(prefixes) -> list[str]:
    """``--select/--ignore`` values matching no registered rule id."""
    from repro.analysis import all_rules

    known = [r.id for r in all_rules()] + ["code.syntax"]
    bad = []
    for prefix in prefixes:
        stem = prefix.rstrip(".")
        if not any(rid == stem or rid.startswith(stem + ".")
                   for rid in known):
            bad.append(prefix)
    return bad


def cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.diagnostics import (exit_code, filter_diagnostics,
                                            render_text, sort_diagnostics)

    if args.all:
        args.flow = args.shapes = args.locks = True
        args.taint = args.proto = True
    if not args.targets and not args.config and not args.code \
            and not args.shapes:
        print("repro: error: nothing to lint — give task names / deck "
              "files (or Python paths with --locks/--taint/--proto), "
              "--config, --code PATH, or --shapes",
              file=sys.stderr)
        return 2
    bad = _unknown_prefixes([*args.select, *args.ignore])
    if bad:
        print(f"repro: error: --select/--ignore prefix(es) matching no "
              f"registered rule: {', '.join(sorted(bad))} "
              f"(see 'ma-opt lint' docs for the catalog)",
              file=sys.stderr)
        return 2
    groups = [(label, sort_diagnostics(filter_diagnostics(
        diags, select=args.select, ignore=args.ignore)))
        for label, diags in _lint_groups(args)]
    everything = [d for _, diags in groups for d in diags]

    # -- baseline ratchet -----------------------------------------------------
    n_suppressed = 0
    if args.update_baseline:
        from repro.analysis.baseline import DEFAULT_BASELINE_PATH, Baseline

        target = args.baseline or DEFAULT_BASELINE_PATH
        Baseline.from_diagnostics(everything).save(target)
        if args.format != "json":
            print(f"froze {len(everything)} finding(s) into {target}")
        return 0
    if args.baseline is not None:
        from repro.analysis.baseline import Baseline

        screen = Baseline.load(args.baseline).apply(everything)
        suppressed = {id(d) for d in screen.suppressed}
        n_suppressed = len(screen.suppressed)
        groups = [(label, [d for d in diags if id(d) not in suppressed])
                  for label, diags in groups]
        everything = screen.new

    if args.sarif_out:
        from repro.analysis import RULE_SETS
        from repro.analysis.sarif import render_sarif

        with open(args.sarif_out, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(everything, rule_sets=RULE_SETS))

    if args.format == "json":
        for label, diags in groups:
            for d in diags:
                print(_json.dumps({"target": label, **d.to_dict()},
                                  sort_keys=True))
    else:
        for label, diags in groups:
            if len(groups) > 1:
                print(f"== {label} ==")
            print(render_text(diags))
        if n_suppressed:
            print(f"{n_suppressed} baseline-suppressed finding(s) "
                  f"not shown")
        stats = getattr(args, "_cache_stats", None)
        if stats is not None:
            print(f"cache: {stats[0]} hit(s), {stats[1]} miss(es)")
    return exit_code(everything)


def cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis import dynrace
    from repro.analysis.diagnostics import render_text

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("repro: error: sanitize needs a command to run, e.g. "
              "'ma-opt sanitize optimize sphere --events-out ev.jsonl'",
              file=sys.stderr)
        return 2
    if cmd[0] == "sanitize":
        print("repro: error: 'sanitize' cannot wrap itself",
              file=sys.stderr)
        return 2
    sanitizer = dynrace.activate(dynrace.RaceSanitizer())
    try:
        with dynrace.schedule_torture(args.switch_interval):
            try:
                inner_rc = main(cmd)
            except SystemExit as exc:
                # The inner command's argparse/SystemExit paths should
                # not skip the race report.
                code = exc.code
                inner_rc = (code if isinstance(code, int)
                            else 0 if code is None else 1)
    finally:
        dynrace.deactivate()
    diags = sanitizer.diagnostics()
    if args.sarif_out:
        from repro.analysis.sarif import render_sarif

        with open(args.sarif_out, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(diags,
                                  rule_sets=(dynrace.RACE_RULES,)))
    print()
    print(sanitizer.summary())
    if diags:
        print(render_text(diags))
        return 1
    return inner_rc


def _parse_threshold(value: str) -> float:
    """Percent -> fraction, rejecting negatives (for --threshold)."""
    try:
        pct = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {value!r}") from None
    if pct < 0:
        raise argparse.ArgumentTypeError("threshold must be >= 0")
    return pct / 100.0


def cmd_bench_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.bench import (append_entry, builtin_registry, render_result,
                             run_benchmarks, save_result)

    telemetry = _build_telemetry(args)
    try:
        doc = run_benchmarks(
            builtin_registry(), filters=args.filter, seed=args.seed,
            repeats=args.repeats, warmup=args.warmup, telemetry=telemetry,
            profile=args.profile, profile_top=args.profile_top,
            progress=None if args.format == "json" else print)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    _finish_telemetry(args, telemetry)
    if args.out:
        save_result(doc, args.out)
        if args.format != "json":
            print(f"wrote {args.out}")
    if args.trajectory:
        append_entry(args.trajectory, doc)
        if args.format != "json":
            print(f"appended to {args.trajectory}")
    if args.format == "json":
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_result(doc))
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.bench import (DEFAULT_THRESHOLD, compare_results, exit_code,
                             load_result, render_rows)

    per_bench: dict[str, float] = {}
    for spec in args.threshold_for:
        name, sep, pct = spec.partition("=")
        if not sep or not name:
            print(f"repro: error: --threshold-for wants NAME=PERCENT, "
                  f"got {spec!r}", file=sys.stderr)
            return 2
        try:
            per_bench[name] = _parse_threshold(pct)
        except argparse.ArgumentTypeError as exc:
            print(f"repro: error: --threshold-for {name}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        baseline = load_result(args.baseline)
        current = load_result(args.current)
    except (OSError, ValueError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    threshold = (DEFAULT_THRESHOLD if args.threshold is None
                 else args.threshold)
    rows = compare_results(baseline, current, threshold=threshold,
                           per_bench=per_bench)
    if args.format == "json":
        for row in rows:
            print(_json.dumps(row, sort_keys=True))
    else:
        print(render_rows(rows))
    return exit_code(rows, warn_only=args.warn_only)


def cmd_bench_list(args: argparse.Namespace) -> int:
    import json as _json

    from repro.bench import builtin_registry

    benches = builtin_registry().select(args.filter)
    if args.format == "json":
        for b in benches:
            print(_json.dumps({"name": b.name, "tier": b.tier,
                               "repeats": b.repeats, "warmup": b.warmup,
                               "description": b.description},
                              sort_keys=True))
    else:
        for b in benches:
            print(f"{b.name:<28} [{b.tier}] {b.description}")
    return 0


def _parse_set(pairs) -> dict:
    """Parse repeated ``--set key=value`` pairs (values parsed as JSON,
    falling back to strings)."""
    import json as _json

    overrides: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key.strip():
            raise SystemExit(f"repro: error: --set expects KEY=VALUE, "
                             f"got {pair!r}")
        try:
            value = _json.loads(raw)
        except ValueError:
            value = raw
        overrides[key.strip()] = value
    return overrides


def _job_line(record: dict) -> str:
    """One-line rendering of a job record (list/status output)."""
    spec = record.get("spec", {})
    summary = record.get("summary", {})
    line = (f"{record['job_id']}  [{record['state']}]  "
            f"{spec.get('method')} on {spec.get('task')}  "
            f"sims={spec.get('n_sims')}  tenant={spec.get('tenant')}  "
            f"priority={spec.get('priority')}")
    if summary.get("best_fom") is not None:
        line += (f"  best_fom={summary['best_fom']:.6g}"
                 f"  success={summary.get('success')}")
    if record.get("error"):
        line += f"  error={record['error']}"
    return line


def _print_serve_error(exc) -> None:
    print(f"repro: error: {exc}", file=sys.stderr)
    for diag in exc.diagnostics:
        print(f"  {diag.get('severity')}: {diag.get('rule')}: "
              f"{diag.get('message')}", file=sys.stderr)


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import time as _time

    from repro.core.config import ServeConfig
    from repro.serve import JobManager, JobServer

    config = ServeConfig(max_workers=args.workers,
                         tenant_cap=args.tenant_cap,
                         checkpoint_every=args.checkpoint_every)
    manager = JobManager(args.root, config)
    if args.resume:
        requeued = manager.resume()
        print(f"resumed {len(requeued)} unfinished job(s)"
              + (": " + ", ".join(requeued) if requeued else ""))
    manager.start()
    server = JobServer(manager, host=args.host, port=args.port).start()
    print(f"ma-opt serve: listening on {server.host}:{server.port}  "
          f"(root={args.root}, workers={config.max_workers}, "
          f"tenant_cap={config.tenant_cap})")
    print(f"submit with: ma-opt submit <task> --root {args.root}",
          flush=True)
    deadline = (None if args.max_seconds is None
                else _time.monotonic() + args.max_seconds)

    def _on_sigterm(signum, frame):
        # Same clean-shutdown path as Ctrl-C, for supervisors and CI
        # (background shells start children with SIGINT ignored).
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        while deadline is None or _time.monotonic() < deadline:
            _time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
        manager.close(drain=args.drain)
    counts = manager.counts()
    tally = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"ma-opt serve: stopped ({tally or 'no jobs'})")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import JobClient, ServeError

    spec = {
        "task": args.task,
        "method": args.method,
        "fidelity": args.fidelity,
        "n_sims": args.sims,
        "n_init": args.init,
        "seed": args.seed,
        "priority": args.priority,
        "tenant": args.tenant,
        "timeout_s": args.timeout,
        "overrides": _parse_set(args.set),
    }
    try:
        with JobClient.connect(args.root) as client:
            job = client.submit(spec)
            print(_job_line(job))
            for diag in job.get("warnings", ()):
                print(f"  warning: {diag.get('rule')}: "
                      f"{diag.get('message')}")
            print(f"follow with: ma-opt jobs tail {job['job_id']} "
                  f"--root {args.root}")
            if not args.wait:
                return 0
            record = client.wait(job["job_id"])
    except ServeError as exc:
        _print_serve_error(exc)
        return 2
    print(_job_line(record))
    return 0 if record["state"] == "finished" else 1


def cmd_jobs_list(args: argparse.Namespace) -> int:
    from repro.serve import JobClient, ServeError

    try:
        with JobClient.connect(args.root) as client:
            records = client.list_jobs(tenant=args.tenant,
                                       state=args.state)
    except ServeError as exc:
        _print_serve_error(exc)
        return 2
    for record in records:
        print(_job_line(record))
    if not records:
        print("no jobs")
    return 0


def _cmd_jobs_simple(args: argparse.Namespace, op: str) -> int:
    import json as _json

    from repro.serve import JobClient, ServeError

    try:
        with JobClient.connect(args.root) as client:
            record = getattr(client, op)(args.job_id)
    except ServeError as exc:
        _print_serve_error(exc)
        return 2
    if getattr(args, "json", False):
        print(_json.dumps(record, indent=2, sort_keys=True))
    else:
        print(_job_line(record))
    return 0


def cmd_jobs_status(args: argparse.Namespace) -> int:
    return _cmd_jobs_simple(args, "status")


def cmd_jobs_result(args: argparse.Namespace) -> int:
    return _cmd_jobs_simple(args, "result")


def cmd_jobs_cancel(args: argparse.Namespace) -> int:
    return _cmd_jobs_simple(args, "cancel")


def cmd_jobs_tail(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.tail import tail_run
    from repro.serve import JobClient, ServeError

    try:
        with JobClient.connect(args.root) as client:
            info = client.tail_info(args.job_id)
            while info["run_dir"] is None and info["state"] == "queued":
                _time.sleep(args.poll)  # queued: no attempt to tail yet
                info = client.tail_info(args.job_id)
    except ServeError as exc:
        _print_serve_error(exc)
        return 2
    if info["run_dir"] is None:
        print(f"repro: error: job {args.job_id} is {info['state']} and "
              f"never started a run", file=sys.stderr)
        return 1
    print(f"tailing {info['run_id']} ({info['run_dir']})")
    try:
        tail_run(info["run_dir"], poll_s=args.poll, once=args.once)
    except KeyboardInterrupt:
        return 130
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MA-Opt reproduction CLI")
    parser.add_argument("--fidelity", choices=("fast", "full"),
                        default="fast")
    parser.add_argument("--corner", default="tt",
                        choices=("tt", "ff", "ss", "fs", "sf"),
                        help="process corner for the circuit tasks")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print task and parameter table")
    p.add_argument("task")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("optimize", help="run one optimizer on a task")
    p.add_argument("task")
    p.add_argument("--method", default="MA-Opt")
    p.add_argument("--sims", type=int, default=60)
    p.add_argument("--init", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", help="archive the run to this .npz file")
    p.add_argument("--max-retries", type=int, default=0, metavar="N",
                   help="retry each failed simulation up to N times "
                        "before quarantining the design")
    p.add_argument("--sim-timeout", type=float, default=None, metavar="S",
                   help="per-simulation watchdog timeout in seconds "
                        "(pool path only)")
    p.add_argument("--inject-faults", type=float, default=0.0, metavar="P",
                   help="fault-injection drill: wrap the task so each "
                        "attempt fails with probability P (half "
                        "exceptions, half NaN metrics)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="write optimizer checkpoints to this .npz path "
                        "(MA-Opt family)")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="ROUNDS",
                   help="checkpoint every ROUNDS rounds (with --checkpoint; "
                        "a final checkpoint is always written)")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume a killed run from a checkpoint written by "
                        "--checkpoint (MA-Opt family)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="record this run durably under DIR (query with "
                        "'runs', follow with 'tail')")
    p.add_argument("--parallel", action="store_true",
                   help="evaluate actor batches over a process pool "
                        "(MA-Opt family; one worker per actor)")
    p.add_argument("--heartbeat", type=float, default=0.0, metavar="S",
                   help="emit heartbeat events every S seconds while a "
                        "pooled batch is in flight (MA-Opt family)")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("compare", help="multi-method comparison (Table II)")
    p.add_argument("task")
    p.add_argument("--methods", default="BO,DNN-Opt,MA-Opt1,MA-Opt2,MA-Opt")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--sims", type=int, default=40)
    p.add_argument("--init", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quiet", action="store_true")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="archive each completed (method, run) here and "
                        "skip already-archived cells on re-invocation")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="record every (method, run) cell as its own run "
                        "under DIR (query with 'runs')")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("report", help="assemble benchmarks/results into one markdown report")
    p.add_argument("--results", default="benchmarks/results")
    p.add_argument("--output", default="REPORT.md")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("netlist", help="print a design's netlist")
    p.add_argument("task")
    p.add_argument("--point", type=float, default=0.5,
                   help="normalized coordinate used for every parameter")
    p.set_defaults(func=cmd_netlist)

    p = sub.add_parser(
        "lint", help="static analysis: ERC, config checks, codelint")
    p.add_argument("targets", nargs="*",
                   help="task names (ota/tia/ldo; lints the netlist at "
                        "--point) or SPICE deck files")
    p.add_argument("--point", type=float, default=0.5,
                   help="normalized coordinate for task-netlist targets")
    p.add_argument("--config", action="store_true",
                   help="cross-validate the tuned MAOptConfig "
                        "(with --task/--sims/--init when given)")
    p.add_argument("--task", default=None,
                   help="task whose design space --config checks against")
    p.add_argument("--sims", type=int, default=None,
                   help="simulation budget for --config cross-checks")
    p.add_argument("--init", type=int, default=None,
                   help="initial-set size for --config cross-checks")
    p.add_argument("--code", metavar="PATH", action="append", default=[],
                   help="run the repo-invariant AST linter over PATH "
                        "(file or directory; repeatable)")
    p.add_argument("--flow", action="store_true",
                   help="with --code: also run the flow-sensitive RNG "
                        "provenance and concurrency passes (flow.*)")
    p.add_argument("--locks", action="store_true",
                   help="run the lockset/guarded-by pass (flow.lock.*) "
                        "over --code paths and over Python files or "
                        "directories given as positional targets")
    p.add_argument("--taint", action="store_true",
                   help="run the service-boundary taint pass "
                        "(flow.taint.*: untrusted job specs reaching "
                        "path/exec/budget/format/frame sinks) over "
                        "--code paths and positional Python targets")
    p.add_argument("--proto", action="store_true",
                   help="run the protocol/state-machine conformance "
                        "pass (proto.*: job lifecycle vs "
                        "JOB_TRANSITIONS, client/server/doc op drift) "
                        "over --code paths and positional Python "
                        "targets")
    p.add_argument("--proto-doc", metavar="PATH", default=None,
                   help="markdown contract the --proto pass cross-checks "
                        "(default: docs/service.md when it exists)")
    p.add_argument("--all", action="store_true",
                   help="shorthand: enable every pass "
                        "(--flow --shapes --locks --taint --proto)")
    p.add_argument("--shapes", action="store_true",
                   help="check the paper's dimensional contracts "
                        "(critic 2d->m+1, actor d->d, N_es bound; "
                        "shape.* rules)")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="screen findings against this committed baseline "
                        "(only findings NOT in it affect the exit code)")
    p.add_argument("--update-baseline", action="store_true",
                   help="freeze the current findings into the baseline "
                        "file and exit 0 (ratchet update)")
    p.add_argument("--sarif-out", metavar="PATH", default=None,
                   help="also write findings as a SARIF 2.1.0 document "
                        "(GitHub code scanning)")
    p.add_argument("--cache", dest="cache_path", metavar="PATH",
                   default=".ma-opt-lint-cache.json",
                   help="incremental result cache for --code passes "
                        "(keyed by file content hash)")
    p.add_argument("--no-cache", dest="use_cache", action="store_false",
                   default=True,
                   help="disable the incremental result cache")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="text report or one JSON object per finding")
    p.add_argument("--select", action="append", default=[],
                   metavar="PREFIX",
                   help="keep only rules matching this id prefix "
                        "(repeatable, e.g. 'erc' or 'erc.no-dc-path')")
    p.add_argument("--ignore", action="append", default=[],
                   metavar="PREFIX",
                   help="drop rules matching this id prefix (repeatable)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "sanitize", help="run another command under the runtime race "
                         "sanitizer")
    p.add_argument("--switch-interval", type=float, default=1e-5,
                   metavar="S",
                   help="thread switch interval while the command runs "
                        "(small = aggressive interleaving; default 1e-5)")
    p.add_argument("--sarif-out", metavar="PATH", default=None,
                   help="write observed races as a SARIF 2.1.0 document")
    p.add_argument("cmd", nargs=argparse.REMAINDER,
                   help="the command to run, e.g. 'optimize sphere "
                        "--events-out ev.jsonl'")
    p.set_defaults(func=cmd_sanitize)

    p = sub.add_parser(
        "bench", help="performance benchmarks: run/compare/list")
    bsub = p.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser("run", help="run benchmarks and write a result file")
    b.add_argument("--filter", action="append", default=[],
                   metavar="PREFIX",
                   help="keep benchmarks matching this dotted-name prefix "
                        "(repeatable, e.g. 'micro' or 'micro.mna')")
    b.add_argument("--repeats", type=int, default=None,
                   help="override each benchmark's timed repeat count")
    b.add_argument("--warmup", type=int, default=None,
                   help="override each benchmark's warmup call count")
    b.add_argument("--seed", type=int, default=0,
                   help="base seed for benchmark input generation")
    b.add_argument("--out", metavar="PATH",
                   default="benchmarks/results/perf/latest.json",
                   help="result file to write (empty string to skip)")
    b.add_argument("--trajectory", metavar="PATH",
                   default="BENCH_core.json",
                   help="trajectory file to append a condensed entry to")
    b.add_argument("--no-trajectory", dest="trajectory",
                   action="store_const", const=None,
                   help="do not append to the trajectory file")
    b.add_argument("--profile", action="store_true",
                   help="collect cProfile hotspots per benchmark "
                        "(separate pass; timings stay unprofiled)")
    b.add_argument("--profile-top", type=int, default=10,
                   help="hotspot rows to keep with --profile")
    b.add_argument("--format", choices=("text", "json"), default="text",
                   help="text tables or the raw result document as JSON")
    _add_obs_flags(b)
    b.set_defaults(func=cmd_bench_run)

    b = bsub.add_parser(
        "compare", help="diff two result files; exit 1 on regression")
    b.add_argument("baseline", help="baseline result JSON")
    b.add_argument("current", help="current result JSON")
    b.add_argument("--threshold", type=_parse_threshold,
                   default=None, metavar="PERCENT",
                   help="allowed slowdown in percent (default 35)")
    b.add_argument("--threshold-for", action="append", default=[],
                   metavar="NAME=PERCENT",
                   help="per-benchmark threshold override (repeatable)")
    b.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0 anyway")
    b.add_argument("--format", choices=("text", "json"), default="text",
                   help="text table or one JSON object per row")
    b.set_defaults(func=cmd_bench_compare)

    b = bsub.add_parser("list", help="list registered benchmarks")
    b.add_argument("--filter", action="append", default=[],
                   metavar="PREFIX",
                   help="keep benchmarks matching this dotted-name prefix")
    b.add_argument("--format", choices=("text", "json"), default="text",
                   help="aligned text or one JSON object per benchmark")
    b.set_defaults(func=cmd_bench_list)

    p = sub.add_parser(
        "runs", help="query the durable run store (--store on "
                     "optimize/compare)")
    rsub = p.add_subparsers(dest="runs_command", required=True)

    r = rsub.add_parser("list", help="one line per stored run")
    r.add_argument("--store", metavar="DIR", default="runs",
                   help="run-store root (default: runs)")
    r.set_defaults(func=cmd_runs_list)

    r = rsub.add_parser("show", help="manifest, event counts and wall-time "
                                     "breakdown of one run")
    r.add_argument("run", help="run ID or unique ID prefix")
    r.add_argument("--store", metavar="DIR", default="runs",
                   help="run-store root (default: runs)")
    r.set_defaults(func=cmd_runs_show)

    r = rsub.add_parser("diff", help="compare two runs field by field")
    r.add_argument("a", help="first run ID or prefix")
    r.add_argument("b", help="second run ID or prefix")
    r.add_argument("--store", metavar="DIR", default="runs",
                   help="run-store root (default: runs)")
    r.set_defaults(func=cmd_runs_diff)

    r = rsub.add_parser(
        "export", help="render one run as json (full bundle), prom "
                       "(Prometheus text) or sarif (diagnostics)")
    r.add_argument("run", help="run ID or unique ID prefix")
    r.add_argument("--format", choices=("json", "prom", "sarif"),
                   default="json")
    r.add_argument("--output", metavar="PATH", default=None,
                   help="write here instead of stdout")
    r.add_argument("--store", metavar="DIR", default="runs",
                   help="run-store root (default: runs)")
    r.set_defaults(func=cmd_runs_export)

    p = sub.add_parser(
        "tail", help="follow a live run's event/metric stream")
    p.add_argument("run", help="run ID, unique ID prefix, or run directory")
    p.add_argument("--store", metavar="DIR", default="runs",
                   help="run-store root for ID lookup (default: runs)")
    p.add_argument("--poll", type=float, default=0.5, metavar="S",
                   help="poll interval in seconds (default: 0.5)")
    p.add_argument("--once", action="store_true",
                   help="render the current state once and exit")
    p.add_argument("--max-polls", type=int, default=None, metavar="N",
                   help="stop after N polls (default: follow until run_end)")
    p.add_argument("--stall-after", type=float, default=30.0, metavar="S",
                   help="flag a stall after S seconds without new data")
    p.set_defaults(func=cmd_tail)

    p = sub.add_parser(
        "serve", help="run the optimization job service on a local socket")
    p.add_argument("--root", default="serve", metavar="DIR",
                   help="service state directory: job records, run "
                        "store, checkpoints, endpoint file "
                        "(default: serve)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent optimization jobs (default: 2)")
    p.add_argument("--tenant-cap", type=int, default=2, metavar="N",
                   help="max running jobs per tenant (default: 2)")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="MA-family checkpoint cadence in rounds "
                        "(default: 1)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: 0 = OS-assigned, published "
                        "to <root>/server.json)")
    p.add_argument("--resume", action="store_true",
                   help="re-queue unfinished jobs from a previous "
                        "server on this root")
    p.add_argument("--drain", action="store_true",
                   help="on shutdown, wait for the queue to empty "
                        "instead of interrupting running jobs")
    p.add_argument("--max-seconds", type=float, default=None, metavar="S",
                   help="exit after S seconds (smoke/CI runs; default: "
                        "serve until interrupted)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit an optimization job to a running server")
    p.add_argument("task")
    p.add_argument("--method", default="MA-Opt")
    p.add_argument("--sims", type=int, default=60)
    p.add_argument("--init", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--priority", choices=("high", "normal", "low"),
                   default="normal")
    p.add_argument("--tenant", default="default",
                   help="tenant name for the per-tenant concurrency cap")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock timeout for the job in seconds")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="MAOptConfig override (repeatable; values "
                        "parsed as JSON)")
    p.add_argument("--root", default="serve", metavar="DIR",
                   help="service root holding server.json "
                        "(default: serve)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes; exit 1 unless "
                        "it finished cleanly")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="query and control jobs on a "
                                    "running server")
    jsub = p.add_subparsers(dest="jobs_command", required=True)

    j = jsub.add_parser("list", help="one line per job")
    j.add_argument("--root", default="serve", metavar="DIR")
    j.add_argument("--tenant", default=None)
    j.add_argument("--state", default=None,
                   choices=("queued", "running", "finished", "failed",
                            "cancelled", "interrupted"))
    j.set_defaults(func=cmd_jobs_list)

    j = jsub.add_parser("status", help="current record of one job")
    j.add_argument("job_id")
    j.add_argument("--root", default="serve", metavar="DIR")
    j.add_argument("--json", action="store_true",
                   help="print the full job record as JSON")
    j.set_defaults(func=cmd_jobs_status)

    j = jsub.add_parser("result", help="record of a finished job "
                                       "(errors while unfinished)")
    j.add_argument("job_id")
    j.add_argument("--root", default="serve", metavar="DIR")
    j.add_argument("--json", action="store_true",
                   help="print the full job record as JSON")
    j.set_defaults(func=cmd_jobs_result)

    j = jsub.add_parser("cancel", help="cancel a queued or running job")
    j.add_argument("job_id")
    j.add_argument("--root", default="serve", metavar="DIR")
    j.add_argument("--json", action="store_true",
                   help="print the full job record as JSON")
    j.set_defaults(func=cmd_jobs_cancel)

    j = jsub.add_parser("tail", help="follow a job's live run stream")
    j.add_argument("job_id")
    j.add_argument("--root", default="serve", metavar="DIR")
    j.add_argument("--poll", type=float, default=0.5, metavar="S")
    j.add_argument("--once", action="store_true",
                   help="render the current state once and exit")
    j.set_defaults(func=cmd_jobs_tail)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
