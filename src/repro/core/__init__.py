"""MA-Opt core: the paper's RL-inspired optimization framework.

Contents map one-to-one onto the paper's Section II:

* :mod:`repro.core.space` / :mod:`repro.core.problem` — problem formulation
  (Eq. 1): design space, target metric, constraints.
* :mod:`repro.core.fom` — the figure-of-merit function g(.) (Eq. 2).
* :mod:`repro.core.population` — total design set, elite solution sets
  (shared and individual, Fig. 2).
* :mod:`repro.core.pseudo` — pseudo-sample generation (Eq. 3).
* :mod:`repro.core.networks` + :mod:`repro.core.training` — critic (Eq. 4)
  and actor (Eqs. 5-6) networks and their training loops.
* :mod:`repro.core.near_sampling` — the near-sampling method (Alg. 2).
* :mod:`repro.core.ma_opt` — Algorithms 1 and 3 tied together, with the
  DNN-Opt / MA-Opt1 / MA-Opt2 / MA-Opt variant presets.
"""

from repro.core.config import MAOptConfig, VariantPreset
from repro.core.fom import FigureOfMerit
from repro.core.ma_opt import MAOptimizer
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.problem import SizingTask, Spec, Target
from repro.core.result import EvaluationRecord, OptimizationResult
from repro.core.space import DesignSpace, Parameter

__all__ = [
    "DesignSpace",
    "Parameter",
    "SizingTask",
    "Spec",
    "Target",
    "FigureOfMerit",
    "TotalDesignSet",
    "EliteSet",
    "MAOptConfig",
    "VariantPreset",
    "MAOptimizer",
    "OptimizationResult",
    "EvaluationRecord",
]
