"""Configuration for the MA-Opt optimizer family.

:class:`VariantPreset` encodes the four RL-inspired frameworks compared in
the paper's evaluation (see DESIGN.md for the naming note on MA-Opt2):

=========  ======  ==========  =============
variant    actors  elite set   near-sampling
=========  ======  ==========  =============
DNN-Opt    1       single      no
MA-Opt1    3       individual  no
MA-Opt2    3       shared      no
MA-Opt     3       shared      yes
=========  ======  ==========  =============
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace


class VariantPreset(enum.Enum):
    """The paper's algorithm variants."""

    DNN_OPT = "dnn-opt"
    MA_OPT_1 = "ma-opt1"
    MA_OPT_2 = "ma-opt2"
    MA_OPT = "ma-opt"


@dataclass
class ResilienceConfig:
    """Failure policy + checkpoint cadence for long optimization runs.

    Consumed by :class:`~repro.core.parallel.SimulationExecutor` (retry /
    timeout / quarantine) and :class:`~repro.core.ma_opt.MAOptimizer`
    (checkpoint cadence); see ``docs/resilience.md`` for the full
    semantics.  The default instance retries nothing but still quarantines
    failed and non-finite simulations instead of aborting the run.
    """

    # retry policy (per simulation)
    max_retries: int = 0
    backoff_base_s: float = 0.0   # delay before retry k is base * factor**k
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5   # deterministic jitter, fraction of delay

    # pool-path watchdog: per-simulation-attempt seconds.  A timed-out (or
    # crashed) worker costs one attempt; the pool is rebuilt and only the
    # unaccounted designs are re-dispatched.  ``None`` disables the
    # watchdog (and with it hang/crash recovery).
    sim_timeout_s: float | None = None

    # graceful degradation
    quarantine_failures: bool = True   # False -> re-raise after retries
    quarantine_nonfinite: bool = True  # NaN/Inf metrics count as failures

    # checkpoint cadence (consumed by the optimizers' run() loops)
    checkpoint_every: int = 0          # rounds between snapshots; 0 = off
    checkpoint_path: str | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_jitter < 0:
            raise ValueError("backoff parameters must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.sim_timeout_s is not None and self.sim_timeout_s <= 0:
            raise ValueError("sim_timeout_s must be positive (or None)")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")


#: Priority lanes of the job service scheduler, highest first.  Within a
#: lane jobs run in submission (FIFO) order.
PRIORITY_LANES = ("high", "normal", "low")


@dataclass
class ServeConfig:
    """Scheduler limits for the optimization job service (:mod:`repro.serve`).

    Consumed by :class:`~repro.serve.jobs.JobManager`: ``max_workers``
    bounds how many jobs run concurrently (each job owns its own
    :class:`~repro.core.parallel.SimulationExecutor`, so this also bounds
    process-pool fan-out), ``tenant_cap`` keeps one tenant from starving
    the others, and ``checkpoint_every`` sets the per-job checkpoint
    cadence that makes ``ma-opt serve --resume`` lossless.
    """

    max_workers: int = 2       # jobs running concurrently
    tenant_cap: int = 2        # running jobs per tenant (<= max_workers)
    checkpoint_every: int = 1  # rounds between job checkpoints (MA family)
    poll_s: float = 0.05       # scheduler wake-up cadence when idle
    drain_timeout_s: float = 30.0  # max wait for in-flight jobs on stop()

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.tenant_cap < 1:
            raise ValueError("tenant_cap must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")


@dataclass
class MAOptConfig:
    """Hyper-parameters for :class:`repro.core.ma_opt.MAOptimizer`.

    Paper-stated values: ``n_actors=3``, ``t_ns=5``, ``ns_samples=2000``,
    2x100 hidden layers.  Values the paper leaves unstated (elite-set size,
    learning rates, per-round step counts, near-sampling radius) use
    DNN-Opt-style defaults and are exercised by the ablation benches.
    """

    # architecture (Section II-B)
    n_actors: int = 3
    shared_elite: bool = True
    hidden: tuple[int, ...] = (100, 100)
    # Maximum |dx| per dimension in normalized units.  The paper does not
    # state its action bound; 0.2 is calibrated on the circuit tasks (large
    # bounds make every proposal a teleport and stall convergence).
    action_scale: float = 0.2

    # elite solution set
    n_elite: int = 16

    # extensions beyond the paper's defaults
    n_critics: int = 1          # >1 enables the critic ensemble the paper
                                # considered and rejected (memory cost)
    proposal_noise: float = 0.0  # DDPG-style exploration noise on proposals
    ucb_beta: float = 0.0        # ensemble-UCB exploration (needs n_critics>1)

    # near-sampling (Section II-C)
    near_sampling: bool = True
    t_ns: int = 5
    ns_phase: int = 0          # the "k" in (t mod T_NS) == k
    ns_samples: int = 2000
    ns_radius: float = 0.04    # per-dimension, in normalized units
    ns_margin: float = 0.05    # constraint safety margin during NS ranking

    # training (Eqs. 4-5)
    critic_lr: float = 1e-3
    actor_lr: float = 2e-3
    critic_steps: int = 80
    actor_steps: int = 40
    batch_size: int = 64
    lambda_viol: float = 10.0
    identity_fraction: float = 0.1
    # State distribution for actor training batches: "elite" focuses the
    # policy on the region the elite set restricts the search to, "total"
    # draws uniformly from every simulated design, "mixed" does both 50/50.
    actor_train_on: str = "mixed"
    # Equalize training compute per *simulation* across variants: a round
    # consumes n_actors simulations, so the critic gets n_actors x
    # critic_steps updates per round.  Without this, multi-actor variants
    # would see 1/n_actors of DNN-Opt's surrogate training for the same
    # simulation budget — an artifact, not the paper's comparison.
    scale_training_with_actors: bool = True
    # Minimum distance (normalized space) between same-round proposals.
    proposal_min_dist: float = 0.05

    # execution
    parallel: bool = False     # multiprocessing over actors (Section II-B)
    # Pooled-batch heartbeat cadence in seconds (0 = off): while a pool
    # batch is in flight, heartbeat run events keep stalls visible to
    # ``ma-opt tail`` and other event-stream consumers.
    heartbeat_s: float = 0.0
    seed: int | None = None

    # failure policy + checkpoint cadence; None keeps the legacy behavior
    # (no retries, no quarantine layer, no checkpoints).
    resilience: ResilienceConfig | None = None

    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_actors < 1:
            raise ValueError("need at least one actor")
        if self.n_elite < 1:
            raise ValueError("elite set size must be >= 1")
        if self.t_ns < 1:
            raise ValueError("t_ns must be >= 1")
        if not 0 <= self.ns_phase < self.t_ns:
            raise ValueError("ns_phase must be in [0, t_ns)")
        if self.ns_samples < 1 or self.ns_radius <= 0:
            raise ValueError("bad near-sampling parameters")
        if min(self.critic_steps, self.actor_steps, self.batch_size) < 1:
            raise ValueError("training step counts and batch size must be >= 1")
        if self.n_critics < 1:
            raise ValueError("need at least one critic")
        if self.actor_train_on not in ("elite", "total", "mixed"):
            raise ValueError(
                "actor_train_on must be 'elite', 'total' or 'mixed'")
        if self.proposal_noise < 0:
            raise ValueError("proposal_noise must be >= 0")
        if self.ucb_beta < 0:
            raise ValueError("ucb_beta must be >= 0")
        if self.ucb_beta > 0 and self.n_critics < 2:
            raise ValueError("ucb_beta requires a critic ensemble "
                             "(n_critics >= 2)")
        if self.heartbeat_s < 0:
            raise ValueError("heartbeat_s must be >= 0")

    def to_dict(self) -> dict:
        """JSON-safe dict (checkpoint headers); inverse of :meth:`from_dict`.

        ``extras`` must hold JSON-serializable values for the round trip.
        """
        d = asdict(self)
        d["hidden"] = list(self.hidden)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "MAOptConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        d = dict(data)
        d["hidden"] = tuple(d.get("hidden", (100, 100)))
        if d.get("resilience") is not None:
            d["resilience"] = ResilienceConfig(**d["resilience"])
        return cls(**d)

    @classmethod
    def from_preset(cls, preset: VariantPreset | str, **overrides) -> "MAOptConfig":
        """Build the configuration for one of the paper's variants."""
        if isinstance(preset, str):
            preset = VariantPreset(preset)
        base = cls(seed=overrides.pop("seed", None))
        if preset is VariantPreset.DNN_OPT:
            cfg = replace(base, n_actors=1, shared_elite=True, near_sampling=False)
        elif preset is VariantPreset.MA_OPT_1:
            cfg = replace(base, n_actors=3, shared_elite=False, near_sampling=False)
        elif preset is VariantPreset.MA_OPT_2:
            cfg = replace(base, n_actors=3, shared_elite=True, near_sampling=False)
        else:
            cfg = replace(base, n_actors=3, shared_elite=True, near_sampling=True)
        return replace(cfg, **overrides) if overrides else cfg
