"""The figure-of-merit function g(.) — Eq. 2 of the paper.

    g[f(x)] = w0 * f0(x) + sum_i min(1, max(0, w_i * v_i(x)))

where ``v_i`` is the *relative* violation of constraint i (positive iff
violated).  Feasible designs therefore compete purely on the (weighted)
target metric, while each violated constraint contributes up to 1.

The class also provides the analytic (sub)gradient of g with respect to the
metric vector, which actor training back-propagates through the critic
(Eq. 5).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SizingTask


class FigureOfMerit:
    """Evaluates g(.) and its gradient over metric vectors."""

    def __init__(self, task: SizingTask) -> None:
        self.task = task
        self._w0 = task.target.weight
        self._weights = np.array([s.weight for s in task.specs])
        self._bounds = np.array([s.bound for s in task.specs])
        self._signs = np.array([+1.0 if s.kind == ">" else -1.0 for s in task.specs])

    @property
    def m(self) -> int:
        return len(self._weights)

    def violations(self, metrics: np.ndarray) -> np.ndarray:
        """Relative violations v_i (positive iff violated), batched.

        ``metrics`` has shape (..., m+1): column 0 is the target.
        """
        metrics = np.asarray(metrics, dtype=float)
        f = metrics[..., 1:]
        return self._signs * (self._bounds - f) / np.abs(self._bounds)

    def __call__(self, metrics: np.ndarray) -> np.ndarray | float:
        """g(.) for one metric vector or a batch (shape (..., m+1))."""
        metrics = np.asarray(metrics, dtype=float)
        scalar = metrics.ndim == 1
        batch = np.atleast_2d(metrics)
        if batch.shape[-1] != self.m + 1:
            raise ValueError(
                f"expected metric vectors of length {self.m + 1}, "
                f"got {batch.shape[-1]}"
            )
        penalty = np.minimum(
            1.0, np.maximum(0.0, self._weights * self.violations(batch))
        ).sum(axis=-1)
        g = self._w0 * batch[..., 0] + penalty
        return float(g[0]) if scalar else g

    def gradient(self, metrics: np.ndarray) -> np.ndarray:
        """(Sub)gradient dg/d(metrics), same shape as ``metrics``.

        Inside the active band ``0 < w_i v_i < 1`` the penalty term has
        slope ``-w_i * sign_i / |c_i|`` with respect to the raw metric; at
        the clip boundaries the subgradient is 0.
        """
        metrics = np.asarray(metrics, dtype=float)
        scalar = metrics.ndim == 1
        batch = np.atleast_2d(metrics)
        grad = np.zeros_like(batch)
        grad[..., 0] = self._w0
        wv = self._weights * self.violations(batch)
        active = (wv > 0.0) & (wv < 1.0)
        slope = -self._weights * self._signs / np.abs(self._bounds)
        grad[..., 1:] = np.where(active, slope, 0.0)
        return grad[0] if scalar else grad

    def with_margin(self, metrics: np.ndarray, margin: float) -> np.ndarray:
        """Return metrics shifted *against* each constraint by
        ``margin * |bound|`` — evaluating g(.) on the result selects designs
        that satisfy the specs with a safety margin.  Used by near-sampling
        to avoid betting simulations on candidates the critic places exactly
        on the predicted feasibility boundary."""
        if margin < 0:
            raise ValueError("margin must be >= 0")
        out = np.array(metrics, dtype=float, copy=True)
        out[..., 1:] -= self._signs * margin * np.abs(self._bounds)
        return out

    def is_feasible(self, metrics: np.ndarray) -> np.ndarray | bool:
        """Feasibility mask from metric vectors (batched or single)."""
        v = self.violations(np.atleast_2d(metrics))
        feas = np.all(v <= 0.0, axis=-1)
        return bool(feas[0]) if np.asarray(metrics).ndim == 1 else feas
