"""MA-Opt optimizer: Algorithms 1 and 3 of the paper.

One *round* is either

* an **optimization round** (Alg. 1): refresh the critic on pseudo-samples
  (Eq. 3/4), train every actor against the critic + elite-box penalty
  (Eq. 5/6), then let each actor propose one design — the actor-predicted
  best successor of an elite state — and simulate it (``n_actors``
  simulations per round); or
* a **near-sampling round** (Alg. 2): one simulation of the critic-ranked
  best neighbour of the incumbent optimum.

Alg. 3 alternates: optimization rounds until the specs are met, then
near-sampling every ``t_ns``-th round.  All four paper variants (DNN-Opt,
MA-Opt1, MA-Opt2, MA-Opt) are this class under different
:class:`~repro.core.config.MAOptConfig` presets.

Observability: the optimizer accepts a :class:`~repro.obs.Telemetry`
bundle and/or a list of :class:`~repro.obs.ObserverProtocol` observers.
Every simulation flows through the instrumented
:class:`~repro.core.parallel.SimulationExecutor`; every round and every
evaluation emits one structured event on the run log (see
``docs/observability.md``).  The legacy :attr:`MAOptimizer.diagnostics`
list is now a read-only view over the ``round_end`` events.
"""

from __future__ import annotations

import pathlib
import time
from typing import Any, Iterable

import numpy as np

from repro.analysis.configlint import check_config, validate_config
from repro.core.config import MAOptConfig
from repro.core.fom import FigureOfMerit
from repro.core.near_sampling import near_sampling_proposal
from repro.core.networks import Actor, Critic, CriticEnsemble
from repro.core.parallel import SimulationExecutor
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.problem import SizingTask
from repro.core.result import EvaluationRecord, OptimizationResult
from repro.core.training import propose_design, train_actor, train_critic
from repro.obs import NULL_TELEMETRY, RunLogger, Telemetry


class MAOptimizer:
    """The MA-Opt family optimizer (see module docstring)."""

    def __init__(self, task: SizingTask, config: MAOptConfig | None = None,
                 telemetry: Telemetry | None = None,
                 observers: Iterable[Any] = ()) -> None:
        self.task = task
        self.config = config or MAOptConfig()
        self.obs = telemetry or NULL_TELEMETRY
        self._observers = self.obs.observers.extended(observers)
        # The run log always exists (in-memory) — it backs `diagnostics`;
        # a telemetry-supplied RunLogger additionally gets JSONL/logging.
        # (`is None` check: an empty RunLogger is falsy via __len__.)
        self.run_log = (self.obs.run_logger
                        if self.obs.run_logger is not None else RunLogger())
        # Config cross-validation (repro.analysis.configlint): errors that
        # are knowable without the simulation budget raise here, before any
        # state is built; warnings become config_warning run events.
        for diag in validate_config(self.config, task=task):
            self.run_log.emit("config_warning", rule=diag.rule,
                              message=diag.message, fix=diag.fix)
        self.rng = np.random.default_rng(self.config.seed)
        self.fom = FigureOfMerit(task)
        n_metrics = task.m + 1
        self.total = TotalDesignSet(task.d, n_metrics)
        seed_seq = np.random.SeedSequence(self.config.seed)
        child_seeds = seed_seq.spawn(self.config.n_actors + 1)
        critic_seed = int(child_seeds[0].generate_state(1)[0])
        log_mask = task.metric_log_mask
        log_floors = task.metric_log_floors
        if self.config.n_critics > 1:
            self.critic = CriticEnsemble(
                task.d, n_metrics, self.config.n_critics,
                hidden=self.config.hidden, lr=self.config.critic_lr,
                seed=critic_seed, log_mask=log_mask, log_floors=log_floors,
            )
        else:
            self.critic = Critic(
                task.d, n_metrics, hidden=self.config.hidden,
                lr=self.config.critic_lr, seed=critic_seed,
                log_mask=log_mask, log_floors=log_floors,
            )
        self.actors = [
            Actor(task.d, hidden=self.config.hidden, lr=self.config.actor_lr,
                  action_scale=self.config.action_scale,
                  seed=int(child_seeds[i + 1].generate_state(1)[0]))
            for i in range(self.config.n_actors)
        ]
        # Elite views: the global view always ranks everything; per-actor
        # views implement Fig. 2's shared/individual distinction.
        self.global_elite = EliteSet(self.total, self.config.n_elite, owner=None)
        if self.config.shared_elite:
            self.actor_elites = [self.global_elite] * self.config.n_actors
        else:
            self.actor_elites = [
                EliteSet(self.total, self.config.n_elite, owner=i)
                for i in range(self.config.n_actors)
            ]
        self._executor = SimulationExecutor(
            task, n_workers=self.config.n_actors if self.config.parallel else 0,
            telemetry=self.obs, resilience=self.config.resilience,
            heartbeat_s=self.config.heartbeat_s,
        )
        self._round = 0
        self._records: list[EvaluationRecord] = []
        self._init_best_fom = np.inf
        self._initialized = False
        self._t0: float | None = None

    @property
    def records(self) -> list[EvaluationRecord]:
        """Evaluation records accumulated so far (copy; one per sim)."""
        return list(self._records)

    @property
    def diagnostics(self) -> list[dict]:
        """Per-round research diagnostics (critic loss, elite-box width, ...).

        Backward-compatible view over the run log's ``round_end`` events —
        same dicts as the pre-telemetry ad-hoc list.
        """
        return [dict(e.payload) for e in self.run_log.events("round_end")]

    # -- initialization ------------------------------------------------------
    def initialize(self, n_init: int = 100,
                   x_init: np.ndarray | None = None,
                   f_init: np.ndarray | None = None) -> None:
        """Load or simulate the initial sample set X^init.

        Passing the same ``(x_init, f_init)`` arrays to several optimizers
        reproduces the paper's shared-initial-set protocol.
        """
        if self._initialized:
            raise RuntimeError("optimizer already initialized")
        if x_init is None:
            x_init = self.task.space.sample(self.rng, n_init)
            f_init = None
        x_init = np.atleast_2d(np.asarray(x_init, dtype=float))
        if f_init is None:
            f_init = self._executor.evaluate_batch(x_init, kind="init")
        f_init = np.atleast_2d(np.asarray(f_init, dtype=float))
        if len(f_init) != len(x_init):
            raise ValueError("x_init and f_init lengths differ")
        for x, f in zip(x_init, f_init):
            g = float(self.fom(f))
            self.total.add(x, f, g, owner=None)
            self._init_best_fom = min(self._init_best_fom, g)
            self.run_log.emit("evaluation", kind="init", fom=g,
                              feasible=bool(self.task.is_feasible(f)))
        self._initialized = True

    # -- single round ----------------------------------------------------------
    def _specs_met(self) -> bool:
        metrics = self.total.metrics
        if len(metrics) == 0:
            return False
        return bool(np.any(self.fom.is_feasible(metrics)))

    def _start_clock(self) -> None:
        # t_wall convention (shared with baselines/base.py): the clock
        # starts when the first post-init round begins, before any
        # training or proposal work.
        if self._t0 is None:
            self._t0 = time.perf_counter()

    def _record(self, x: np.ndarray, metrics: np.ndarray, kind: str,
                owner: int | None) -> EvaluationRecord:
        g = float(self.fom(metrics))
        self.total.add(x, metrics, g, owner=owner)
        self._start_clock()
        rec = EvaluationRecord(
            index=len(self._records), x=np.asarray(x, dtype=float).copy(),
            metrics=np.asarray(metrics, dtype=float).copy(), fom=g, kind=kind,
            owner=owner, feasible=self.task.is_feasible(metrics),
            t_wall=time.perf_counter() - self._t0,
        )
        self._records.append(rec)
        self.run_log.emit("evaluation", index=rec.index, kind=kind,
                          owner=owner, fom=g, feasible=bool(rec.feasible),
                          t_wall=rec.t_wall)
        self._observers.emit("on_evaluation", self, rec)
        return rec

    def optimization_round(self, budget: int | None = None
                           ) -> list[EvaluationRecord]:
        """Alg. 1: critic + actor training, then one proposal per actor."""
        self._start_clock()
        cfg = self.config
        n_propose = cfg.n_actors if budget is None else min(cfg.n_actors, budget)
        self.run_log.emit("round_start", round=self._round, kind="actor",
                          n_propose=n_propose)
        self._observers.emit("on_round_start", self, self._round, "actor")
        with self.obs.span("round", index=self._round, kind="actor"):
            critic_steps = cfg.critic_steps * (
                n_propose if cfg.scale_training_with_actors else 1)
            critic_loss = train_critic(self.critic, self.total, critic_steps,
                                       cfg.batch_size, self.rng,
                                       telemetry=self.obs)
            actor_losses: list[float] = []
            proposals: list[tuple[int, np.ndarray]] = []
            for i in range(n_propose):
                actor_losses.append(train_actor(
                    self.actors[i], self.critic, self.fom, self.total,
                    self.actor_elites[i], cfg.actor_steps, cfg.batch_size,
                    cfg.lambda_viol, self.rng,
                    train_on=cfg.actor_train_on,
                    telemetry=self.obs, actor_index=i))
                proposal = propose_design(self.actors[i], self.critic,
                                          self.fom, self.actor_elites[i],
                                          exclude=[p for _, p in proposals],
                                          min_dist=cfg.proposal_min_dist,
                                          ucb_beta=cfg.ucb_beta,
                                          telemetry=self.obs)
                if cfg.proposal_noise > 0:
                    proposal = np.clip(
                        proposal + self.rng.normal(0.0, cfg.proposal_noise,
                                                   size=proposal.shape),
                        0.0, 1.0,
                    )
                proposals.append((i, proposal))
            designs = np.array([p[1] for p in proposals])
            metrics = self._executor.evaluate_batch(designs, kind="actor")
            records = [
                self._record(x, f, kind="actor", owner=i)
                for (i, x), f in zip(proposals, metrics)
            ]
        lb, ub = self.global_elite.bounds()
        info = {
            "round": self._round,
            "kind": "actor",
            "critic_loss": critic_loss,
            "actor_losses": actor_losses,
            "elite_box_width": float(np.mean(ub - lb)),
            "best_fom": float(self.total.foms.min()),
        }
        self.obs.set_gauge("elite_box_width", info["elite_box_width"])
        self.obs.set_gauge("best_fom", info["best_fom"])
        self.run_log.emit("round_end", **info)
        self._observers.emit("on_round_end", self, self._round, info)
        return records

    def near_sampling_round(self) -> EvaluationRecord:
        """Alg. 2: simulate the critic-predicted best near-neighbour of the
        incumbent best design."""
        self._start_clock()
        self.run_log.emit("round_start", round=self._round, kind="ns")
        self._observers.emit("on_round_start", self, self._round, "ns")
        with self.obs.span("round", index=self._round, kind="ns"):
            x_opt, _ = self.global_elite.best()
            candidate = near_sampling_proposal(
                self.critic, self.fom, x_opt, self.config.ns_radius,
                self.config.ns_samples, self.rng,
                margin=self.config.ns_margin,
                telemetry=self.obs,
            )
            metrics = self._executor.evaluate_batch(candidate, kind="ns")[0]
            record = self._record(candidate, metrics, kind="ns", owner=None)
        info = {
            "round": self._round,
            "kind": "ns",
            "improved": bool(record.fom < self.total.foms[:-1].min()),
            "best_fom": float(self.total.foms.min()),
        }
        self.obs.set_gauge("best_fom", info["best_fom"])
        self.run_log.emit("round_end", **info)
        self._observers.emit("on_round_end", self, self._round, info)
        return record

    def step(self, budget: int | None = None) -> list[EvaluationRecord]:
        """One Alg. 3 round; returns the new evaluation records."""
        if not self._initialized:
            raise RuntimeError("call initialize() first")
        self._round += 1
        use_ns = (
            self.config.near_sampling
            and self._specs_met()
            and self._round % self.config.t_ns == self.config.ns_phase
        )
        if use_ns:
            return [self.near_sampling_round()]
        return self.optimization_round(budget=budget)

    # -- full run -----------------------------------------------------------
    def run(self, n_sims: int = 200, n_init: int = 100,
            x_init: np.ndarray | None = None,
            f_init: np.ndarray | None = None,
            method_name: str | None = None,
            checkpoint_path: str | None = None,
            checkpoint_every: int | None = None,
            should_stop: Any = None) -> OptimizationResult:
        """Alg. 3: run until ``n_sims`` post-init simulations are spent.

        When a checkpoint path is configured (either here or on
        ``config.resilience``) the run snapshots its full state every
        ``checkpoint_every`` rounds plus once at the end, so a killed run
        resumes bit-exactly via :meth:`restore`.  A restored optimizer
        continues toward ``n_sims`` from the records it already holds.

        ``should_stop`` is the cooperative-cancellation hook used by the
        job service (:mod:`repro.serve`): a zero-argument callable polled
        between rounds.  When it returns a truthy reason string the run
        stops early — a final checkpoint is still written, the ``run_end``
        event carries ``stopped=<reason>``, and the result's
        ``meta["stopped"]`` records why.  Observers see ``on_run_stopped``
        instead of ``on_run_end`` so run-store recorders can seal the
        record with the right status (cancelled/interrupted) instead of
        "finished".
        """
        res_cfg = self.config.resilience
        ckpt_path = checkpoint_path or (
            res_cfg.checkpoint_path if res_cfg is not None else None)
        if checkpoint_every is not None:
            ckpt_every = checkpoint_every
        else:
            ckpt_every = res_cfg.checkpoint_every if res_cfg is not None else 0
        start = time.perf_counter()
        name = method_name or self._default_name()
        run_id = self.obs.run_id
        if run_id is None:
            from repro.obs.store import new_run_id
            run_id = new_run_id()
            if self.obs is not NULL_TELEMETRY:  # the shared default is
                self.obs.run_id = run_id        # immutable by contract
        self.run_log.emit("run_start", method=name, task=self.task.name,
                          n_sims=n_sims, run_id=run_id)
        # Budget-aware config checks: logged, never raised — a deliberate
        # tiny-budget run (tests, smoke runs) must not be blocked here.
        n_have = len(self.total.foms) if self._initialized else n_init
        for diag in check_config(self.config, task=self.task,
                                 n_sims=n_sims, n_init=n_have):
            self.run_log.emit("config_warning", rule=diag.rule,
                              severity=str(diag.severity),
                              message=diag.message, fix=diag.fix)
        stop_reason: str | None = None
        with self.obs.span("run", method=name, task=self.task.name,
                           run_id=run_id):
            with self._executor:
                if not self._initialized:
                    self.initialize(n_init=n_init, x_init=x_init,
                                    f_init=f_init)
                while len(self._records) < n_sims:
                    if should_stop is not None:
                        stop_reason = should_stop() or None
                        if stop_reason:
                            self.run_log.emit("run_stopped",
                                              reason=stop_reason,
                                              round=self._round,
                                              n_sims=len(self._records))
                            break
                    self.step(budget=n_sims - len(self._records))
                    if (ckpt_path and ckpt_every
                            and self._round % ckpt_every == 0):
                        self.save_checkpoint(ckpt_path)
            if ckpt_path:
                self.save_checkpoint(ckpt_path)
        meta = {"rounds": self._round, "config": self.config,
                "diagnostics": self.diagnostics, "run_id": run_id}
        if stop_reason:
            meta["stopped"] = stop_reason
        result = OptimizationResult(
            task_name=self.task.name,
            method=name,
            records=list(self._records),
            init_best_fom=self._init_best_fom,
            wall_time_s=time.perf_counter() - start,
            meta=meta,
        )
        end_info = dict(method=name, n_sims=len(self._records),
                        best_fom=result.best_fom, success=result.success,
                        wall_time_s=result.wall_time_s, run_id=run_id)
        if stop_reason:
            end_info["stopped"] = stop_reason
        self.run_log.emit("run_end", **end_info)
        # A stopped run is not a finished run: recorders must not seal the
        # record as "finished" when the service cancelled or interrupted it.
        if stop_reason:
            self._observers.emit("on_run_stopped", self, result, stop_reason)
        else:
            self._observers.emit("on_run_end", self, result)
        return result

    # -- checkpoint / resume -------------------------------------------------
    def save_checkpoint(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically snapshot the full optimizer state to ``path``.

        The snapshot is bit-exact: dataset, records, actor/critic weights,
        Adam moments, RNG state, round counter, and the wall-clock offset.
        See ``docs/resilience.md`` for the format.
        """
        from repro.resilience.checkpoint import save_checkpoint
        from repro.resilience.state import (capture_actor, capture_critic,
                                            rng_state)

        recs = self._records
        header = {
            "kind": "maopt",
            "task": self.task.name,
            "d": self.task.d,
            "m": self.task.m,
            "method": self._default_name(),
            "config": self.config.to_dict(),
            "round": self._round,
            "initialized": self._initialized,
            "init_best_fom": self._init_best_fom,
            "rng_state": rng_state(self.rng),
            "t_offset": (None if self._t0 is None
                         else time.perf_counter() - self._t0),
        }
        arrays: dict[str, np.ndarray] = {
            "total/x": self.total.designs,
            "total/f": self.total.metrics,
            "total/fom": self.total.foms,
            "total/owner": np.array(
                [-1 if o is None else o for o in self.total.owners],
                dtype=int),
            "records/x": np.array([r.x for r in recs])
            if recs else np.empty((0, self.task.d)),
            "records/metrics": np.array([r.metrics for r in recs])
            if recs else np.empty((0, self.task.m + 1)),
            "records/fom": np.array([r.fom for r in recs]),
            "records/kind": np.array([r.kind for r in recs], dtype=np.str_)
            if recs else np.empty(0, dtype="U1"),
            "records/owner": np.array(
                [-1 if r.owner is None else r.owner for r in recs],
                dtype=int),
            "records/feasible": np.array([r.feasible for r in recs],
                                         dtype=bool),
            "records/t_wall": np.array([r.t_wall for r in recs]),
        }
        arrays.update(capture_critic("critic", self.critic))
        for i, actor in enumerate(self.actors):
            arrays.update(capture_actor(f"actor{i}", actor))
        final = save_checkpoint(path, header, arrays)
        self.run_log.emit("checkpoint_saved", path=str(final),
                          round=self._round, n_records=len(recs))
        self.obs.inc("checkpoints_total")
        self._observers.emit("on_checkpoint", self, final)
        return final

    @classmethod
    def restore(cls, path: str | pathlib.Path, task: SizingTask,
                telemetry: Telemetry | None = None,
                observers: Iterable[Any] = ()) -> "MAOptimizer":
        """Rebuild an optimizer from a :meth:`save_checkpoint` snapshot.

        ``task`` must be the same task the checkpoint was taken on (name
        and dimensions are verified); telemetry/observers are rewired
        fresh — the event stream is a side channel, not part of the
        checkpointed state.  Continuing with ``run(n_sims=...)`` replays
        the exact record stream an uninterrupted run would have produced.
        """
        from repro.resilience.checkpoint import load_checkpoint
        from repro.resilience.state import (restore_actor, restore_critic,
                                            set_rng_state)

        header, arrays = load_checkpoint(path)
        if header.get("kind") != "maopt":
            raise ValueError(f"{path} is not an MAOptimizer checkpoint")
        if (header["task"] != task.name or header["d"] != task.d
                or header["m"] != task.m):
            raise ValueError(
                f"checkpoint was taken on task {header['task']!r} "
                f"(d={header['d']}, m={header['m']}); got {task.name!r} "
                f"(d={task.d}, m={task.m})")
        config = MAOptConfig.from_dict(header["config"])
        opt = cls(task, config, telemetry=telemetry, observers=observers)
        for x, f, g, o in zip(arrays["total/x"], arrays["total/f"],
                              arrays["total/fom"], arrays["total/owner"]):
            opt.total.add(x, f, float(g), owner=None if o < 0 else int(o))
        for i in range(len(arrays["records/fom"])):
            o = int(arrays["records/owner"][i])
            opt._records.append(EvaluationRecord(
                index=i,
                x=np.array(arrays["records/x"][i]),
                metrics=np.array(arrays["records/metrics"][i]),
                fom=float(arrays["records/fom"][i]),
                kind=str(arrays["records/kind"][i]),
                owner=None if o < 0 else o,
                feasible=bool(arrays["records/feasible"][i]),
                t_wall=float(arrays["records/t_wall"][i]),
            ))
        restore_critic("critic", opt.critic, arrays)
        for i, actor in enumerate(opt.actors):
            restore_actor(f"actor{i}", actor, arrays)
        set_rng_state(opt.rng, header["rng_state"])
        opt._round = int(header["round"])
        opt._initialized = bool(header["initialized"])
        opt._init_best_fom = float(header["init_best_fom"])
        t_offset = header.get("t_offset")
        opt._t0 = (None if t_offset is None
                   else time.perf_counter() - float(t_offset))
        opt.run_log.emit("checkpoint_restored", path=str(path),
                         round=opt._round, n_records=len(opt._records))
        return opt

    def _default_name(self) -> str:
        cfg = self.config
        if cfg.n_actors == 1 and not cfg.near_sampling:
            return "DNN-Opt"
        if not cfg.shared_elite:
            return "MA-Opt1"
        if not cfg.near_sampling:
            return "MA-Opt2"
        return "MA-Opt"
