"""The near-sampling method — Alg. 2 and Fig. 3 of the paper.

Exploitation step: sample ``N_samples`` designs uniformly inside a small
per-dimension box around the incumbent best design ``x_opt``, rank them
with the critic (one batched forward pass — no simulations), and simulate
only the predicted-best candidate.  The caller replaces ``x_opt`` if the
simulated FoM improves (that replacement is implicit here because every
simulated design enters X^tot, from which bests are derived).
"""

from __future__ import annotations

import numpy as np

from repro.core.fom import FigureOfMerit
from repro.core.networks import Critic
from repro.obs import NULL_TELEMETRY, Telemetry


def near_sample_candidates(x_opt: np.ndarray, radius: np.ndarray | float,
                           n_samples: int, rng: np.random.Generator
                           ) -> np.ndarray:
    """X^NS: uniform samples in ``[x_opt - delta, x_opt + delta]`` clipped to
    the unit cube; shape (n_samples, d)."""
    x_opt = np.asarray(x_opt, dtype=float).ravel()
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    delta = np.broadcast_to(np.asarray(radius, dtype=float), x_opt.shape)
    if np.any(delta <= 0):
        raise ValueError("sampling radius must be positive")
    lo = np.clip(x_opt - delta, 0.0, 1.0)
    hi = np.clip(x_opt + delta, 0.0, 1.0)
    return rng.uniform(lo, hi, size=(n_samples, x_opt.size))


def near_sampling_proposal(critic: Critic, fom: FigureOfMerit,
                           x_opt: np.ndarray, radius: np.ndarray | float,
                           n_samples: int, rng: np.random.Generator,
                           margin: float = 0.0,
                           telemetry: Telemetry | None = None) -> np.ndarray:
    """Alg. 2 lines 2-7: return x_opt^predicted, the critic-predicted best
    of the near-sampling set (to be SPICE-simulated by the caller).

    ``margin`` tightens every predicted constraint by that fraction of its
    bound during ranking: the critic's local constraint estimates carry a
    few percent of error, and ranking at zero margin systematically selects
    candidates that are predicted-feasible but actually infeasible.
    """
    x_opt = np.asarray(x_opt, dtype=float).ravel()
    obs = telemetry or NULL_TELEMETRY
    with obs.span("near-sampling", n_samples=n_samples):
        candidates = near_sample_candidates(x_opt, radius, n_samples, rng)
        states = np.broadcast_to(x_opt, candidates.shape)
        metrics = critic.predict(states, candidates - states)
        if margin > 0:
            metrics = fom.with_margin(metrics, margin)
        g = fom(metrics)
        return candidates[int(np.argmin(g))]
