"""Actor and critic networks (Section II-B of the paper).

Both are 2-hidden-layer, 100-unit MLPs by default (the paper's setting).

* The **critic** is a regression model of the SPICE simulator: input
  ``(x, dx)`` in the doubled design space, output the m+1 metrics of
  ``x + dx``.  Metrics are z-scored internally (the scaler is refreshed
  from X^tot each round) so widely different metric units train stably;
  predictions are returned in raw units.
* Each **actor** maps a design x to an action dx = mu(x | theta) in
  ``[-1, 1]^d`` (tanh output), interpreted in the normalized design cube.
"""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Adam


class MetricScaler:
    """Z-score scaler over metric vectors, with optional per-column log10.

    Columns flagged in ``log_mask`` are regressed as ``log10(max(x, floor))``
    — the right representation for positive metrics spanning decades
    (frequencies, settling times, noise densities).  ``inverse`` maps network
    outputs back to raw units, and :meth:`jacobian_from_raw` supplies the
    chain-rule factor actor training needs.
    """

    def __init__(self, n_metrics: int,
                 log_mask: np.ndarray | None = None,
                 log_floors: np.ndarray | None = None) -> None:
        self.mean = np.zeros(n_metrics)
        self.std = np.ones(n_metrics)
        self.log_mask = (np.zeros(n_metrics, dtype=bool) if log_mask is None
                         else np.asarray(log_mask, dtype=bool))
        self.log_floors = (np.full(n_metrics, 1e-15) if log_floors is None
                           else np.asarray(log_floors, dtype=float))
        if self.log_mask.shape != (n_metrics,):
            raise ValueError("log_mask length mismatch")

    def _pre(self, metrics: np.ndarray) -> np.ndarray:
        out = np.array(metrics, dtype=float, copy=True)
        if self.log_mask.any():
            cols = self.log_mask
            out[..., cols] = np.log10(
                np.maximum(out[..., cols], self.log_floors[cols]))
        return out

    def _post(self, pre: np.ndarray) -> np.ndarray:
        out = np.array(pre, dtype=float, copy=True)
        if self.log_mask.any():
            cols = self.log_mask
            out[..., cols] = 10.0 ** np.clip(out[..., cols], -300, 300)
        return out

    def fit(self, metrics: np.ndarray) -> None:
        pre = self._pre(np.atleast_2d(metrics))
        self.mean = pre.mean(axis=0)
        std = pre.std(axis=0)
        self.std = np.where(std < 1e-12, 1.0, std)

    def transform(self, metrics: np.ndarray) -> np.ndarray:
        return (self._pre(metrics) - self.mean) / self.std

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        return self._post(scaled * self.std + self.mean)

    def jacobian_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Elementwise ``d raw / d scaled`` evaluated at raw predictions."""
        jac = np.broadcast_to(self.std, np.shape(raw)).copy()
        if self.log_mask.any():
            cols = self.log_mask
            jac[..., cols] *= np.abs(raw[..., cols]) * np.log(10.0)
        return jac


class Critic:
    """Q(x, dx | theta^Q): simulator surrogate over pseudo-samples."""

    def __init__(self, d: int, n_metrics: int,
                 hidden: tuple[int, ...] = (100, 100),
                 lr: float = 1e-3, seed: int | None = None,
                 log_mask: np.ndarray | None = None,
                 log_floors: np.ndarray | None = None) -> None:
        self.d = d
        self.n_metrics = n_metrics
        self.net = MLP([2 * d, *hidden, n_metrics], activation="relu", seed=seed)
        self.opt = Adam(self.net.parameters(), lr=lr)
        self.scaler = MetricScaler(n_metrics, log_mask=log_mask,
                                   log_floors=log_floors)

    def fit_scaler(self, metrics: np.ndarray) -> None:
        """Refresh the metric z-scaler from the current total design set."""
        self.scaler.fit(metrics)

    def predict(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        """Predicted raw metric vectors for designs ``x`` with actions ``dx``."""
        x = np.atleast_2d(x)
        dx = np.atleast_2d(dx)
        if x.shape != dx.shape or x.shape[1] != self.d:
            raise ValueError("x and dx must both have shape (n, d)")
        scaled = self.net.forward(np.concatenate([x, dx], axis=1))
        return self.scaler.inverse(scaled)

    def train_step(self, inputs: np.ndarray, raw_targets: np.ndarray) -> float:
        """One MSE step on (pseudo-sample) pairs; returns the loss (Eq. 4)."""
        targets = self.scaler.transform(np.atleast_2d(raw_targets))
        pred = self.net.forward(np.atleast_2d(inputs))
        diff = pred - targets
        loss = float(np.mean(diff**2))
        grad = (2.0 / diff.size) * diff
        self.net.zero_grad()
        self.net.backward(grad)
        self.opt.step()
        return loss


class CriticEnsemble:
    """An ensemble of critics with the single-critic interface.

    The paper notes that multiple critics "do improve optimization but
    consume more memory"; this class makes that trade-off testable (see the
    multi-critic ablation bench).  Predictions are member means; members
    share each training batch but are decorrelated by their independent
    initializations; gradients w.r.t. inputs are the mean of member
    gradients, so actor training works unchanged.
    """

    def __init__(self, d: int, n_metrics: int, n_members: int,
                 hidden: tuple[int, ...] = (100, 100),
                 lr: float = 1e-3, seed: int | None = None,
                 log_mask: np.ndarray | None = None,
                 log_floors: np.ndarray | None = None) -> None:
        if n_members < 1:
            raise ValueError("ensemble needs at least one member")
        seeds = np.random.SeedSequence(seed).spawn(n_members)
        self.members = [
            Critic(d, n_metrics, hidden=hidden, lr=lr,
                   seed=int(s.generate_state(1)[0]),
                   log_mask=log_mask, log_floors=log_floors)
            for s in seeds
        ]
        self.d = d
        self.n_metrics = n_metrics
        # Shared scaler: members reference the same object.
        self.scaler = self.members[0].scaler
        for m in self.members[1:]:
            m.scaler = self.scaler
        # `net`-protocol facade used by actor training.
        self.net = self

    # -- Critic interface -----------------------------------------------------
    def fit_scaler(self, metrics: np.ndarray) -> None:
        self.scaler.fit(metrics)

    def predict(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        preds = [m.predict(x, dx) for m in self.members]
        return np.mean(preds, axis=0)

    def predict_std(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        """Epistemic spread across members (useful for exploration)."""
        preds = [m.predict(x, dx) for m in self.members]
        return np.std(preds, axis=0)

    def train_step(self, inputs: np.ndarray, raw_targets: np.ndarray) -> float:
        losses = [m.train_step(inputs, raw_targets) for m in self.members]
        return float(np.mean(losses))

    # -- `net` facade (forward/backward/zero_grad) -----------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.mean([m.net.forward(x) for m in self.members], axis=0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        share = grad_out / len(self.members)
        grads = [m.net.backward(share) for m in self.members]
        return np.sum(grads, axis=0)

    def zero_grad(self) -> None:
        for m in self.members:
            m.net.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.value.size for m in self.members
                   for p in m.net.parameters())


class Actor:
    """mu(x | theta^mu_i): proposes the change dx that improves design x."""

    def __init__(self, d: int, hidden: tuple[int, ...] = (100, 100),
                 lr: float = 1e-3, action_scale: float = 1.0,
                 seed: int | None = None) -> None:
        if action_scale <= 0:
            raise ValueError("action_scale must be positive")
        self.d = d
        self.action_scale = action_scale
        self.net = MLP([d, *hidden, d], activation="relu",
                       output_activation="tanh", seed=seed)
        self.opt = Adam(self.net.parameters(), lr=lr)

    def act(self, x: np.ndarray) -> np.ndarray:
        """Actions for a batch (or single) of normalized designs."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        out = self.net.forward(np.atleast_2d(x)) * self.action_scale
        return out[0] if single else out
