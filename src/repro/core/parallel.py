"""Parallel simulation of actor proposals (Section II-B).

The paper runs the per-actor SPICE simulations over ``N_act`` CPU cores via
multiprocessing.  :class:`SimulationExecutor` reproduces that: with
``n_workers > 0`` a process pool evaluates design batches concurrently;
with ``n_workers = 0`` it degrades to a serial loop (the default for tests
and benches, where determinism and low overhead matter more).

The task object must be picklable for the parallel path — all tasks in
:mod:`repro.circuits` and :mod:`repro.core.synthetic` are.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.core.problem import SizingTask

# Module-level slot for pool workers (set by the initializer so the task is
# shipped once per worker instead of once per design).
_WORKER_TASK: SizingTask | None = None


def _init_worker(task: SizingTask) -> None:
    global _WORKER_TASK
    _WORKER_TASK = task


def _evaluate_one(u: np.ndarray) -> np.ndarray:
    if _WORKER_TASK is None:  # pragma: no cover - defensive
        raise RuntimeError("worker not initialized")
    return _WORKER_TASK.evaluate(u)


class SimulationExecutor:
    """Evaluates design batches, serially or over a process pool."""

    def __init__(self, task: SizingTask, n_workers: int = 0) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.task = task
        self.n_workers = n_workers
        self._pool: mp.pool.Pool | None = None

    def _ensure_pool(self) -> mp.pool.Pool:
        if self._pool is None:
            ctx = mp.get_context("spawn")
            self._pool = ctx.Pool(
                processes=self.n_workers,
                initializer=_init_worker,
                initargs=(self.task,),
            )
        return self._pool

    def evaluate_batch(self, designs: np.ndarray) -> np.ndarray:
        """Metric vectors for a batch of normalized designs, shape (n, m+1)."""
        designs = np.atleast_2d(np.asarray(designs, dtype=float))
        if self.n_workers == 0 or len(designs) == 1:
            return np.stack([self.task.evaluate(u) for u in designs])
        pool = self._ensure_pool()
        return np.stack(pool.map(_evaluate_one, list(designs)))

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC path
        try:
            self.close()
        except Exception:
            pass
