"""Parallel simulation of actor proposals (Section II-B).

The paper runs the per-actor SPICE simulations over ``N_act`` CPU cores via
multiprocessing.  :class:`SimulationExecutor` reproduces that: with
``n_workers > 0`` a process pool evaluates design batches concurrently;
with ``n_workers = 0`` it degrades to a serial loop (the default for tests
and benches, where determinism and low overhead matter more).

The executor is the single instrumented choke point every simulation flows
through.  Each batch opens a ``simulate`` span, each simulation is timed
individually — in the worker process for the pool path, so queueing and
pickling overhead are excluded — and the timings feed the
``sim_latency_s`` histogram, the ``sims_total{kind=...}`` counter, and the
executor's :attr:`~SimulationExecutor.batch_timings` log.

The task object must be picklable for the parallel path — all tasks in
:mod:`repro.circuits` and :mod:`repro.core.synthetic` are.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import SizingTask
from repro.obs import NULL_TELEMETRY, Telemetry

# Module-level slot for pool workers (set by the initializer so the task is
# shipped once per worker instead of once per design).
_WORKER_TASK: SizingTask | None = None


def _init_worker(task: SizingTask) -> None:
    global _WORKER_TASK
    _WORKER_TASK = task


def _evaluate_one(u: np.ndarray) -> tuple[np.ndarray, float]:
    """Evaluate one design in a worker; returns (metrics, seconds)."""
    if _WORKER_TASK is None:  # pragma: no cover - defensive
        raise RuntimeError("worker not initialized")
    t0 = time.perf_counter()
    metrics = _WORKER_TASK.evaluate(u)
    return metrics, time.perf_counter() - t0


@dataclass
class BatchTiming:
    """Timing record for one :meth:`SimulationExecutor.evaluate_batch`."""

    n: int                    # designs in the batch
    kind: str                 # provenance label (init/actor/ns/...)
    wall_s: float             # end-to-end batch wall time in the caller
    sim_s: tuple[float, ...]  # per-simulation seconds (worker-side for pools)
    parallel: bool            # True when the pool path ran


class SimulationExecutor:
    """Evaluates design batches, serially or over a process pool."""

    def __init__(self, task: SizingTask, n_workers: int = 0,
                 telemetry: Telemetry | None = None) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.task = task
        self.n_workers = n_workers
        self.obs = telemetry or NULL_TELEMETRY
        self.batch_timings: list[BatchTiming] = []
        self._pool: mp.pool.Pool | None = None

    def _ensure_pool(self) -> mp.pool.Pool:
        if self._pool is None:
            ctx = mp.get_context("spawn")
            self._pool = ctx.Pool(
                processes=self.n_workers,
                initializer=_init_worker,
                initargs=(self.task,),
            )
        return self._pool

    def evaluate_batch(self, designs: np.ndarray,
                       kind: str = "sim") -> np.ndarray:
        """Metric vectors for a batch of normalized designs, shape (n, m+1).

        ``kind`` labels the batch's provenance (``init``/``actor``/``ns``)
        in metrics and timing records.
        """
        designs = np.atleast_2d(np.asarray(designs, dtype=float))
        use_pool = self.n_workers > 0 and len(designs) > 1
        t_batch = time.perf_counter()
        with self.obs.span("simulate", n=len(designs), kind=kind,
                           parallel=use_pool):
            if not use_pool:
                outputs, durations = [], []
                for u in designs:
                    t0 = time.perf_counter()
                    outputs.append(self.task.evaluate(u))
                    durations.append(time.perf_counter() - t0)
                metrics = np.stack(outputs)
            else:
                pool = self._ensure_pool()
                self.obs.set_gauge("pool_workers_busy",
                                   min(self.n_workers, len(designs)))
                results = pool.map(_evaluate_one, list(designs))
                self.obs.set_gauge("pool_workers_busy", 0)
                metrics = np.stack([m for m, _ in results])
                durations = [dt for _, dt in results]
        wall = time.perf_counter() - t_batch
        self.batch_timings.append(BatchTiming(
            n=len(designs), kind=kind, wall_s=wall,
            sim_s=tuple(durations), parallel=use_pool))
        self.obs.inc("sims_total", len(designs), kind=kind)
        for dt in durations:
            self.obs.observe("sim_latency_s", dt, kind=kind)
        return metrics

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC path
        try:
            self.close()
        except Exception:
            pass
