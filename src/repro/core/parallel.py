"""Parallel simulation of actor proposals (Section II-B).

The paper runs the per-actor SPICE simulations over ``N_act`` CPU cores via
multiprocessing.  :class:`SimulationExecutor` reproduces that: with
``n_workers > 0`` a process pool evaluates design batches concurrently;
with ``n_workers = 0`` it degrades to a serial loop (the default for tests
and benches, where determinism and low overhead matter more).

The executor is the single instrumented choke point every simulation flows
through.  Each batch opens a ``simulate`` span, each simulation is timed
individually — in the worker process for the pool path, so queueing and
pickling overhead are excluded — and the timings feed the
``sim_latency_s`` histogram, the ``sims_total{kind=...}`` counter, and the
executor's :attr:`~SimulationExecutor.batch_timings` log.

**ERC gate** (:mod:`repro.analysis.erc`): tasks exposing ``lint_design``
(the circuit tasks) have every design electrically rule-checked before it
is dispatched.  Designs with error-severity findings never reach the
simulator: they are charged the task's penalty metrics, counted under
``lint_rejections_total{kind=...}``, and logged as ``lint_rejected`` run
events.  Pass ``lint_gate=False`` to opt out.

**Failure policy** (:mod:`repro.resilience.policy`): pass a
:class:`~repro.core.config.ResilienceConfig` and every simulation runs
under the retry/backoff/quarantine loop — identically in the caller (serial
path) and inside each worker (pool path), so retry accounting matches
bit-for-bit.  When ``sim_timeout_s`` is set, the pool path additionally
runs a watchdog: a hung or crashed worker costs the affected design one
attempt, the pool is rebuilt, and only the designs whose results were lost
are re-dispatched.  Quarantined designs surface as ``sim_failed`` run
events plus ``sim_retries_total`` / ``sim_failures_total`` counters, and
their per-design outcomes stay readable on
:attr:`~SimulationExecutor.last_outcomes`.

**Worker telemetry** (:mod:`repro.obs.telemetry`): when the attached
telemetry has a tracer or metrics registry, each pool worker is
initialized with its own :class:`~repro.obs.telemetry.WorkerTelemetry`.
Spans (``worker-evaluate``, per-retry ``sim-attempt``) and counters
recorded inside the worker ship back with each task result as a picklable
:class:`~repro.obs.telemetry.WorkerCapture` and are grafted into the
parent tracer under the owning ``simulate`` span with ``pid``/``seq``
attributes — pooled simulation is no longer a tracing black box.  With
``heartbeat_s > 0`` a daemon thread additionally emits ``heartbeat`` run
events while a pooled batch is in flight, so stalls and crashed workers
are visible before the batch returns.

The task object must be picklable for the parallel path — all tasks in
:mod:`repro.circuits` and :mod:`repro.core.synthetic` are (including the
:class:`~repro.resilience.faults.FaultyTask` wrapper).
"""

from __future__ import annotations

import math
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import ResilienceConfig
from repro.core.problem import SizingTask
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.telemetry import WorkerCapture, WorkerTelemetry, absorb_capture
from repro.resilience.policy import (
    SimOutcome,
    evaluate_design,
    penalty_metrics,
)

# Module-level slots for pool workers (set by the initializer so the task
# and policy are shipped once per worker instead of once per design).
_WORKER_TASK: SizingTask | None = None
_WORKER_POLICY: ResilienceConfig | None = None
_WORKER_TELEMETRY: WorkerTelemetry | None = None


def worker_side(fn):
    """Mark ``fn`` as running inside a pool worker process.

    The marker is consumed by the flow-sensitive concurrency pass
    (:mod:`repro.analysis.concurrency`): any function carrying it — or
    reachable from one through the call graph — must not rely on writes
    to parent-process state.  At runtime it is an identity decorator.
    """
    fn.__worker_side__ = True
    return fn

# Watchdog slack added on top of the computed retry budget: covers pool
# spin-up (spawn context) and pickling, so healthy-but-queued designs are
# never misdiagnosed as hung.  The deadline is deliberately conservative —
# it exists to catch *hangs and crashes*, not to race close finishes.
_WATCHDOG_SLACK_S = 5.0


@worker_side
def _init_worker(task: SizingTask,
                 policy: ResilienceConfig | None = None,
                 capture: bool = False) -> None:
    # These globals are the *per-worker* slots this initializer exists to
    # fill — each spawn worker populates its own copy, and nothing in the
    # parent ever reads them.
    global _WORKER_TASK, _WORKER_POLICY, _WORKER_TELEMETRY
    _WORKER_TASK = task        # repro: ignore[flow.conc.global-write]
    _WORKER_POLICY = policy    # repro: ignore[flow.conc.global-write]
    _WORKER_TELEMETRY = (      # repro: ignore[flow.conc.global-write]
        WorkerTelemetry() if capture else None)


@worker_side
def _evaluate_one(u: np.ndarray
                  ) -> tuple[np.ndarray, float, WorkerCapture | None]:
    """Evaluate one design in a worker; returns (metrics, seconds, capture)."""
    if _WORKER_TASK is None:  # pragma: no cover - defensive
        raise RuntimeError("worker not initialized")
    wt = _WORKER_TELEMETRY  # per-worker recorder; shipped back, never shared
    if wt is None:
        t0 = time.perf_counter()
        metrics = _WORKER_TASK.evaluate(u)
        return metrics, time.perf_counter() - t0, None
    t0 = time.perf_counter()
    with wt.span("worker-evaluate"):
        metrics = _WORKER_TASK.evaluate(u)
    dt = time.perf_counter() - t0
    wt.inc("worker_sims_total")
    return metrics, dt, wt.drain()


@worker_side
def _evaluate_one_resilient(u: np.ndarray,
                            start_attempt: int = 0) -> SimOutcome:
    """Worker-side retry loop; mirrors the serial path exactly."""
    if _WORKER_TASK is None or _WORKER_POLICY is None:  # pragma: no cover
        raise RuntimeError("worker not initialized with a policy")
    wt = _WORKER_TELEMETRY  # per-worker recorder; shipped back, never shared
    if wt is None:
        return evaluate_design(_WORKER_TASK, u, _WORKER_POLICY,
                               start_attempt=start_attempt)
    with wt.span("worker-evaluate", resilient=True):
        out = evaluate_design(_WORKER_TASK, u, _WORKER_POLICY,
                              start_attempt=start_attempt, obs=wt)
    out.capture = wt.drain()
    return out


class _Heartbeat:
    """Daemon thread beating while a pooled batch is in flight.

    Each beat refreshes the ``pool_workers_busy`` gauge, emits a
    ``heartbeat`` run event (elapsed seconds, batch size, worker count,
    beat number) and fires the ``on_heartbeat`` observer hook — so a tail
    client watching the event stream can tell a slow batch from a wedged
    pool even though the dispatching thread is blocked in the pool call.
    """

    def __init__(self, obs: Telemetry, interval_s: float,
                 n: int, n_workers: int) -> None:
        self.obs = obs
        self.interval_s = interval_s
        self.n = n
        self.n_workers = n_workers
        self._stop = threading.Event()
        # Under the job service many optimizations beat concurrently in
        # one process; the run id in the thread name keeps `py-spy`/faulthandler
        # dumps attributable to a job.
        name = ("sim-heartbeat" if obs.run_id is None
                else f"sim-heartbeat-{obs.run_id}")
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True)
        self._t0 = time.perf_counter()
        self._thread.start()

    def _run(self) -> None:
        beats = 0
        while not self._stop.wait(self.interval_s):
            beats += 1
            elapsed = time.perf_counter() - self._t0
            info = {"elapsed_s": round(elapsed, 3), "n": self.n,
                    "workers": self.n_workers, "beats": beats}
            self.obs.set_gauge("pool_workers_busy",
                               min(self.n_workers, self.n))
            if self.obs.run_logger is not None:
                self.obs.run_logger.emit("heartbeat", **info)
            self.obs.observers.emit("on_heartbeat", "pool", info)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.interval_s + 1.0)


@dataclass
class BatchTiming:
    """Timing record for one :meth:`SimulationExecutor.evaluate_batch`."""

    n: int                    # designs in the batch
    kind: str                 # provenance label (init/actor/ns/...)
    wall_s: float             # end-to-end batch wall time in the caller
    sim_s: tuple[float, ...]  # per-simulation seconds (worker-side for pools)
    parallel: bool            # True when the pool path ran


class SimulationExecutor:
    """Evaluates design batches, serially or over a process pool.

    Supports the context-manager protocol; prefer ``with`` over relying on
    ``__del__`` for pool shutdown::

        with SimulationExecutor(task, n_workers=4) as ex:
            metrics = ex.evaluate_batch(designs)
    """

    def __init__(self, task: SizingTask, n_workers: int = 0,
                 telemetry: Telemetry | None = None,
                 resilience: ResilienceConfig | None = None,
                 lint_gate: bool = True,
                 heartbeat_s: float = 0.0) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if heartbeat_s < 0:
            raise ValueError("heartbeat_s must be >= 0")
        self.task = task
        self.n_workers = n_workers
        self.obs = telemetry or NULL_TELEMETRY
        self.policy = resilience
        self.lint_gate = lint_gate
        self.heartbeat_s = heartbeat_s
        # Ship WorkerTelemetry into pool workers only when someone is
        # listening parent-side (tracer or metrics attached).
        self._capture = self.obs.wants_worker_capture
        self.batch_timings: list[BatchTiming] = []
        #: Per-design outcomes of the most recent policy-path batch.
        self.last_outcomes: list[SimOutcome] = []
        #: Per-design ERC findings of the most recent gated batch
        #: (design index -> list of error diagnostics).
        self.last_lint_rejections: dict[int, list] = {}
        self._pool: mp.pool.Pool | None = None

    # -- pool lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> mp.pool.Pool:
        if self._pool is None:
            ctx = mp.get_context("spawn")
            self._pool = ctx.Pool(
                processes=self.n_workers,
                initializer=_init_worker,
                initargs=(self.task, self.policy, self._capture),
            )
        return self._pool

    def _rebuild_pool(self) -> None:
        """Kill a wedged pool so the next dispatch starts clean."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.obs.inc("pool_rebuilds_total")

    # -- evaluation ----------------------------------------------------------
    def evaluate_batch(self, designs: np.ndarray,
                       kind: str = "sim") -> np.ndarray:
        """Metric vectors for a batch of normalized designs, shape (n, m+1).

        ``kind`` labels the batch's provenance (``init``/``actor``/``ns``)
        in metrics and timing records.  An empty batch returns an empty
        ``(0, m+1)`` array without touching the task or the pool.
        """
        designs = np.asarray(designs, dtype=float)
        if designs.size == 0:
            return np.empty((0, self.task.m + 1))
        designs = np.atleast_2d(designs)
        rejected = self._lint_rejections(designs, kind)
        if rejected:
            keep = [i for i in range(len(designs)) if i not in rejected]
            metrics = np.tile(penalty_metrics(self.task), (len(designs), 1))
            if keep:
                metrics[keep] = self._simulate_batch(designs[keep], kind)
            return metrics
        return self._simulate_batch(designs, kind)

    def _simulate_batch(self, designs: np.ndarray,
                        kind: str) -> np.ndarray:
        """The post-gate simulation path (spans, timings, counters)."""
        use_pool = self.n_workers > 0 and len(designs) > 1
        t_batch = time.perf_counter()
        with self.obs.span("simulate", n=len(designs), kind=kind,
                           parallel=use_pool) as sim_span:
            heartbeat = (_Heartbeat(self.obs, self.heartbeat_s,
                                    len(designs), self.n_workers)
                         if use_pool and self.heartbeat_s > 0 else None)
            try:
                if self.policy is None:
                    metrics, durations, captures = self._plain_batch(
                        designs, use_pool)
                else:
                    metrics, durations, captures = self._policy_batch(
                        designs, use_pool, kind)
            finally:
                if heartbeat is not None:
                    heartbeat.stop()
            # Graft worker-recorded telemetry while the simulate span is
            # still the live parent (NOOP spans enter as None — metrics
            # still merge, spans are dropped).
            for cap in captures:
                if cap is not None:
                    absorb_capture(self.obs, cap, sim_span)
        wall = time.perf_counter() - t_batch
        self.batch_timings.append(BatchTiming(
            n=len(designs), kind=kind, wall_s=wall,
            sim_s=tuple(durations), parallel=use_pool))
        self.obs.inc("sims_total", len(designs), kind=kind)
        for dt in durations:
            self.obs.observe("sim_latency_s", dt, kind=kind)
        return metrics

    def _lint_rejections(self, designs: np.ndarray,
                         kind: str) -> dict[int, list]:
        """ERC-gate a batch: error-severity designs never reach simulation.

        Returns ``{design index -> error diagnostics}`` for the designs to
        reject; the caller substitutes the task's penalty metrics so the
        optimizer sees a decisively bad (but finite) evaluation instead of
        burning simulation budget on a netlist that cannot work.  Disabled
        via ``lint_gate=False`` or when the task has no ``lint_design``.
        """
        lint = getattr(self.task, "lint_design", None)
        if not self.lint_gate or lint is None:
            self.last_lint_rejections = {}
            return {}
        from repro.analysis.diagnostics import Severity

        rejected: dict[int, list] = {}
        with self.obs.span("lint-gate", n=len(designs), kind=kind):
            for i, u in enumerate(designs):
                errors = [d for d in lint(u) if d.severity >= Severity.ERROR]
                if errors:
                    rejected[i] = errors
        self.last_lint_rejections = rejected
        if rejected:
            self.obs.inc("lint_rejections_total", len(rejected), kind=kind)
            if self.obs.run_logger is not None:
                for i, errors in rejected.items():
                    self.obs.run_logger.emit(
                        "lint_rejected", kind=kind, design_index=i,
                        rules=sorted({d.rule for d in errors}),
                        first=errors[0].message)
        return rejected

    def _plain_batch(self, designs: np.ndarray, use_pool: bool
                     ) -> tuple[np.ndarray, list[float],
                                list[WorkerCapture | None]]:
        """Legacy path (no failure policy): evaluate, let exceptions fly."""
        if not use_pool:
            outputs, durations = [], []
            for u in designs:
                t0 = time.perf_counter()
                outputs.append(self.task.evaluate(u))
                durations.append(time.perf_counter() - t0)
            return np.stack(outputs), durations, []
        pool = self._ensure_pool()
        self.obs.set_gauge("pool_workers_busy",
                           min(self.n_workers, len(designs)))
        try:
            results = pool.map(_evaluate_one, list(designs))
        finally:
            # An exception mid-batch must not leave a stale busy count.
            self.obs.set_gauge("pool_workers_busy", 0)
        return (np.stack([m for m, _, _ in results]),
                [dt for _, dt, _ in results],
                [cap for _, _, cap in results])

    def _policy_batch(self, designs: np.ndarray, use_pool: bool, kind: str
                      ) -> tuple[np.ndarray, list[float],
                                 list[WorkerCapture | None]]:
        """Failure-policy path: retries, quarantine, pool watchdog."""
        policy = self.policy
        assert policy is not None
        if not use_pool:
            outcomes = [evaluate_design(self.task, u, policy, obs=self.obs)
                        for u in designs]
        else:
            outcomes = self._pool_outcomes(designs, policy)
        self.last_outcomes = outcomes
        for i, out in enumerate(outcomes):
            if out.retries:
                self.obs.inc("sim_retries_total", out.retries, kind=kind)
            if out.failed:
                self.obs.inc("sim_failures_total", kind=kind)
                if self.obs.run_logger is not None:
                    self.obs.run_logger.emit(
                        "sim_failed", kind=kind, design_index=i,
                        retries=out.retries, reason=out.reason,
                        error=out.error)
        metrics = np.stack([out.metrics for out in outcomes])
        durations = [out.seconds for out in outcomes]
        captures = [out.capture for out in outcomes]
        return metrics, durations, captures

    def _attempt_budget_s(self, policy: ResilienceConfig) -> float:
        """Worst-case worker-side seconds for one design's full retry loop."""
        attempts = policy.max_retries + 1
        budget = (policy.sim_timeout_s or 0.0) * attempts
        if policy.backoff_base_s > 0:
            budget += sum(
                policy.backoff_base_s * policy.backoff_factor ** k
                * (1.0 + policy.backoff_jitter)
                for k in range(policy.max_retries))
        return budget

    def _pool_outcomes(self, designs: np.ndarray,
                       policy: ResilienceConfig) -> list[SimOutcome]:
        """Dispatch with watchdog + crash recovery.

        Without ``sim_timeout_s`` this is a plain (blocking) pool map of
        the worker-side retry loop.  With it, each dispatch is awaited
        under a deadline; on a timeout the hung design is charged one
        attempt, the pool is rebuilt (a crashed worker manifests as the
        same stuck result), and every design whose result died with the
        pool is re-dispatched — completed outcomes are kept.
        """
        n = len(designs)
        self.obs.set_gauge("pool_workers_busy", min(self.n_workers, n))
        try:
            if policy.sim_timeout_s is None:
                pool = self._ensure_pool()
                return pool.starmap(_evaluate_one_resilient,
                                    [(u, 0) for u in designs])
            outcomes: list[SimOutcome | None] = [None] * n
            # (index, start_attempt, timeouts_charged) still to run.
            pending: list[tuple[int, int]] = [(i, 0) for i in range(n)]
            while pending:
                pool = self._ensure_pool()
                # Generous per-result deadline: full retry budget for every
                # design that may be queued ahead, plus pool-spinup slack.
                waves = math.ceil(len(pending) / max(1, self.n_workers))
                deadline = (self._attempt_budget_s(policy) * waves
                            + _WATCHDOG_SLACK_S)
                handles = [(i, sa, pool.apply_async(
                    _evaluate_one_resilient, (designs[i], sa)))
                    for i, sa in pending]
                pending = []
                wedged = False
                for i, sa, handle in handles:
                    if wedged:
                        # The pool died mid-batch; this result may be lost.
                        if handle.ready():
                            outcomes[i] = handle.get().merged_retries(sa)
                        else:
                            pending.append((i, sa))
                        continue
                    try:
                        outcomes[i] = handle.get(deadline).merged_retries(sa)
                    except mp.TimeoutError:
                        wedged = True
                        if sa < policy.max_retries:
                            # The timed-out attempt is charged as a retry.
                            pending.append((i, sa + 1))
                        else:
                            outcomes[i] = SimOutcome(
                                penalty_metrics(self.task),
                                seconds=deadline, retries=sa, failed=True,
                                reason="timeout",
                                error=f"no result within {deadline:.1f}s")
                if wedged:
                    self._rebuild_pool()
            return [out for out in outcomes if out is not None]
        finally:
            self.obs.set_gauge("pool_workers_busy", 0)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SimulationExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC path
        try:
            self.close()
        except Exception:
            pass
