"""Design populations: the total design set X^tot and elite solution sets.

The paper's Fig. 2 contrasts two organizations for multi-actor training:

* **individual** elite sets — each actor ranks only the designs *it* (plus
  the shared initial set) has simulated, so each set can gain at most one
  member per round;
* **shared** elite set — all actors rank the union of everything simulated,
  so the set refreshes up to ``N_act`` times per round.

:class:`EliteSet` implements both via the ``member_filter`` mechanism: a
shared set sees every record, an individual set only records tagged with
its owner (or the initial set's tag ``None``).
"""

from __future__ import annotations

import numpy as np

from repro.core.fom import FigureOfMerit


class TotalDesignSet:
    """X^tot: every simulated design with its metrics, FoM and provenance."""

    def __init__(self, d: int, n_metrics: int) -> None:
        if d < 1 or n_metrics < 1:
            raise ValueError("need d >= 1 and n_metrics >= 1")
        self.d = d
        self.n_metrics = n_metrics
        self._x: list[np.ndarray] = []
        self._f: list[np.ndarray] = []
        self._fom: list[float] = []
        self._owner: list[int | None] = []

    def __len__(self) -> int:
        return len(self._x)

    def add(self, x: np.ndarray, metrics: np.ndarray, fom: float,
            owner: int | None = None) -> int:
        """Append one simulated design; returns its index."""
        x = np.asarray(x, dtype=float).ravel()
        metrics = np.asarray(metrics, dtype=float).ravel()
        if x.shape != (self.d,):
            raise ValueError(f"design has shape {x.shape}, expected ({self.d},)")
        if metrics.shape != (self.n_metrics,):
            raise ValueError(
                f"metrics have shape {metrics.shape}, expected ({self.n_metrics},)"
            )
        self._x.append(x)
        self._f.append(metrics)
        self._fom.append(float(fom))
        self._owner.append(owner)
        return len(self._x) - 1

    @property
    def designs(self) -> np.ndarray:
        """All designs, shape (N, d)."""
        return np.array(self._x) if self._x else np.empty((0, self.d))

    @property
    def metrics(self) -> np.ndarray:
        """All metric vectors, shape (N, m+1)."""
        return np.array(self._f) if self._f else np.empty((0, self.n_metrics))

    @property
    def foms(self) -> np.ndarray:
        return np.array(self._fom)

    @property
    def owners(self) -> list[int | None]:
        return list(self._owner)

    def best_index(self) -> int:
        if not self._x:
            raise ValueError("empty design set")
        return int(np.argmin(self._fom))

    def best(self) -> tuple[np.ndarray, np.ndarray, float]:
        """(design, metrics, fom) of the incumbent FoM-best design."""
        i = self.best_index()
        return self._x[i], self._f[i], self._fom[i]

    def metric_stats(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-metric mean and std over X^tot (std floored for stability)."""
        f = self.metrics
        if len(f) == 0:
            raise ValueError("empty design set")
        mean = f.mean(axis=0)
        std = f.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return mean, std


class EliteSet:
    """X^ES / X^SES: the N_es FoM-best designs visible to one actor.

    ``owner=None`` builds a *shared* elite set (sees every record);
    ``owner=i`` builds actor ``i``'s *individual* set, which ranks only the
    initial samples (owner tag ``None``) plus designs actor ``i`` simulated.
    """

    def __init__(self, total: TotalDesignSet, n_es: int,
                 owner: int | None = None) -> None:
        if n_es < 1:
            raise ValueError("elite set size must be >= 1")
        self.total = total
        self.n_es = n_es
        self.owner = owner

    def _visible_indices(self) -> np.ndarray:
        owners = self.total.owners
        if self.owner is None:
            return np.arange(len(owners))
        return np.array(
            [i for i, o in enumerate(owners) if o is None or o == self.owner],
            dtype=int,
        )

    def indices(self) -> np.ndarray:
        """Indices into the total set of the current elite members."""
        vis = self._visible_indices()
        if vis.size == 0:
            return vis
        foms = self.total.foms[vis]
        order = np.argsort(foms, kind="stable")
        return vis[order[: self.n_es]]

    def designs(self) -> np.ndarray:
        """Elite designs, shape (n_elite, d)."""
        idx = self.indices()
        if idx.size == 0:
            return np.empty((0, self.total.d))
        return self.total.designs[idx]

    def best(self) -> tuple[np.ndarray, float]:
        """(design, fom) of the elite-set best."""
        idx = self.indices()
        if idx.size == 0:
            raise ValueError("empty elite set")
        best = idx[0]
        return self.total.designs[best], float(self.total.foms[best])

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension (lb_rest, ub_rest) over the elite designs (Eq. 6)."""
        x = self.designs()
        if len(x) == 0:
            raise ValueError("empty elite set")
        return x.min(axis=0), x.max(axis=0)


def rebuild_fom(total: TotalDesignSet, fom: FigureOfMerit) -> None:
    """Recompute all stored FoM values (after a FoM weight change)."""
    metrics = total.metrics
    values = fom(metrics)
    total._fom = [float(v) for v in np.atleast_1d(values)]
