"""Problem formulation (Eq. 1): minimize f0(x) s.t. fi(x) <= 0.

A :class:`SizingTask` bundles a design space, a target metric, and a list
of constraint :class:`Spec` s, and knows how to evaluate a normalized
design into the metric vector ``[f0, f1, ..., fm]`` the optimizer consumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.space import DesignSpace


@dataclass(frozen=True)
class Spec:
    """One performance constraint.

    ``kind`` is ``">"`` (metric must exceed ``bound``) or ``"<"`` (metric
    must stay below).  ``fail_value`` is the metric value substituted when a
    measurement fails outright (simulator non-convergence, no unity-gain
    crossing, ...); it should violate the spec decisively.
    """

    name: str
    kind: str
    bound: float
    weight: float = 1.0
    fail_value: float | None = None
    unit: str = ""
    # Surrogate hint: positive metrics spanning decades (frequencies,
    # settling times, noise) regress far better in log10; the critic's
    # scaler honours this flag.  ``log_floor`` clamps the argument.
    log_scale: bool = False
    log_floor: float = 1e-15

    def __post_init__(self) -> None:
        if self.kind not in (">", "<"):
            raise ValueError(f"spec {self.name}: kind must be '>' or '<'")
        if self.bound == 0:
            raise ValueError(
                f"spec {self.name}: zero bound breaks the relative-violation "
                "normalization of Eq. 2; shift the metric instead"
            )
        if self.weight <= 0:
            raise ValueError(f"spec {self.name}: weight must be positive")

    def violation(self, value: float) -> float:
        """Relative constraint violation: positive iff violated (Eq. 2's
        ``|f_i - c_i| / c_i`` applied one-sidedly)."""
        if self.kind == ">":
            return (self.bound - value) / abs(self.bound)
        return (value - self.bound) / abs(self.bound)

    def satisfied(self, value: float) -> bool:
        return self.violation(value) <= 0.0

    def default_fail_value(self) -> float:
        """A decisively-violating value when ``fail_value`` is unset."""
        if self.fail_value is not None:
            return self.fail_value
        # 10x |bound| beyond the bound, on the violating side.
        margin = 10.0 * abs(self.bound)
        return self.bound - margin if self.kind == ">" else self.bound + margin


@dataclass(frozen=True)
class Target:
    """The target metric f0 to minimize, with its Eq. 2 weight ``w0``."""

    name: str
    weight: float = 1.0
    fail_value: float = 1.0
    unit: str = ""
    log_scale: bool = False
    log_floor: float = 1e-15

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("target weight must be positive")


class SizingTask(ABC):
    """A circuit-sizing (or synthetic) optimization task.

    Subclasses provide :attr:`space`, :attr:`target`, :attr:`specs` and
    implement :meth:`simulate`.  The optimizer-facing entry point is
    :meth:`evaluate`, which never raises: measurement failures are mapped to
    decisively-bad metric values so the optimizer always sees a finite
    vector (mirroring how a sizing flow treats non-convergent SPICE runs).
    """

    name: str = "task"
    space: DesignSpace
    target: Target
    specs: list[Spec]

    @property
    def d(self) -> int:
        return self.space.d

    @property
    def m(self) -> int:
        """Number of constraints (the paper's ``m``)."""
        return len(self.specs)

    @property
    def metric_names(self) -> list[str]:
        return [self.target.name] + [s.name for s in self.specs]

    @property
    def metric_log_mask(self) -> "np.ndarray":
        """Per-metric log-scale flags (target first), for surrogate scalers."""
        return np.array([self.target.log_scale]
                        + [s.log_scale for s in self.specs])

    @property
    def metric_log_floors(self) -> "np.ndarray":
        """Per-metric clamp floors used before taking log10."""
        return np.array([self.target.log_floor]
                        + [s.log_floor for s in self.specs])

    @abstractmethod
    def simulate(self, u: np.ndarray) -> dict[str, float]:
        """Run the full evaluation of one normalized design.

        Returns a metric-name -> value dict; missing/None entries and raised
        exceptions are handled by :meth:`evaluate`.
        """

    def evaluate(self, u: np.ndarray) -> np.ndarray:
        """Metric vector ``[f0, f1..fm]`` for one normalized design."""
        u = self.space.clip(np.asarray(u, dtype=float).ravel())
        try:
            metrics = self.simulate(u)
        except Exception:
            metrics = {}
        out = np.empty(self.m + 1)
        f0 = metrics.get(self.target.name)
        out[0] = self.target.fail_value if f0 is None or not np.isfinite(f0) \
            else float(f0)
        for i, spec in enumerate(self.specs):
            v = metrics.get(spec.name)
            if v is None or not np.isfinite(v):
                v = spec.default_fail_value()
            out[i + 1] = float(v)
        return out

    def evaluate_batch(self, us: np.ndarray) -> np.ndarray:
        """Evaluate several designs; shape (n, m+1)."""
        us = np.atleast_2d(us)
        return np.stack([self.evaluate(u) for u in us])

    def is_feasible(self, metric_vector: np.ndarray) -> bool:
        """All constraints satisfied for the given metric vector."""
        return all(
            spec.satisfied(metric_vector[i + 1]) for i, spec in enumerate(self.specs)
        )

    def describe(self) -> str:
        """Human-readable task summary (target + constraint list)."""
        lines = [f"task: {self.name} (d={self.d}, m={self.m})",
                 f"  minimize {self.target.name} [{self.target.unit}]"]
        for s in self.specs:
            lines.append(f"  s.t. {s.name} {s.kind} {s.bound:g} {s.unit}")
        return "\n".join(lines)
