"""Pseudo-sample generation — Eq. 3 of the paper.

From any two simulated designs x_i, x_j the pair

    x_ij^ps = (x_i, x_j - x_i),    f^ps(x_ij^ps) = f(x_j)

is a valid training sample for the critic: "starting at x_i and applying
action x_j - x_i lands on metrics f(x_j)".  N simulated designs therefore
yield N^2 critic training samples for free — the population-based trick
MA-Opt inherits from DNN-Opt.
"""

from __future__ import annotations

import numpy as np

from repro.core.population import TotalDesignSet


def pseudo_sample_batch(
    total: TotalDesignSet,
    batch_size: int,
    rng: np.random.Generator,
    include_identity_fraction: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw a random batch of pseudo-samples from X^tot.

    Returns ``(inputs, targets)`` where inputs has shape
    ``(batch_size, 2d)`` — each row is ``concat(x_i, x_j - x_i)`` — and
    targets has shape ``(batch_size, m+1)`` holding ``f(x_j)``.

    ``include_identity_fraction`` forces that share of pairs to use i == j
    (zero action), anchoring the critic at "no change keeps the metrics".
    """
    n = len(total)
    if n < 1:
        raise ValueError("cannot draw pseudo-samples from an empty set")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0.0 <= include_identity_fraction <= 1.0:
        raise ValueError("include_identity_fraction must be in [0, 1]")
    designs = total.designs
    metrics = total.metrics
    i_idx = rng.integers(0, n, size=batch_size)
    j_idx = rng.integers(0, n, size=batch_size)
    n_identity = int(round(include_identity_fraction * batch_size))
    if n_identity:
        j_idx[:n_identity] = i_idx[:n_identity]
    xi = designs[i_idx]
    xj = designs[j_idx]
    inputs = np.concatenate([xi, xj - xi], axis=1)
    targets = metrics[j_idx]
    return inputs, targets


def _sample_pairs_without_replacement(n: int, k: int,
                                      rng: np.random.Generator
                                      ) -> tuple[np.ndarray, np.ndarray]:
    """``k`` distinct (i, j) pairs from the n*n grid, never materializing it.

    Pairs are drawn as flat codes ``i * n + j``.  When ``k`` is a large
    fraction of n^2, a permutation of the codes is cheapest; otherwise
    rejection sampling (draw extra, unique, subsample) converges in one or
    two rounds because the hit rate is high.
    """
    n_sq = n * n
    if 2 * k >= n_sq:
        codes = rng.permutation(n_sq)[:k]
    else:
        codes = np.unique(rng.integers(0, n_sq, size=2 * k))
        while codes.size < k:
            more = rng.integers(0, n_sq, size=2 * (k - codes.size) + 8)
            codes = np.unique(np.concatenate([codes, more]))
        codes = rng.permutation(codes)[:k]
    return codes // n, codes % n


def all_pseudo_samples(total: TotalDesignSet,
                       max_pairs: int | None = None,
                       rng: np.random.Generator | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Materialize the full N^2 pseudo-sample set (or a random subset).

    With ``max_pairs`` below N^2, a uniform subset of distinct pairs is
    drawn directly — the N^2 index grid is never built — and ``rng`` must
    be given explicitly (subsampling is a stochastic operation; an ambient
    generator would silently break reproducibility).

    Useful for offline critic fitting and for tests; training normally uses
    :func:`pseudo_sample_batch` instead.
    """
    n = len(total)
    if n < 1:
        raise ValueError("cannot build pseudo-samples from an empty set")
    designs = total.designs
    metrics = total.metrics
    if max_pairs is not None and max_pairs < n * n:
        if rng is None:
            raise ValueError("max_pairs subsampling needs an explicit rng "
                             "(pass a numpy Generator)")
        if max_pairs < 1:
            raise ValueError("max_pairs must be >= 1")
        ii, jj = _sample_pairs_without_replacement(n, max_pairs, rng)
    else:
        ii = np.repeat(np.arange(n), n)
        jj = np.tile(np.arange(n), n)
    xi = designs[ii]
    xj = designs[jj]
    return np.concatenate([xi, xj - xi], axis=1), metrics[jj]
