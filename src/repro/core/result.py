"""Optimization run records and results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class EvaluationRecord:
    """One simulated design with provenance.

    ``kind`` is ``"init"`` (initial sample), ``"actor"`` (Alg. 1 proposal),
    ``"ns"`` (near-sampling proposal), or a baseline-specific tag.
    ``owner`` is the proposing actor's index where applicable.
    """

    index: int
    x: np.ndarray
    metrics: np.ndarray
    fom: float
    kind: str = "init"
    owner: int | None = None
    feasible: bool = False
    #: Seconds since post-init optimization began.  Convention (shared by
    #: MAOptimizer and every baseline): the clock starts when the first
    #: post-init round begins — *before* any model training or proposal
    #: work — so each record's t_wall includes the compute that produced
    #: it, and runtime-fair comparisons (fom_vs_runtime) charge methods
    #: for their training overhead.
    t_wall: float = 0.0


@dataclass
class OptimizationResult:
    """Full history of one optimization run.

    ``records`` excludes the shared initial set unless ``include_init`` was
    requested; by paper convention the "number of simulations" budget counts
    only post-initialization simulations, while FoM traces start from the
    initial set's best.
    """

    task_name: str
    method: str
    records: list[EvaluationRecord] = field(default_factory=list)
    init_best_fom: float = np.inf
    wall_time_s: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n_sims(self) -> int:
        """Simulations consumed after initialization."""
        return len(self.records)

    @property
    def foms(self) -> np.ndarray:
        return np.array([r.fom for r in self.records])

    @property
    def best_fom(self) -> float:
        if not self.records:
            return self.init_best_fom
        return min(self.init_best_fom, float(np.min(self.foms)))

    def best_fom_trace(self) -> np.ndarray:
        """Best-so-far FoM after each simulation (length n_sims + 1; entry 0
        is the initial set's best) — the series behind the paper's Fig. 5."""
        trace = np.empty(len(self.records) + 1)
        best = self.init_best_fom
        trace[0] = best
        for i, rec in enumerate(self.records):
            best = min(best, rec.fom)
            trace[i + 1] = best
        return trace

    @property
    def success(self) -> bool:
        """True when any simulated design met all constraints."""
        return any(r.feasible for r in self.records)

    def best_feasible(self) -> EvaluationRecord | None:
        """The feasible record with the lowest target metric (column 0)."""
        feas = [r for r in self.records if r.feasible]
        if not feas:
            return None
        return min(feas, key=lambda r: r.metrics[0])

    def best_record(self) -> EvaluationRecord | None:
        """The record with the lowest FoM regardless of feasibility."""
        if not self.records:
            return None
        return min(self.records, key=lambda r: r.fom)

    def fom_vs_runtime(self) -> tuple[np.ndarray, np.ndarray]:
        """(wall-clock seconds, best-so-far FoM) pairs — the paper's
        runtime-fair comparison axis (Section III-A compares average FoMs
        "based on the total runtime of DNN-Opt")."""
        times = np.array([r.t_wall for r in self.records])
        trace = self.best_fom_trace()[1:]
        return times, trace

    def summary(self) -> dict:
        """Compact dict used by the experiment tables."""
        bf = self.best_feasible()
        return {
            "task": self.task_name,
            "method": self.method,
            "n_sims": self.n_sims,
            "success": self.success,
            "best_fom": self.best_fom,
            "best_feasible_target": None if bf is None else float(bf.metrics[0]),
            "wall_time_s": self.wall_time_s,
        }
