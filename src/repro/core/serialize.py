"""Persistence for optimization results.

Saves an :class:`~repro.core.result.OptimizationResult` to a single ``.npz``
archive (arrays for the per-record data, a small JSON blob for scalars) and
loads it back.  Useful for archiving paper-scale runs, post-hoc analysis,
and sharing traces without re-simulating.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.result import EvaluationRecord, OptimizationResult

# Version 2 stores ``kinds`` as a fixed-width unicode array so archives
# load with ``allow_pickle=False``; version-1 archives (object-dtype kinds)
# are still readable but need the pickle-permitting legacy path.
_FORMAT_VERSION = 2


def save_result(result: OptimizationResult, path: str | pathlib.Path) -> None:
    """Write a result to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    n = len(result.records)
    d = result.records[0].x.size if n else 0
    m1 = result.records[0].metrics.size if n else 0
    xs = np.zeros((n, d))
    metrics = np.zeros((n, m1))
    foms = np.zeros(n)
    t_walls = np.zeros(n)
    feasible = np.zeros(n, dtype=bool)
    owners = np.full(n, -1, dtype=int)
    kinds: list[str] = []
    for i, rec in enumerate(result.records):
        xs[i] = rec.x
        metrics[i] = rec.metrics
        foms[i] = rec.fom
        t_walls[i] = rec.t_wall
        feasible[i] = rec.feasible
        owners[i] = -1 if rec.owner is None else rec.owner
        kinds.append(rec.kind)
    header = json.dumps({
        "version": _FORMAT_VERSION,
        "task_name": result.task_name,
        "method": result.method,
        "init_best_fom": result.init_best_fom,
        "wall_time_s": result.wall_time_s,
    })
    np.savez_compressed(
        path, header=np.array(header), xs=xs, metrics=metrics, foms=foms,
        t_walls=t_walls, feasible=feasible, owners=owners,
        kinds=(np.array(kinds, dtype=np.str_) if kinds
               else np.empty(0, dtype="U1")),
    )


def save_comparison(results: dict[str, list[OptimizationResult]],
                    directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Archive a full method comparison (one ``.npz`` per run plus a
    ``manifest.json``); load back with :func:`load_comparison`."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, list[str]] = {}
    written: list[pathlib.Path] = []
    for method, runs in results.items():
        safe = method.replace("/", "_")
        manifest[method] = []
        for k, res in enumerate(runs):
            name = f"{safe}_run{k}.npz"
            save_result(res, directory / name)
            manifest[method].append(name)
            written.append(directory / name)
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return written


def load_comparison(directory: str | pathlib.Path
                    ) -> dict[str, list[OptimizationResult]]:
    """Inverse of :func:`save_comparison`."""
    directory = pathlib.Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    return {
        method: [load_result(directory / name) for name in names]
        for method, names in manifest.items()
    }


def load_result(path: str | pathlib.Path) -> OptimizationResult:
    """Load a result previously written by :func:`save_result`.

    Archives are read with ``allow_pickle=False``; only a version-1
    archive (whose ``kinds`` array is object-dtype) is re-opened with
    pickle enabled, and only after its header has been verified.
    """
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(str(data["header"]))
        version = header.get("version")
        if version not in (1, _FORMAT_VERSION):
            raise ValueError(
                f"unsupported result format version {version}")
        if version == 1:
            # v1 archives stored object-dtype kinds; only this legacy
            # branch may unpickle.
            with np.load(path,  # repro: ignore[code.pickle]
                         allow_pickle=True) as legacy:
                kinds = [str(k) for k in legacy["kinds"]]
        else:
            kinds = [str(k) for k in data["kinds"]]
        records = []
        owners = data["owners"]
        for i in range(len(data["foms"])):
            records.append(EvaluationRecord(
                index=i,
                x=np.array(data["xs"][i]),
                metrics=np.array(data["metrics"][i]),
                fom=float(data["foms"][i]),
                kind=str(kinds[i]),
                owner=None if owners[i] < 0 else int(owners[i]),
                feasible=bool(data["feasible"][i]),
                t_wall=float(data["t_walls"][i]),
            ))
    return OptimizationResult(
        task_name=header["task_name"], method=header["method"],
        records=records, init_best_fom=header["init_best_fom"],
        wall_time_s=header["wall_time_s"],
    )
