"""Design space: named, bounded, possibly-integer parameters.

Optimizers operate in the normalized unit hypercube ``[0, 1]^d`` (as
DNN-Opt/MA-Opt do); :meth:`DesignSpace.denormalize` maps back to physical
values, rounding integer parameters at that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Parameter:
    """One design variable.

    Attributes
    ----------
    name: identifier (e.g. ``"W1"``).
    low / high: physical bounds (inclusive).
    integer: round to the nearest integer when denormalizing (the paper's
        N1..N3 multipliers).
    unit: documentation-only unit string.
    """

    name: str
    low: float
    high: float
    integer: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter needs a name")
        if not self.low < self.high:
            raise ValueError(f"parameter {self.name}: need low < high")

    def denormalize(self, u: float) -> float:
        """Map u in [0,1] to a physical value."""
        x = self.low + float(u) * (self.high - self.low)
        if self.integer:
            x = float(np.clip(round(x), np.ceil(self.low), np.floor(self.high)))
        return x

    def normalize(self, x: float) -> float:
        """Map a physical value to [0,1]."""
        return (float(x) - self.low) / (self.high - self.low)


class DesignSpace:
    """An ordered collection of :class:`Parameter`."""

    def __init__(self, parameters: list[Parameter]) -> None:
        if not parameters:
            raise ValueError("design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        self.parameters = list(parameters)
        self._index = {p.name: i for i, p in enumerate(parameters)}

    @property
    def d(self) -> int:
        """Dimensionality (the paper's ``d``)."""
        return len(self.parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def __iter__(self):
        return iter(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        return self.parameters[self._index[name]]

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform samples in the unit cube, shape (n, d)."""
        if n < 1:
            raise ValueError("need n >= 1")
        return rng.uniform(0.0, 1.0, size=(n, self.d))

    def clip(self, u: np.ndarray) -> np.ndarray:
        """Clip normalized designs into [0, 1]."""
        return np.clip(np.asarray(u, dtype=float), 0.0, 1.0)

    def denormalize(self, u: np.ndarray) -> dict[str, float]:
        """Map one normalized design vector to a name -> value dict."""
        u = np.asarray(u, dtype=float).ravel()
        if u.shape != (self.d,):
            raise ValueError(f"expected shape ({self.d},), got {u.shape}")
        return {
            p.name: p.denormalize(ui) for p, ui in zip(self.parameters, u)
        }

    def denormalize_array(self, u: np.ndarray) -> np.ndarray:
        """Vectorized denormalization preserving order, shape (n, d)."""
        u = np.atleast_2d(np.asarray(u, dtype=float))
        out = np.empty_like(u)
        for j, p in enumerate(self.parameters):
            col = p.low + u[:, j] * (p.high - p.low)
            if p.integer:
                col = np.clip(np.round(col), np.ceil(p.low), np.floor(p.high))
            out[:, j] = col
        return out

    def normalize(self, values: dict[str, float]) -> np.ndarray:
        """Map a name -> physical value dict to a normalized vector."""
        u = np.empty(self.d)
        for i, p in enumerate(self.parameters):
            if p.name not in values:
                raise KeyError(f"missing parameter {p.name!r}")
            u[i] = p.normalize(values[p.name])
        return u

    def table(self) -> list[tuple[str, str, str]]:
        """(name, unit, range) rows — regenerates the paper's Tables I/III/V."""
        rows = []
        for p in self.parameters:
            lo = int(p.low) if p.integer else p.low
            hi = int(p.high) if p.integer else p.high
            rows.append((p.name, p.unit or ("integer" if p.integer else "-"),
                         f"[{lo:g}, {hi:g}]"))
        return rows
