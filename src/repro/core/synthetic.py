"""Synthetic sizing tasks: cheap analytic stand-ins for circuit tasks.

These exercise the full optimizer code path (constraints, FoM, critic,
actors, near-sampling) in microseconds per evaluation, which the test suite
and quick demos rely on.  They follow the same Eq. 1 shape as the circuit
tasks: minimize a target subject to ``>``/``<`` specs.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SizingTask, Spec, Target
from repro.core.space import DesignSpace, Parameter


class ConstrainedSphere(SizingTask):
    """Minimize ||x - a||^2 subject to a minimum "gain" and a maximum "power".

    * target  ``loss = ||x - a||^2``  (optimum at x = a, loss 0)
    * ``gain = 20 * (1 - ||x - b|| / sqrt(d))`` must exceed ``gain_min``
      (pulls designs toward b)
    * ``power = mean(x)`` must stay below ``power_max``

    ``a`` and ``b`` are distinct random-but-fixed anchors, so the feasible
    optimum is a genuine compromise, as in circuit sizing.
    """

    def __init__(self, d: int = 8, seed: int = 0, gain_min: float = 10.0,
                 power_max: float = 0.6) -> None:
        self.name = f"sphere{d}"
        rng = np.random.default_rng(seed)
        self._a = rng.uniform(0.3, 0.7, size=d)
        self._b = np.clip(self._a + rng.uniform(-0.2, 0.2, size=d), 0.05, 0.95)
        self.space = DesignSpace(
            [Parameter(f"x{i}", 0.0, 1.0) for i in range(d)]
        )
        self.target = Target("loss", weight=1.0, fail_value=float(d))
        self.specs = [
            Spec("gain", ">", gain_min),
            Spec("power", "<", power_max),
        ]

    def simulate(self, u: np.ndarray) -> dict[str, float]:
        u = np.asarray(u, dtype=float)
        d = u.size
        loss = float(np.sum((u - self._a) ** 2))
        gain = 20.0 * (1.0 - np.linalg.norm(u - self._b) / np.sqrt(d))
        power = float(np.mean(u))
        return {"loss": loss, "gain": gain, "power": power}


class QuadraticAmplifierToy(SizingTask):
    """A 2-D toy with amplifier-flavoured trade-offs, handy for plots.

    ``x = (w, i)``: device width and bias current, both normalized.

    * power  = i (minimize)
    * gain   = 40 + 30*w - 25*i   must exceed 55 "dB"
    * bw     = 10 + 80*i*(0.3+w)  must exceed 30 "MHz"

    Low power wants small i; gain wants big w and small i; bandwidth wants
    big i — a miniature of the OTA's power/gain/speed triangle.
    """

    def __init__(self) -> None:
        self.name = "toyamp"
        self.space = DesignSpace([
            Parameter("w", 0.0, 1.0),
            Parameter("i", 0.0, 1.0),
        ])
        self.target = Target("power", weight=1.0, fail_value=2.0)
        self.specs = [
            Spec("gain", ">", 55.0),
            Spec("bw", ">", 30.0),
        ]

    def simulate(self, u: np.ndarray) -> dict[str, float]:
        w, i = float(u[0]), float(u[1])
        return {
            "power": i,
            "gain": 40.0 + 30.0 * w - 25.0 * i,
            "bw": 10.0 + 80.0 * i * (0.3 + w),
        }


class NoisyConstrainedSphere(ConstrainedSphere):
    """ConstrainedSphere with Gaussian measurement noise — stresses the
    critic's robustness the way simulator tolerance scatter would."""

    def __init__(self, d: int = 8, seed: int = 0, noise: float = 0.02,
                 **kwargs) -> None:
        super().__init__(d=d, seed=seed, **kwargs)
        self.name = f"noisysphere{d}"
        self._noise_rng = np.random.default_rng(seed + 12345)
        self._noise = noise

    def simulate(self, u: np.ndarray) -> dict[str, float]:
        metrics = super().simulate(u)
        return {
            key: value * (1.0 + self._noise_rng.normal(0.0, self._noise))
            for key, value in metrics.items()
        }

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        return state
