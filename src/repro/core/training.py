"""Critic and actor training loops (Eqs. 4-6).

Critic: plain MSE regression over pseudo-sample batches (Eq. 4).

Actor: minimize, over a batch of states x_k drawn from X^tot,

    L(theta_mu) = mean_k ( g[Q(x_k, mu(x_k))] + || lambda * viol_k ||_2 )

(Eq. 5), where viol_k penalizes actions that leave the elite-solution-set
bounding box (Eq. 6).  Gradients flow through the frozen critic into the
actor; the critic's accumulated parameter gradients are discarded (its own
optimizer always zeroes before stepping).
"""

from __future__ import annotations

import numpy as np

from repro.core.fom import FigureOfMerit
from repro.core.networks import Actor, Critic
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.pseudo import pseudo_sample_batch
from repro.obs import NULL_TELEMETRY, Telemetry


def train_critic(critic: Critic, total: TotalDesignSet, steps: int,
                 batch_size: int, rng: np.random.Generator,
                 telemetry: Telemetry | None = None) -> float:
    """Run ``steps`` critic updates on fresh pseudo-sample batches.

    Returns the mean loss over the last 10 steps (for diagnostics).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    obs = telemetry or NULL_TELEMETRY
    with obs.span("critic-train", steps=steps, n_total=len(total.designs)):
        critic.fit_scaler(total.metrics)
        losses = []
        for _ in range(steps):
            inputs, targets = pseudo_sample_batch(total, batch_size, rng)
            losses.append(critic.train_step(inputs, targets))
    tail = losses[-10:]
    loss = float(np.mean(tail))
    obs.observe("critic_loss", loss)
    return loss


def boundary_violation(x: np.ndarray, actions: np.ndarray,
                       lb: np.ndarray, ub: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 6: per-dimension violation of the elite bounding box.

    Returns ``(viol, dviol_da)`` where ``viol = max(0, lb - (x+a)) +
    max(0, (x+a) - ub)`` and ``dviol_da`` is its derivative w.r.t. the
    action (-1 below the box, +1 above, 0 inside).
    """
    nxt = x + actions
    below = lb - nxt
    above = nxt - ub
    viol = np.maximum(0.0, below) + np.maximum(0.0, above)
    dviol = np.where(below > 0.0, -1.0, 0.0) + np.where(above > 0.0, 1.0, 0.0)
    return viol, dviol


def train_actor(actor: Actor, critic: Critic, fom: FigureOfMerit,
                total: TotalDesignSet, elite: EliteSet, steps: int,
                batch_size: int, lambda_viol: float,
                rng: np.random.Generator,
                train_on: str = "elite",
                telemetry: Telemetry | None = None,
                actor_index: int | None = None) -> float:
    """Run ``steps`` actor updates (Eq. 5); returns the final loss value.

    ``train_on`` selects the state distribution:

    * ``"elite"`` — batch states from the elite solution set (the paper uses
      the elite set to "limit the search space of an actor network");
    * ``"total"`` — uniform over every simulated design;
    * ``"mixed"`` (default) — half and half, hedging exploitation focus
      against coverage of the wider landscape.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if train_on not in ("elite", "total", "mixed"):
        raise ValueError("train_on must be 'elite', 'total' or 'mixed'")
    obs = telemetry or NULL_TELEMETRY
    with obs.span("actor-train", steps=steps, actor=actor_index):
        lb, ub = elite.bounds()
        if train_on == "elite":
            designs = elite.designs()
        elif train_on == "total":
            designs = total.designs
        else:
            elite_designs = elite.designs()
            reps = int(np.ceil(
                len(total.designs) / max(len(elite_designs), 1)))
            designs = np.concatenate(
                [total.designs, np.tile(elite_designs, (reps, 1))])
        n = len(designs)
        loss_val = 0.0
        for _ in range(steps):
            idx = rng.integers(0, n, size=min(batch_size, n))
            x = designs[idx]
            nb = x.shape[0]
            # Forward: actor -> action -> critic -> raw metrics -> FoM.
            actions_raw = actor.net.forward(x)       # tanh output in [-1,1]
            actions = actions_raw * actor.action_scale
            critic_in = np.concatenate([x, actions], axis=1)
            q_scaled = critic.net.forward(critic_in)
            metrics = critic.scaler.inverse(q_scaled)
            g = fom(metrics)
            viol, dviol = boundary_violation(x, actions, lb, ub)
            lam_viol = lambda_viol * viol
            norms = np.sqrt((lam_viol**2).sum(axis=1))
            loss_val = float(np.mean(g) + np.mean(norms))
            # Backward: dL/d(metrics) -> dL/d(q_scaled) -> critic input grad.
            dmetrics = fom.gradient(metrics) / nb
            dq = dmetrics * critic.scaler.jacobian_from_raw(metrics)
            critic.net.zero_grad()
            din = critic.net.backward(dq)
            dactions = din[:, actor.d:]
            # Violation-norm: d||w|| / da_j = w_j * lambda * dviol_j / ||w||.
            safe = np.where(norms > 1e-12, norms, 1.0)[:, None]
            dnorm = np.where(norms[:, None] > 1e-12,
                             lam_viol * lambda_viol * dviol / safe, 0.0) / nb
            dactions = dactions + dnorm
            actor.net.zero_grad()
            actor.net.backward(dactions * actor.action_scale)
            actor.opt.step()
            # Discard critic gradients produced by the pass-through.
            critic.net.zero_grad()
    if actor_index is None:
        obs.observe("actor_loss", loss_val)
    else:
        obs.observe("actor_loss", loss_val, actor=actor_index)
    return loss_val


def propose_design(actor: Actor, critic: Critic, fom: FigureOfMerit,
                   elite: EliteSet,
                   exclude: list[np.ndarray] | None = None,
                   min_dist: float = 0.05,
                   ucb_beta: float = 0.0,
                   telemetry: Telemetry | None = None) -> np.ndarray:
    """Alg. 1 lines 8-9: pick the elite state whose actor-proposed successor
    the critic predicts to be best, and return that successor (clipped to
    the unit cube) for simulation.

    ``exclude`` holds proposals already claimed by other actors in the same
    round; candidates within ``min_dist`` (Euclidean, normalized space) of
    any of them are skipped so parallel actors spend the round's simulations
    on *diverse* designs (the point of having multiple actors).  If every
    candidate is too close, the predicted-best one is returned anyway.

    ``ucb_beta > 0`` (requires a critic *ensemble*) ranks candidates
    optimistically by ``mean_members(g) - beta * std_members(g)`` — designs
    the critics disagree about get an exploration bonus.
    """
    states = elite.designs()
    if len(states) == 0:
        raise ValueError("empty elite set")
    obs = telemetry or NULL_TELEMETRY
    with obs.span("propose", n_states=len(states)):
        actions = actor.act(states)
        if ucb_beta > 0.0 and hasattr(critic, "members"):
            per_member = np.array([
                fom(member.predict(states, actions))
                for member in critic.members
            ])
            g = per_member.mean(axis=0) - ucb_beta * per_member.std(axis=0)
        else:
            metrics = critic.predict(states, actions)
            g = fom(metrics)
        order = np.argsort(g)
        successors = np.clip(states + actions, 0.0, 1.0)
        if exclude:
            taken = np.array(exclude)
            for k in order:
                cand = successors[k]
                if np.min(np.linalg.norm(taken - cand, axis=1)) >= min_dist:
                    return cand
        return successors[int(order[0])]
