"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.runner` — the shared-initial-set protocol, the
  method registry (BO, DNN-Opt, MA-Opt1, MA-Opt2, MA-Opt, plus extras) and
  multi-run comparisons.
* :mod:`repro.experiments.tables` — Tables I-VI formatting.
* :mod:`repro.experiments.figures` — Fig. 5 convergence series.
* :mod:`repro.experiments.config` — bench scaling knobs (environment
  variables documented in DESIGN.md).
"""

from repro.experiments.config import BenchConfig
from repro.experiments.runner import (
    METHOD_NAMES,
    make_initial_set,
    run_comparison,
    run_method,
)
from repro.experiments.tables import comparison_table, parameter_table
from repro.experiments.figures import fom_curves

__all__ = [
    "BenchConfig",
    "METHOD_NAMES",
    "make_initial_set",
    "run_method",
    "run_comparison",
    "comparison_table",
    "parameter_table",
    "fom_curves",
]
