"""Bench scaling configuration.

The paper's protocol (10 runs x 200 simulations x 100 initial samples per
method per circuit) takes hours on a laptop-scale simulator.  The bench
suite therefore defaults to a scaled-down protocol and honours environment
variables for scaling up:

===================  ======================================  ========
variable             meaning                                 default
===================  ======================================  ========
MAOPT_BENCH_RUNS     repeats per method                      2
MAOPT_BENCH_SIMS     post-init simulation budget             100
MAOPT_BENCH_INIT     initial random samples                  50
MAOPT_BENCH_METHODS  comma-separated method subset           BO,DNN-Opt,MA-Opt1,MA-Opt2,MA-Opt
MAOPT_BENCH_FULL     set to 1 for the full paper protocol    unset
===================  ======================================  ========
"""

from __future__ import annotations

import os
from dataclasses import dataclass

PAPER_METHODS = ["BO", "DNN-Opt", "MA-Opt1", "MA-Opt2", "MA-Opt"]

# Hyper-parameters the paper leaves unstated, calibrated on the circuit
# tasks (see DESIGN.md "Calibrated hyper-parameters").  Shared by the CLI,
# the examples and the bench suite so every entry point reports the same
# optimizer.
TUNED_MAOPT = {
    "critic_steps": 60,
    "actor_steps": 25,
    "batch_size": 32,
    "n_elite": 24,
    "action_scale": 0.25,
}


@dataclass(frozen=True)
class BenchConfig:
    """Resolved bench protocol parameters."""

    n_runs: int = 2
    n_sims: int = 100
    n_init: int = 50
    methods: tuple[str, ...] = tuple(PAPER_METHODS)
    fidelity: str = "fast"
    seed: int = 2023

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Read the MAOPT_BENCH_* environment variables."""
        if os.environ.get("MAOPT_BENCH_FULL") == "1":
            base = cls(n_runs=10, n_sims=200, n_init=100, fidelity="full")
        else:
            base = cls()
        n_runs = int(os.environ.get("MAOPT_BENCH_RUNS", base.n_runs))
        n_sims = int(os.environ.get("MAOPT_BENCH_SIMS", base.n_sims))
        n_init = int(os.environ.get("MAOPT_BENCH_INIT", base.n_init))
        methods = tuple(
            m.strip()
            for m in os.environ.get(
                "MAOPT_BENCH_METHODS", ",".join(base.methods)
            ).split(",")
            if m.strip()
        )
        return cls(n_runs=n_runs, n_sims=n_sims, n_init=n_init,
                   methods=methods, fidelity=base.fidelity, seed=base.seed)
