"""Fig. 5 series: log10 average best-so-far FoM vs simulation count."""

from __future__ import annotations

import numpy as np

from repro.core.result import OptimizationResult


def fom_curves(results: dict[str, list[OptimizationResult]]
               ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Per-method (simulation index, log10 mean best-so-far FoM) series.

    The paper's Fig. 5 plots the run-averaged best FoM on a log scale; the
    x axis here is the post-initialization simulation index (0 = the
    initial set's best).
    """
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for method, runs in results.items():
        if not runs:
            continue
        length = min(r.n_sims for r in runs) + 1
        traces = np.stack([r.best_fom_trace()[:length] for r in runs])
        mean = traces.mean(axis=0)
        curves[method] = (np.arange(length),
                          np.log10(np.maximum(mean, 1e-300)))
    return curves


def fom_vs_runtime_curves(results: dict[str, list[OptimizationResult]],
                          n_points: int = 50
                          ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Per-method (wall seconds, log10 mean best-so-far FoM) series.

    This is the paper's runtime-fair view (Section III-A compares average
    FoMs "based on the total runtime of DNN-Opt"): methods with cheaper
    rounds show more progress per second.  Run curves are resampled onto a
    common time grid (forward-filled) before averaging.
    """
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for method, runs in results.items():
        if not runs:
            continue
        t_end = min((r.records[-1].t_wall if r.records else 0.0)
                    for r in runs)
        if t_end <= 0:
            continue
        grid = np.linspace(0.0, t_end, n_points)
        traces = []
        for r in runs:
            times, best = r.fom_vs_runtime()
            idx = np.searchsorted(times, grid, side="right") - 1
            vals = np.where(idx >= 0, best[np.maximum(idx, 0)],
                            r.init_best_fom)
            traces.append(vals)
        mean = np.mean(traces, axis=0)
        curves[method] = (grid, np.log10(np.maximum(mean, 1e-300)))
    return curves


def render_ascii(curves: dict[str, tuple[np.ndarray, np.ndarray]],
                 width: int = 64, height: int = 16,
                 title: str = "") -> str:
    """Plot the Fig. 5 series as ASCII art (keeps the repo plot-library
    free; examples can dump the raw series to CSV for external plotting)."""
    if not curves:
        return "(no data)"
    all_y = np.concatenate([y for _, y in curves.values()])
    y_lo, y_hi = float(np.min(all_y)), float(np.max(all_y))
    if y_hi - y_lo < 1e-9:
        y_hi = y_lo + 1.0
    x_max = max(float(x[-1]) for x, _ in curves.values())
    x_span = x_max if x_max > 0 else 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "abcdefgh"
    legend = []
    for (method, (x, y)), mark in zip(curves.items(), marks):
        legend.append(f"  {mark} = {method}")
        for xi, yi in zip(x, y):
            col = min(width - 1, max(0, int(xi / x_span * (width - 1))))
            row = min(height - 1,
                      max(0, int((y_hi - yi) / (y_hi - y_lo) * (height - 1))))
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"log10(avg FoM)  top={y_hi:.2f}  bottom={y_lo:.2f}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"> x (0..{x_max:g})")
    lines.extend(legend)
    return "\n".join(lines)


def curves_to_csv(curves: dict[str, tuple[np.ndarray, np.ndarray]]) -> str:
    """Serialize Fig. 5 series as CSV (sim index + one column per method)."""
    if not curves:
        return ""
    methods = list(curves)
    length = min(len(x) for x, _ in curves.values())
    header = "sim," + ",".join(methods)
    rows = [header]
    for i in range(length):
        vals = ",".join(f"{curves[m][1][i]:.6f}" for m in methods)
        rows.append(f"{int(curves[methods[0]][0][i])},{vals}")
    return "\n".join(rows)
