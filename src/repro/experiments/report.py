"""Assemble the bench artifacts into one markdown report.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, :func:`build_report` stitches every table, curve
preview and ablation into a single ``REPORT.md``-style document — the
one-file summary you attach to a reproduction review.

Usage::

    python -m repro.experiments.report [results_dir] [output.md]
"""

from __future__ import annotations

import pathlib
import sys

SECTIONS: list[tuple[str, list[tuple[str, str]]]] = [
    ("Design-parameter tables (paper Tables I / III / V)", [
        ("Two-stage OTA", "table1_ota_params.txt"),
        ("Three-stage TIA", "table3_tia_params.txt"),
        ("LDO regulator", "table5_ldo_params.txt"),
    ]),
    ("Algorithm comparisons (paper Tables II / IV / VI)", [
        ("Two-stage OTA", "table2_ota_comparison.txt"),
        ("Three-stage TIA", "table4_tia_comparison.txt"),
        ("LDO regulator", "table6_ldo_comparison.txt"),
    ]),
    ("FoM convergence (paper Fig. 5)", [
        ("OTA", "figure5_ota_ascii.txt"),
        ("TIA", "figure5_tia_ascii.txt"),
        ("LDO", "figure5_ldo_ascii.txt"),
    ]),
    ("Runtime-fair comparison (Section III-A normalization)", [
        ("OTA vs wall-clock", "runtime_ota_ascii.txt"),
        ("FoM at DNN-Opt's runtime", "runtime_ota_at_ref.txt"),
    ]),
    ("Ablations", [
        ("Shared vs individual elite sets (Fig. 2)",
         "ablation_elite_sharing.txt"),
        ("Number of actors", "ablation_num_actors.txt"),
        ("Near-sampling (Alg. 2)", "ablation_near_sampling.txt"),
        ("Pseudo-samples (Eq. 3)", "ablation_pseudo_samples.txt"),
        ("Multiple critics", "ablation_multi_critic.txt"),
    ]),
]


def build_report(results_dir: str | pathlib.Path,
                 output: str | pathlib.Path | None = None) -> str:
    """Return (and optionally write) the assembled markdown report."""
    results_dir = pathlib.Path(results_dir)
    lines = [
        "# MA-Opt reproduction — bench report",
        "",
        "Generated from `benchmarks/results/`. Protocol knobs: see",
        "`repro.experiments.config.BenchConfig` (MAOPT_BENCH_* env vars).",
        "",
    ]
    missing: list[str] = []
    for title, items in SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        for label, fname in items:
            path = results_dir / fname
            lines.append(f"### {label}")
            lines.append("")
            if path.exists():
                lines.append("```")
                lines.append(path.read_text().rstrip())
                lines.append("```")
            else:
                missing.append(fname)
                lines.append(f"*(missing — run the bench that writes "
                             f"`{fname}`)*")
            lines.append("")
    if missing:
        lines.append(f"> {len(missing)} artifact(s) missing: "
                     + ", ".join(missing))
    text = "\n".join(lines)
    if output is not None:
        pathlib.Path(output).write_text(text)
    return text


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results = argv[0] if argv else "benchmarks/results"
    output = argv[1] if len(argv) > 1 else "REPORT.md"
    build_report(results, output)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
