"""Method registry and the paper's multi-run comparison protocol.

Protocol (Section III-A): for each circuit and each repeat, one initial set
of ``n_init`` random designs is simulated once and *shared by every
method*; each method then spends the same ``n_sims`` simulation budget.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.baselines import (
    BayesOpt,
    DifferentialEvolution,
    ParticleSwarm,
    PPOSizer,
    RandomSearch,
)
from repro.core.config import MAOptConfig, VariantPreset
from repro.core.ma_opt import MAOptimizer
from repro.core.problem import SizingTask
from repro.core.result import OptimizationResult

METHOD_NAMES = [
    "BO", "DNN-Opt", "MA-Opt1", "MA-Opt2", "MA-Opt",
    "Random", "PSO", "DE", "PPO",
]

_PRESETS = {
    "DNN-Opt": VariantPreset.DNN_OPT,
    "MA-Opt1": VariantPreset.MA_OPT_1,
    "MA-Opt2": VariantPreset.MA_OPT_2,
    "MA-Opt": VariantPreset.MA_OPT,
}

_BASELINES = {
    "BO": BayesOpt,
    "Random": RandomSearch,
    "PSO": ParticleSwarm,
    "DE": DifferentialEvolution,
    "PPO": PPOSizer,
}


def make_initial_set(task: SizingTask, n_init: int,
                     seed: int | None = None,
                     telemetry=None,
                     resilience=None,
                     n_workers: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Sample and simulate the shared initial set X^init.

    The simulations run through a scoped
    :class:`~repro.core.parallel.SimulationExecutor`, so they are counted
    by ``telemetry`` and, when a
    :class:`~repro.core.config.ResilienceConfig` is given, covered by the
    same retry/quarantine policy as the optimization loop.
    """
    from repro.core.parallel import SimulationExecutor

    rng = np.random.default_rng(seed)
    x_init = task.space.sample(rng, n_init)
    with SimulationExecutor(task, n_workers=n_workers, telemetry=telemetry,
                            resilience=resilience) as executor:
        f_init = executor.evaluate_batch(x_init, kind="init")
    return x_init, f_init


def run_method(method: str, task: SizingTask, n_sims: int,
               x_init: np.ndarray, f_init: np.ndarray,
               seed: int | None = None,
               maopt_overrides: dict | None = None,
               telemetry=None) -> OptimizationResult:
    """Run one named method under the shared-initial-set protocol.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) is threaded into the
    optimizer; sharing one bundle across calls aggregates their traces,
    metrics, and events (``run`` spans carry a ``method`` attribute).
    """
    if method in _PRESETS:
        cfg = MAOptConfig.from_preset(_PRESETS[method], seed=seed,
                                      **(maopt_overrides or {}))
        opt = MAOptimizer(task, cfg, telemetry=telemetry)
        return opt.run(n_sims=n_sims, x_init=x_init, f_init=f_init,
                       method_name=method)
    if method in _BASELINES:
        opt = _BASELINES[method](task, seed=seed, telemetry=telemetry)
        return opt.run(n_sims=n_sims, x_init=x_init, f_init=f_init)
    raise ValueError(f"unknown method {method!r}; options: {METHOD_NAMES}")


def _checkpoint_name(method: str, run: int) -> str:
    return f"{method.replace('/', '_')}_run{run}.npz"


def run_comparison(task: SizingTask, methods: list[str] | tuple[str, ...],
                   n_runs: int, n_sims: int, n_init: int,
                   seed: int = 0,
                   maopt_overrides: dict | None = None,
                   verbose: bool = False,
                   telemetry=None,
                   checkpoint_dir: str | pathlib.Path | None = None,
                   run_store=None
                   ) -> dict[str, list[OptimizationResult]]:
    """The full Table II/IV/VI experiment for one circuit.

    Returns method -> list of per-repeat results.  Repeat ``r`` uses the
    same initial set for every method (seeded by ``seed + r``).  A shared
    ``telemetry`` bundle collects every method's spans/metrics/events.

    With ``checkpoint_dir`` the comparison becomes resumable at
    (method, run) granularity: each completed run is archived there via
    :func:`repro.core.serialize.save_result`, and a re-invocation with the
    same directory loads the archives instead of re-running those cells.
    Simulation budgets are the expensive resource, so a killed comparison
    loses at most one in-flight run.

    With ``run_store`` (a :class:`repro.obs.store.RunStore`) every
    (method, repeat) cell additionally gets its own durable run record —
    ``ma-opt runs list`` then shows the whole study as comparable rows.
    """
    from repro.core.serialize import load_result, save_result

    if checkpoint_dir is not None:
        checkpoint_dir = pathlib.Path(checkpoint_dir)
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
    results: dict[str, list[OptimizationResult]] = {m: [] for m in methods}
    for r in range(n_runs):
        run_seed = seed + r
        todo = [m for m in methods
                if checkpoint_dir is None
                or not (checkpoint_dir / _checkpoint_name(m, r)).exists()]
        x_init = f_init = None
        if todo:  # a fully-restored repeat never re-simulates its init set
            x_init, f_init = make_initial_set(task, n_init, seed=run_seed,
                                              telemetry=telemetry)
        for method in methods:
            if method not in todo:
                res = load_result(checkpoint_dir / _checkpoint_name(method, r))
                results[method].append(res)
                if verbose:
                    print(f"[run {r}] {method:8s} restored from checkpoint "
                          f"(best_fom={res.best_fom:.4g})")
                continue
            recorder = None
            cell_telemetry = telemetry
            if run_store is not None:
                recorder = run_store.create_run(
                    method=method, task=task.name, base=telemetry,
                    meta={"repeat": r, "n_sims": n_sims, "n_init": n_init,
                          "seed": run_seed})
                cell_telemetry = recorder.telemetry
            try:
                res = run_method(method, task, n_sims, x_init, f_init,
                                 seed=run_seed * 1000 + 7,
                                 maopt_overrides=maopt_overrides,
                                 telemetry=cell_telemetry)
            except Exception as exc:
                if recorder is not None:
                    recorder.mark_failed(repr(exc))
                raise
            results[method].append(res)
            if checkpoint_dir is not None:
                save_result(res, checkpoint_dir / _checkpoint_name(method, r))
            if verbose:
                bf = res.best_feasible()
                print(f"[run {r}] {method:8s} best_fom={res.best_fom:.4g} "
                      f"success={res.success} "
                      f"target={'-' if bf is None else f'{bf.metrics[0]:.4g}'} "
                      f"time={res.wall_time_s:.1f}s")
    return results
