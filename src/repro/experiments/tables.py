"""Table builders mirroring the paper's evaluation tables.

* :func:`parameter_table` — Tables I / III / V (design-parameter ranges).
* :func:`comparison_table` — Tables II / IV / VI (success rate, minimum
  target metric, log10 average FoM, total runtime).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SizingTask
from repro.core.result import OptimizationResult


def parameter_table(task: SizingTask) -> str:
    """Render the design-parameter table of a task (Tables I/III/V)."""
    rows = task.space.table()
    name_w = max(len("Parameter"), *(len(r[0]) for r in rows)) + 2
    unit_w = max(len("Unit"), *(len(r[1]) for r in rows)) + 2
    lines = [f"Design parameters for task {task.name!r} (d={task.d})",
             f"{'Parameter':<{name_w}}{'Unit':<{unit_w}}Range"]
    lines.extend(f"{n:<{name_w}}{u:<{unit_w}}{rng}" for n, u, rng in rows)
    return "\n".join(lines)


def summarize_method(results: list[OptimizationResult]) -> dict:
    """Aggregate one method's repeats into the paper's table row."""
    if not results:
        raise ValueError("no results to summarize")
    n = len(results)
    successes = sum(r.success for r in results)
    best_targets = [r.best_feasible() for r in results]
    feas_targets = [float(b.metrics[0]) for b in best_targets if b is not None]
    final_foms = np.array([r.best_fom for r in results])
    mean_fom = float(np.mean(final_foms))
    return {
        "n_runs": n,
        "success": f"{successes}/{n}",
        "success_rate": successes / n,
        "min_target": min(feas_targets) if feas_targets else None,
        "log10_avg_fom": float(np.log10(max(mean_fom, 1e-300))),
        "total_runtime_h": float(np.mean([r.wall_time_s for r in results])) / 3600.0,
    }


def significance_matrix(results: dict[str, list[OptimizationResult]]
                        ) -> tuple[list[str], np.ndarray]:
    """Pairwise Mann-Whitney U p-values over the runs' final best FoMs.

    Returns (method order, p-value matrix); diagonal is 1. With the paper's
    10 repeats this quantifies whether, e.g., MA-Opt's FoM advantage over
    DNN-Opt is statistically meaningful rather than seed luck.  Requires at
    least 3 runs per method to be informative.
    """
    from scipy.stats import mannwhitneyu

    methods = list(results)
    n = len(methods)
    p = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            a = [r.best_fom for r in results[methods[i]]]
            b = [r.best_fom for r in results[methods[j]]]
            if len(a) < 2 or len(b) < 2 or (len(set(a)) == 1
                                            and a == b):
                continue
            try:
                p[i, j] = p[j, i] = float(
                    mannwhitneyu(a, b, alternative="two-sided").pvalue)
            except ValueError:
                pass  # identical samples
    return methods, p


def render_significance(results: dict[str, list[OptimizationResult]]) -> str:
    """Human-readable significance matrix."""
    methods, p = significance_matrix(results)
    width = max(10, *(len(m) + 2 for m in methods))
    lines = ["Pairwise Mann-Whitney p-values (final best FoM):",
             " " * 12 + "".join(f"{m:>{width}}" for m in methods)]
    for i, m in enumerate(methods):
        row = "".join(f"{p[i, j]:>{width}.3f}" for j in range(len(methods)))
        lines.append(f"{m:<12}" + row)
    return "\n".join(lines)


def comparison_table(results: dict[str, list[OptimizationResult]],
                     task: SizingTask,
                     target_label: str | None = None,
                     target_scale: float | None = None) -> str:
    """Render the algorithm-comparison table (Tables II/IV/VI).

    ``target_scale`` converts the SI target metric into the paper's display
    unit; by default SI watts/amperes render as mW/mA and everything else
    is left unscaled.
    """
    if target_scale is None:
        if task.target.unit in ("W", "A"):
            target_scale = 1e3
            if target_label is None:
                target_label = (f"Min {task.target.name} "
                                f"(m{task.target.unit})")
        else:
            target_scale = 1.0
    target_label = target_label or f"Min {task.target.name}"
    methods = list(results)
    rows = {m: summarize_method(results[m]) for m in methods}
    col_w = max(10, *(len(m) + 2 for m in methods))
    head_w = 26

    def fmt_row(label: str, values: list[str]) -> str:
        return f"{label:<{head_w}}" + "".join(f"{v:>{col_w}}" for v in values)

    lines = [
        f"Algorithm comparison for task {task.name!r}",
        fmt_row("Algorithm", methods),
        fmt_row("Success rate", [rows[m]["success"] for m in methods]),
        fmt_row(target_label, [
            "-" if rows[m]["min_target"] is None
            else f"{rows[m]['min_target'] * target_scale:.4g}"
            for m in methods
        ]),
        fmt_row("log10(average FoM)", [
            f"{rows[m]['log10_avg_fom']:.2f}" for m in methods
        ]),
        fmt_row("Total runtime (h)", [
            f"{rows[m]['total_runtime_h']:.4f}" for m in methods
        ]),
    ]
    return "\n".join(lines)
