"""A small, dependency-free neural-network library built on numpy.

This is the substrate MA-Opt's actor and critic networks run on.  It
implements exactly what the paper needs — fully-connected feed-forward
networks with manual reverse-mode differentiation, MSE-style losses, and
first-order optimizers (SGD with momentum, Adam) — so no PyTorch is
required.

Example
-------
>>> import numpy as np
>>> from repro.nn import MLP, Adam, mse_loss
>>> net = MLP([4, 32, 32, 2], activation="tanh", seed=0)
>>> opt = Adam(net.parameters(), lr=1e-3)
>>> x = np.random.default_rng(0).normal(size=(16, 4))
>>> y = np.zeros((16, 2))
>>> for _ in range(10):
...     pred = net.forward(x)
...     loss, dloss = mse_loss(pred, y)
...     net.zero_grad()
...     net.backward(dloss)
...     opt.step()
"""

from repro.nn.initializers import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import (
    Identity,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import huber_loss, mae_loss, mse_loss
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.utils import numerical_gradient

__all__ = [
    "Module",
    "Linear",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Identity",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "numerical_gradient",
]
