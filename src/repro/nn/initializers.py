"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in +
    fan_out))``.  Appropriate for tanh/sigmoid networks such as MA-Opt's
    actors.
    """
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, appropriate for ReLU networks (the critic)."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zeros initializer (used for biases)."""
    del rng
    return np.zeros((fan_in, fan_out))


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look up an initializer by name, raising ``KeyError`` with options."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; options: {sorted(INITIALIZERS)}"
        ) from None
