"""Layers with explicit forward/backward passes.

Every layer caches what it needs during :meth:`forward` and consumes the
cache in :meth:`backward`.  Parameters are exposed as :class:`Parameter`
objects (value + grad) so optimizers can update them in place.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import get_initializer


class Parameter:
    """A trainable array together with its accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class: a differentiable map with (possibly zero) parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``, accumulating
        parameter gradients along the way."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x W + b`` for batched row-vector inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        weight_init: str = "glorot_uniform",
        name: str = "linear",
        seed: int | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer sizes must be positive")
        # Initialization draws come from the caller's generator, or one
        # derived from ``seed`` — never from an unseeded stream, so
        # weights are reproducible in every construction path.
        rng = rng if rng is not None else np.random.default_rng(seed)
        init = get_initializer(weight_init)
        self.weight = Parameter(init(in_features, out_features, rng), f"{name}.W")
        self.bias = Parameter(np.zeros(out_features), f"{name}.b")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.atleast_2d(grad_out)
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be >= 0")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * np.where(self._mask, 1.0, self.negative_slope)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise evaluation.
        out = np.empty_like(np.asarray(x, dtype=float))
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._y = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class Identity(Module):
    """No-op activation (for linear output layers)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


ACTIVATIONS = {
    "tanh": Tanh,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "identity": Identity,
}


def make_activation(name: str) -> Module:
    """Instantiate an activation by name."""
    try:
        return ACTIVATIONS[name]()
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; options: {sorted(ACTIVATIONS)}"
        ) from None
