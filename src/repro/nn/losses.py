"""Loss functions returning ``(value, grad_wrt_prediction)`` pairs."""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements (Eq. 4 of the paper).

    The paper normalizes by ``N_b * (m + 1)``, i.e. by the total element
    count, which is exactly ``np.mean`` over the batch-by-metric matrix.
    """
    pred = np.atleast_2d(pred)
    target = np.atleast_2d(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    value = float(np.mean(diff**2))
    grad = (2.0 / diff.size) * diff
    return value, grad


def mae_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean absolute error (robust alternative for noisy metrics)."""
    pred = np.atleast_2d(pred)
    target = np.atleast_2d(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    value = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return value, grad


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss: quadratic near zero, linear in the tails."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    pred = np.atleast_2d(pred)
    target = np.atleast_2d(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    absd = np.abs(diff)
    quad = absd <= delta
    vals = np.where(quad, 0.5 * diff**2, delta * (absd - 0.5 * delta))
    grads = np.where(quad, diff, delta * np.sign(diff))
    return float(np.mean(vals)), grads / diff.size
