"""Multi-layer perceptron assembled from :mod:`repro.nn.layers`.

MA-Opt's actors and critic are both 2-hidden-layer, 100-unit MLPs; this
class is the shared implementation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Identity, Linear, Module, Parameter, make_activation


class MLP(Module):
    """Fully-connected feed-forward network.

    Parameters
    ----------
    sizes:
        Layer widths, e.g. ``[d_in, 100, 100, d_out]``.
    activation:
        Hidden activation name (``tanh``, ``relu``, ...).
    output_activation:
        Activation applied to the final layer (default ``identity``;
        MA-Opt actors use ``tanh`` so actions live in a bounded box).
    seed:
        Seed for weight initialization; pass ``rng`` instead for full
        control.
    """

    def __init__(
        self,
        sizes: list[int],
        activation: str = "relu",
        output_activation: str = "identity",
        weight_init: str | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        if rng is None:
            rng = np.random.default_rng(seed)
        if weight_init is None:
            weight_init = "he_normal" if activation == "relu" else "glorot_uniform"
        self.sizes = list(sizes)
        self.layers: list[Module] = []
        n_affine = len(sizes) - 1
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            self.layers.append(
                Linear(n_in, n_out, rng=rng, weight_init=weight_init, name=f"fc{i}")
            )
            if i < n_affine - 1:
                self.layers.append(make_activation(activation))
            else:
                self.layers.append(make_activation(output_activation))
        # Drop a trailing Identity for speed/clarity.
        if isinstance(self.layers[-1], Identity):
            self.layers.pop()

    @property
    def in_features(self) -> int:
        return self.sizes[0]

    @property
    def out_features(self) -> int:
        return self.sizes[-1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = np.atleast_2d(grad_out)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass without keeping shapes 2-D for single samples."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        out = self.forward(x)
        return out[0] if single else out

    def get_weights(self) -> list[np.ndarray]:
        """Snapshot all parameter values (copies)."""
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameter values from :meth:`get_weights` output."""
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            if p.value.shape != np.asarray(w).shape:
                raise ValueError(
                    f"shape mismatch for {p.name}: {p.value.shape} vs {np.shape(w)}"
                )
            p.value[...] = w

    def copy(self) -> "MLP":
        """Structural + weight copy (fresh gradient buffers)."""
        clone = MLP.__new__(MLP)
        clone.sizes = list(self.sizes)
        clone.layers = []
        for layer in self.layers:
            if isinstance(layer, Linear):
                new = Linear.__new__(Linear)
                new.weight = Parameter(layer.weight.value.copy(), layer.weight.name)
                new.bias = Parameter(layer.bias.value.copy(), layer.bias.name)
                new._x = None
                clone.layers.append(new)
            else:
                clone.layers.append(type(layer)())
        return clone
