"""First-order optimizers updating :class:`repro.nn.layers.Parameter`."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, params: list[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.betas = (b1, b2)
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        b1, b2 = self.betas
        self._t += 1
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad**2
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
