"""First-order optimizers updating :class:`repro.nn.layers.Parameter`."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        """Snapshot of the optimizer's mutable state (moments, step count).

        Values are either scalars or lists of arrays (one per parameter);
        restoring via :meth:`load_state_dict` makes subsequent steps
        bit-identical to an uninterrupted optimizer — the contract the
        checkpoint/resume layer relies on.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state:
            raise ValueError(f"{type(self).__name__} holds no state, got "
                             f"keys {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, params: list[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ValueError("velocity list length mismatch")
        for v, new in zip(self._velocity, velocity):
            v[...] = new


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.betas = (b1, b2)
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        b1, b2 = self.betas
        self._t += 1
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad**2
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError("moment list length mismatch")
        self._t = int(state["t"])
        for dst, src in zip(self._m, state["m"]):
            dst[...] = src
        for dst, src in zip(self._v, state["v"]):
            dst[...] = src
