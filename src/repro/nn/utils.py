"""Utilities for :mod:`repro.nn` — notably finite-difference grad checks."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.mlp import MLP


def numerical_gradient(
    net: MLP,
    loss_fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> list[np.ndarray]:
    """Finite-difference gradient of ``loss_fn(net.forward(x))`` w.r.t. every
    network parameter.

    Used by the test suite to validate the hand-written backward passes.
    ``loss_fn`` must be a pure function of the network output.
    """
    grads: list[np.ndarray] = []
    for p in net.parameters():
        g = np.zeros_like(p.value)
        flat = p.value.ravel()
        gflat = g.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = loss_fn(net.forward(x))
            flat[i] = orig - eps
            lo = loss_fn(net.forward(x))
            flat[i] = orig
            gflat[i] = (hi - lo) / (2.0 * eps)
        grads.append(g)
    return grads
