"""``repro.obs`` — dependency-free telemetry for the optimizer stack.

Four channels, bundled by :class:`Telemetry`:

* **tracing** (:mod:`repro.obs.trace`): nested timed spans + JSONL export;
* **metrics** (:mod:`repro.obs.metrics`): counters/gauges/histograms;
* **run events** (:mod:`repro.obs.events`): one structured JSONL event per
  evaluation/round, with stdlib-``logging`` mirroring;
* **hooks** (:mod:`repro.obs.hooks`): observer callbacks fired by the
  optimizers.

:mod:`repro.obs.report` turns a trace into a per-phase wall-time
breakdown table; :mod:`repro.obs.store` gives every run a durable on-disk
record (``ma-opt runs``); :mod:`repro.obs.tail` follows a live run's
event/metric streams (``ma-opt tail``).  See ``docs/observability.md``
for the full reference.
"""

from repro.obs.events import RunEvent, RunLogger, configure_logging
from repro.obs.hooks import BaseObserver, ObserverList, ObserverProtocol
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    WorkerCapture,
    WorkerTelemetry,
    absorb_capture,
)
from repro.obs.store import RunRecord, RunRecorder, RunStore, new_run_id
from repro.obs.trace import NOOP_SPAN, Span, Tracer

__all__ = [
    "BaseObserver",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NULL_TELEMETRY",
    "ObserverList",
    "ObserverProtocol",
    "RunEvent",
    "RunLogger",
    "RunRecord",
    "RunRecorder",
    "RunStore",
    "Span",
    "Telemetry",
    "Tracer",
    "WorkerCapture",
    "WorkerTelemetry",
    "absorb_capture",
    "configure_logging",
    "new_run_id",
    "render_prometheus",
]
