"""Run-event stream: one structured event per evaluation/round.

:class:`RunLogger` is the optimizer's event sink.  Every event is kept
in memory (queryable via :meth:`RunLogger.events`), optionally appended to
a JSONL file, and optionally mirrored to a stdlib :mod:`logging` logger.

Event vocabulary emitted by the optimizers:

=================== ====================================================
kind                 payload
=================== ====================================================
run_start            method, task, n_sims
evaluation           kind (init/actor/ns/...), fom, feasible, owner,
                     index, t_wall
round_start          round, kind
round_end            round, kind, plus per-round diagnostics
                     (critic_loss, ...)
run_end              method, n_sims, best_fom, wall_time_s, success
sim_failed           kind, design_index, retries, reason
                     (exception/nonfinite/timeout), error — a design was
                     quarantined by the failure policy
checkpoint_saved     path, round or n_records — an optimizer snapshot
                     was written atomically
checkpoint_restored  path, round or n_records — an optimizer was rebuilt
                     from a snapshot
heartbeat            elapsed_s, n, workers, beats — emitted by the pool's
                     heartbeat thread while a batch is in flight
=================== ====================================================

``MAOptimizer.diagnostics`` is a backward-compatible view over the
``round_end`` events of its logger.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, TextIO

from repro.obs.trace import _json_default


@dataclass
class RunEvent:
    """One structured event; ``t`` is seconds since the logger's creation."""

    kind: str
    t: float
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d = {"event": self.kind, "t": round(self.t, 6)}
        d.update(self.payload)
        return d


def configure_logging(level: int | str = logging.INFO,
                      stream: TextIO | None = None) -> logging.Logger:
    """Set up the ``repro`` logger hierarchy; returns the root of it.

    Safe to call repeatedly (handlers are not duplicated).
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)
    return logger


class RunLogger:
    """Collects run events; optionally streams them to JSONL and/or logging.

    Parameters
    ----------
    path:
        Write one JSON object per event to this file as they happen.
    logger:
        Mirror events to this stdlib logger (or a logger name).
    level:
        Level used for mirrored log lines (default ``INFO``).
    """

    def __init__(self, path: str | None = None,
                 logger: logging.Logger | str | None = None,
                 level: int = logging.INFO) -> None:
        self._t0 = time.perf_counter()
        # emit() is called from the optimizer thread *and* the pool
        # heartbeat thread; the lock keeps the in-memory list and the
        # JSONL file line-atomic under that concurrency.
        self._lock = threading.Lock()
        self._events: list[RunEvent] = []  # repro: guarded-by[_lock]
        self._fh: TextIO | None = (        # repro: guarded-by[_lock]
            open(path, "w", encoding="utf-8") if path else None)
        if isinstance(logger, str):
            logger = logging.getLogger(logger)
        self._logger = logger
        self._level = level

    # -- emission ------------------------------------------------------------
    def emit(self, kind: str, /, **payload: Any) -> RunEvent:
        """Record one event; returns it.  Safe to call from any thread."""
        event = RunEvent(kind, time.perf_counter() - self._t0, payload)
        with self._lock:
            self._events.append(event)
            if self._fh is not None:
                # Writing under the lock is the point: it is what makes
                # each JSONL line atomic with its in-memory append, so a
                # tail reader never sees interleaved half-lines.
                self._fh.write(  # repro: ignore[flow.lock.blocking]
                    json.dumps(event.to_dict(),
                               default=_json_default) + "\n")
                self._fh.flush()  # repro: ignore[flow.lock.blocking]
        if self._logger is not None:
            self._logger.log(
                self._level, "%s %s", kind,
                " ".join(f"{k}={v}" for k, v in payload.items()))
        return event

    # -- inspection ----------------------------------------------------------
    def events(self, kind: str | None = None) -> list[RunEvent]:
        """All events so far, optionally filtered by kind."""
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def export_jsonl(self, path: str) -> int:
        """Dump the in-memory events to ``path``; returns the event count.

        Complements the streaming ``path=`` mode: a logger that ran purely
        in memory can still leave a durable event record afterwards.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event.to_dict(),
                                    default=_json_default) + "\n")
        return len(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def close(self) -> None:
        """Close the JSONL file (idempotent); in-memory events remain."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
