"""Observer callback API for the optimizer stack.

Any object implementing a *subset* of :class:`ObserverProtocol`'s methods
can be attached to :class:`~repro.core.ma_opt.MAOptimizer` or any
``baselines/`` optimizer; missing methods are simply skipped.  Callbacks
run synchronously on the optimizer's thread — keep them cheap, and note
that an exception raised by an observer aborts the run (observers are
trusted code, not sandboxed plugins).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable


@runtime_checkable
class ObserverProtocol(Protocol):
    """Callbacks fired by the optimizers.

    ``optimizer`` is the emitting optimizer instance; baselines treat each
    simulation as a round of size one.
    """

    def on_round_start(self, optimizer: Any, round_index: int,
                       kind: str) -> None: ...

    def on_evaluation(self, optimizer: Any, record: Any) -> None: ...

    def on_round_end(self, optimizer: Any, round_index: int,
                     info: dict) -> None: ...

    def on_run_end(self, optimizer: Any, result: Any) -> None: ...

    def on_run_stopped(self, optimizer: Any, result: Any,
                       reason: str) -> None: ...

    def on_checkpoint(self, optimizer: Any, path: Any) -> None: ...

    def on_heartbeat(self, source: str, info: dict) -> None: ...


class BaseObserver:
    """No-op implementation; subclass and override what you need."""

    def on_round_start(self, optimizer: Any, round_index: int,
                       kind: str) -> None:
        pass

    def on_evaluation(self, optimizer: Any, record: Any) -> None:
        pass

    def on_round_end(self, optimizer: Any, round_index: int,
                     info: dict) -> None:
        pass

    def on_run_end(self, optimizer: Any, result: Any) -> None:
        pass

    def on_run_stopped(self, optimizer: Any, result: Any,
                       reason: str) -> None:
        # Fired instead of on_run_end when a ``should_stop`` hook ended
        # the run early (job-service cancel/shutdown/timeout).
        pass

    def on_checkpoint(self, optimizer: Any, path: Any) -> None:
        pass

    def on_heartbeat(self, source: str, info: dict) -> None:
        # Fired from the pool's heartbeat thread, not the optimizer
        # thread — overrides must be thread-safe.
        pass


class ObserverList:
    """Immutable fan-out dispatcher over a set of observers."""

    __slots__ = ("_observers",)

    def __init__(self, observers: Iterable[Any] = ()) -> None:
        self._observers = tuple(observers)

    def __bool__(self) -> bool:
        return bool(self._observers)

    def __len__(self) -> int:
        return len(self._observers)

    def __iter__(self):
        return iter(self._observers)

    def extended(self, extra: Iterable[Any]) -> "ObserverList":
        """A new list with ``extra`` observers appended."""
        extra = tuple(extra)
        if not extra:
            return self
        return ObserverList(self._observers + extra)

    def emit(self, method: str, *args: Any) -> None:
        """Call ``method(*args)`` on every observer that defines it."""
        for obs in self._observers:
            fn = getattr(obs, method, None)
            if fn is not None:
                fn(*args)
