"""Metrics registry: counters, gauges, and histograms with labels.

Names follow a Prometheus-flavored convention: a metric is identified by
``name`` plus a (possibly empty) label set, rendered as
``sims_total{kind=actor}`` in snapshots and exports.  The registry is
thread-safe; every mutation takes one short lock.

The registry stores raw histogram observations (capped at
:data:`HISTOGRAM_CAP` values per series; running count/sum/min/max stay
exact beyond the cap) so snapshots can report percentiles.
"""

from __future__ import annotations

import csv
import json
import threading
from typing import Any, TextIO

import numpy as np

HISTOGRAM_CAP = 65536


def _key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_key`: ``"sims_total{kind=actor}"`` -> name + labels.

    Label values are stored unquoted, so they must not contain ``,`` or
    ``=`` — true for every label the instrumentation emits (provenance
    kinds, method names).
    """
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    inner = inner.rstrip("}")
    labels: dict[str, str] = {}
    for part in inner.split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None
                 ) -> str:
    """Prometheus-quoted label block (empty string when no labels)."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def render_prometheus(snapshot: dict[str, dict]) -> str:
    """Prometheus text exposition of a :meth:`MetricsRegistry.snapshot`.

    Works on live and stored (JSON round-tripped) snapshots alike —
    histograms become summaries (p50/p95 quantile samples plus ``_sum`` /
    ``_count``), and each metric family gets one ``# TYPE`` header.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = parse_series_key(key)
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {value:g}")
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        name, labels = parse_series_key(key)
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {value:g}")
    for key, stats in sorted(snapshot.get("histograms", {}).items()):
        name, labels = parse_series_key(key)
        header(name, "summary")
        for q, stat in (("0.5", "p50"), ("0.95", "p95")):
            if stat in stats:
                lines.append(
                    f"{name}{_prom_labels(labels, {'quantile': q})} "
                    f"{stats[stat]:g}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} {stats.get('sum', 0.0):g}")
        lines.append(
            f"{name}_count{_prom_labels(labels)} {stats.get('count', 0):g}")
    return "\n".join(lines) + ("\n" if lines else "")


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "values")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.values) < HISTOGRAM_CAP:
            self.values.append(value)

    def stats(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        arr = np.asarray(self.values)
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
        }


class MetricsRegistry:
    """Lazily-created counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}    # repro: guarded-by[_lock]
        self._gauges: dict[str, float] = {}      # repro: guarded-by[_lock]
        self._hists: dict[str, _Histogram] = {}  # repro: guarded-by[_lock]

    # -- recording -----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name{labels}`` by ``value``."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name{labels}`` to its latest value."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into histogram ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = _Histogram()
            hist.observe(float(value))

    # -- reading -------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: Any) -> float | None:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_stats(self, name: str, **labels: Any) -> dict[str, float]:
        with self._lock:
            hist = self._hists.get(_key(name, labels))
            return hist.stats() if hist is not None else {"count": 0}

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time copy: ``{"counters": {...}, "gauges": {...},
        "histograms": {series: stats}}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.stats() for k, h in self._hists.items()},
            }

    def rows(self) -> list[dict]:
        """Flat rows (one per series) for tabular export."""
        snap = self.snapshot()
        out: list[dict] = []
        for key, value in sorted(snap["counters"].items()):
            out.append({"metric": key, "type": "counter", "value": value})
        for key, value in sorted(snap["gauges"].items()):
            out.append({"metric": key, "type": "gauge", "value": value})
        for key, stats in sorted(snap["histograms"].items()):
            row = {"metric": key, "type": "histogram"}
            row.update(stats)
            out.append(row)
        return out

    # -- export --------------------------------------------------------------
    def export_json(self, path_or_file: str | TextIO) -> None:
        self._write(path_or_file,
                    lambda fh: json.dump(self.snapshot(), fh, indent=2,
                                         sort_keys=True))

    def export_csv(self, path_or_file: str | TextIO) -> None:
        rows = self.rows()
        fields = ["metric", "type", "value", "count", "sum", "mean",
                  "min", "max", "p50", "p95"]

        def write(fh: TextIO) -> None:
            writer = csv.DictWriter(fh, fieldnames=fields, restval="")
            writer.writeheader()
            writer.writerows(rows)

        self._write(path_or_file, write)

    def export_prometheus(self, path_or_file: str | TextIO) -> None:
        """Prometheus text exposition format (see :func:`render_prometheus`)."""
        self._write(path_or_file,
                    lambda fh: fh.write(render_prometheus(self.snapshot())))

    def export(self, path: str) -> None:
        """Export by extension: ``.csv`` -> CSV, ``.prom`` -> Prometheus
        text, anything else -> JSON."""
        if str(path).endswith(".csv"):
            self.export_csv(path)
        elif str(path).endswith(".prom"):
            self.export_prometheus(path)
        else:
            self.export_json(path)

    @staticmethod
    def _write(path_or_file: str | TextIO, fn) -> None:
        if hasattr(path_or_file, "write"):
            fn(path_or_file)
        else:
            with open(str(path_or_file), "w", encoding="utf-8",
                      newline="") as fh:
                fn(fh)
