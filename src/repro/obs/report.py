"""Wall-time breakdown reports from trace files.

Answers "where does the run spend its time": aggregates *leaf* spans (the
instrumented phases — critic-train, actor-train, propose, simulate,
near-sampling, ...) by name, plus an ``(other)`` row for time inside the
root spans not covered by any leaf, so the percentages sum to ~100% of
the traced run time.

Usage::

    PYTHONPATH=src python -m repro.obs.report trace.jsonl

or in-process::

    from repro.obs.report import breakdown, render_breakdown
    print(render_breakdown(breakdown(tracer.to_rows())))
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence


def load_trace(path: str) -> list[dict]:
    """Parse a span-per-line JSONL trace file (skipping blank lines)."""
    rows: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def breakdown(rows: Sequence[dict]) -> list[dict]:
    """Aggregate flattened span rows into per-phase wall-time totals.

    Returns rows ``{"phase", "calls", "total_s", "mean_s", "pct"}`` sorted
    by descending total, followed by ``(other)`` (uninstrumented time under
    the roots) and a ``total`` row at 100%.  Total time is the summed
    duration of the root spans (``parent_id is None``).
    """
    if not rows:
        return []
    roots = [r for r in rows if r.get("parent_id") is None]
    total = sum(r["duration_s"] for r in roots)
    parent_ids = {r["parent_id"] for r in rows if r.get("parent_id") is not None}
    leaves = [r for r in rows
              if r["id"] not in parent_ids and r.get("parent_id") is not None]
    if not leaves:  # degenerate trace: roots only
        leaves = roots

    phases: dict[str, dict] = {}
    for row in leaves:
        agg = phases.setdefault(row["name"], {"calls": 0, "total_s": 0.0})
        agg["calls"] += 1
        agg["total_s"] += row["duration_s"]

    out: list[dict] = [{
        "phase": name,
        "calls": agg["calls"],
        "total_s": agg["total_s"],
        "mean_s": agg["total_s"] / agg["calls"],
        "pct": 100.0 * agg["total_s"] / total if total > 0 else 0.0,
    } for name, agg in phases.items()]
    out.sort(key=lambda r: -r["total_s"])

    covered = sum(r["total_s"] for r in out)
    if leaves is not roots:
        other = max(0.0, total - covered)
        out.append({
            "phase": "(other)", "calls": len(roots), "total_s": other,
            "mean_s": other / max(len(roots), 1),
            "pct": 100.0 * other / total if total > 0 else 0.0,
        })
    out.append({
        "phase": "total", "calls": len(roots), "total_s": total,
        "mean_s": total / max(len(roots), 1),
        "pct": 100.0 if total > 0 else 0.0,
    })
    return out


def render_breakdown(rows: Sequence[dict],
                     title: str = "wall-time breakdown") -> str:
    """ASCII table of a :func:`breakdown` result."""
    if not rows:
        return f"{title}: (empty trace)"
    header = f"{'phase':<16} {'calls':>6} {'total_s':>10} {'mean_s':>10} {'%':>6}"
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['phase']:<16} {row['calls']:>6d} {row['total_s']:>10.4f} "
            f"{row['mean_s']:>10.4f} {row['pct']:>6.1f}")
    return "\n".join(lines)


def report_from_tracer(tracer) -> str:
    """Convenience: breakdown table straight from a live Tracer."""
    return render_breakdown(breakdown(tracer.to_rows()))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="per-phase wall-time breakdown of a JSONL trace")
    parser.add_argument("trace", help="trace file written by --trace-out")
    args = parser.parse_args(argv)
    try:
        rows = load_trace(args.trace)
    except OSError as exc:
        print(f"repro.obs.report: error: cannot read {args.trace}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    print(render_breakdown(breakdown(rows), title=f"trace: {args.trace}"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
