"""Durable on-disk run store: every optimization leaves a queryable record.

A *run* is one ``MAOptimizer.run`` / ``BaselineOptimizer.run`` /
``experiments.runner`` cell.  The store gives each run an ID and an
append-only directory under the store root::

    runs/
      20260807-141503-a1b2c3/
        manifest.json    # repro.obs/run document (status, method, summary)
        events.jsonl     # streamed run events (written live, line-atomic)
        metrics.jsonl    # metric snapshots appended at round ends/heartbeats
        metrics.json     # final MetricsRegistry snapshot (on finalize)
        trace.jsonl      # flattened span tree (on finalize)

``events.jsonl`` and ``metrics.jsonl`` are written while the run is in
flight, which is what ``ma-opt tail`` follows; ``trace.jsonl`` and the
manifest summary land when the run finalizes.  The manifest is a
versioned document (``repro.obs/run``, mirroring the
``repro.bench/result`` convention) so future readers can detect stale
layouts instead of misparsing them.

Usage::

    store = RunStore("runs")
    rec = store.create_run(method="ma-opt", task="ota-two-stage")
    MAOptimizer(task, config, telemetry=rec.telemetry).run(n_sims=200)
    # rec finalizes itself via the on_run_end observer hook

    for record in store.list_runs():
        print(record.run_id, record.manifest["status"])

CLI: ``ma-opt runs list|show|diff|export`` and ``ma-opt tail``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Iterable

from repro.obs.events import RunLogger
from repro.obs.hooks import BaseObserver
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer, _json_default

SCHEMA_NAME = "repro.obs/run"
SCHEMA_VERSION = 1
#: Schema of the bundled single-file export (``ma-opt runs export``).
EXPORT_SCHEMA_NAME = "repro.obs/run-export"

MANIFEST = "manifest.json"
EVENTS = "events.jsonl"
METRICS_STREAM = "metrics.jsonl"
METRICS_FINAL = "metrics.json"
TRACE = "trace.jsonl"

#: Manifest statuses.  ``cancelled`` and ``interrupted`` come from the job
#: service: a cancelled job's run was stopped on purpose; an interrupted
#: run was checkpointed and parked by a server shutdown (``ma-opt serve
#: --resume`` continues it in a fresh attempt directory).
STATUSES = ("running", "finished", "failed", "cancelled", "interrupted")
TERMINAL_STATUSES = ("finished", "failed", "cancelled", "interrupted")


def new_run_id() -> str:
    """Sortable, collision-resistant run ID: UTC timestamp + random hex."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{os.urandom(3).hex()}"


def validate_manifest(doc: Any) -> list[str]:
    """All schema problems in a run manifest (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"manifest is {type(doc).__name__}, expected an object"]
    if doc.get("schema") != SCHEMA_NAME:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}; this build "
            f"reads version {SCHEMA_VERSION}")
    if not isinstance(doc.get("run_id"), str) or not doc.get("run_id"):
        problems.append("missing run_id")
    if doc.get("status") not in STATUSES:
        problems.append(f"bad status {doc.get('status')!r}")
    return problems


def ensure_valid_manifest(doc: Any, source: str = "manifest") -> dict:
    """Return ``doc`` if schema-valid, else raise ``ValueError``."""
    problems = validate_manifest(doc)
    if problems:
        raise ValueError(f"invalid run {source}: " + "; ".join(problems))
    return doc


def _write_json_atomic(path: pathlib.Path, doc: dict) -> None:
    """Write ``doc`` deterministically via tmp + rename (no torn reads)."""
    from repro.resilience.checkpoint import atomic_write_json

    atomic_write_json(path, doc, default=_json_default)


def _read_jsonl(path: pathlib.Path) -> list[dict]:
    if not path.exists():
        return []
    rows: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


class RunRecord:
    """Read-only view of one stored run (loaded lazily from disk)."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.manifest = ensure_valid_manifest(
            json.loads((self.path / MANIFEST).read_text(encoding="utf-8")),
            source=str(self.path / MANIFEST))
        self.run_id: str = self.manifest["run_id"]

    def events(self, kind: str | None = None) -> list[dict]:
        """Streamed run events, optionally filtered by kind."""
        rows = _read_jsonl(self.path / EVENTS)
        if kind is None:
            return rows
        return [r for r in rows if r.get("event") == kind]

    def metric_snapshots(self) -> list[dict]:
        """In-flight metric snapshots (one per round end / heartbeat)."""
        return _read_jsonl(self.path / METRICS_STREAM)

    def final_metrics(self) -> dict:
        """The finalize-time registry snapshot ({} while still running)."""
        path = self.path / METRICS_FINAL
        if not path.exists():
            return {}
        return json.loads(path.read_text(encoding="utf-8"))

    def trace_rows(self) -> list[dict]:
        """Flattened span rows ([] while still running)."""
        return _read_jsonl(self.path / TRACE)

    def summary(self) -> dict:
        """The one-line view ``ma-opt runs list`` prints."""
        m = self.manifest
        return {
            "run_id": self.run_id,
            "status": m.get("status"),
            "method": m.get("method"),
            "task": m.get("task"),
            "n_sims": m.get("n_sims"),
            "best_fom": m.get("best_fom"),
            "success": m.get("success"),
            "wall_time_s": m.get("wall_time_s"),
        }


class RunRecorder(BaseObserver):
    """Writes one run's record while it happens.

    Exposes a ready-made :attr:`telemetry` bundle (tracer + metrics +
    events streamed into the run directory, with itself attached as an
    observer).  Rounds and heartbeats append metric snapshots; the
    ``on_run_end`` hook finalizes the record, so the normal optimizer
    lifecycle needs no explicit calls.  A run abandoned mid-flight keeps
    ``status="running"`` — visibly stale rather than silently absent.
    """

    def __init__(self, path: str | pathlib.Path, run_id: str,
                 method: str = "?", task: str = "?",
                 meta: dict | None = None,
                 base: Telemetry | None = None) -> None:
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id
        self._t0 = time.perf_counter()
        self._finalized = False
        tracer = base.tracer if base is not None and base.tracer else Tracer()
        metrics = (base.metrics if base is not None and base.metrics
                   else MetricsRegistry())
        run_logger = RunLogger(path=str(self.path / EVENTS))
        observers: list[Any] = [self]
        if base is not None:
            observers.extend(base.observers)
        # The recorder keeps non-optional handles to its own channels:
        # the bundle's attributes are typed optional (and may be swapped
        # for sanitizer proxies), but the record on disk is always
        # written from the real objects built here.
        self._tracer = tracer
        self._metrics = metrics
        self._run_logger = run_logger
        self.telemetry = Telemetry(tracer=tracer, metrics=metrics,
                                   run_logger=run_logger,
                                   observers=observers, run_id=run_id)
        self._manifest: dict = {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "run_id": run_id,
            "status": "running",
            "method": method,
            "task": task,
            "created_unix": time.time(),
            "meta": dict(meta or {}),
        }
        _write_json_atomic(self.path / MANIFEST, self._manifest)

    # -- in-flight recording -------------------------------------------------
    def snapshot_metrics(self) -> None:
        """Append the current registry snapshot to the metrics stream."""
        snap = self._metrics.snapshot()
        snap["t"] = round(time.perf_counter() - self._t0, 6)
        with open(self.path / METRICS_STREAM, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(snap, default=_json_default) + "\n")

    def on_round_end(self, optimizer: Any, round_index: int,
                     info: dict) -> None:
        self.snapshot_metrics()

    def on_heartbeat(self, source: str, info: dict) -> None:
        self.snapshot_metrics()

    def on_run_end(self, optimizer: Any, result: Any) -> None:
        self.finalize(result)

    #: Stop reason -> manifest status for runs ended via ``should_stop``.
    _STOP_STATUS = {"cancelled": "cancelled", "shutdown": "interrupted",
                    "timeout": "failed"}

    def on_run_stopped(self, optimizer: Any, result: Any,
                       reason: str) -> None:
        """Seal a cooperatively-stopped run with the status its reason
        implies (job-service cancel/shutdown/timeout semantics)."""
        status = self._STOP_STATUS.get(reason, "interrupted")
        if status == "failed":
            self._manifest["error"] = f"stopped: {reason}"
        self._manifest["stopped"] = reason
        self.finalize(result, status=status)

    # -- completion ----------------------------------------------------------
    def finalize(self, result: Any = None, status: str = "finished") -> None:
        """Export trace + final metrics and seal the manifest (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        n_spans = self._tracer.export_jsonl(str(self.path / TRACE))
        self._metrics.export_json(str(self.path / METRICS_FINAL))
        self._run_logger.close()
        self._manifest["status"] = status
        self._manifest["n_spans"] = n_spans
        self._manifest["n_events"] = len(self._run_logger)
        if result is not None:
            self._manifest["n_sims"] = len(getattr(result, "records", ()))
            self._manifest["best_fom"] = float(result.best_fom)
            self._manifest["success"] = bool(result.success)
            self._manifest["wall_time_s"] = float(result.wall_time_s)
        _write_json_atomic(self.path / MANIFEST, self._manifest)

    def mark_failed(self, error: str) -> None:
        """Seal the record for a run that died with an exception."""
        self._manifest["error"] = error
        self.finalize(status="failed")

    def record(self) -> RunRecord:
        """Read-back view of this run's directory."""
        return RunRecord(self.path)


class RunStore:
    """A directory of runs: creation, listing, prefix lookup."""

    def __init__(self, root: str | pathlib.Path = "runs") -> None:
        self.root = pathlib.Path(root)

    def create_run(self, method: str = "?", task: str = "?",
                   meta: dict | None = None,
                   base: Telemetry | None = None,
                   run_id: str | None = None) -> RunRecorder:
        """Allocate a run ID + directory and return its live recorder.

        ``base`` donates already-built telemetry channels (tracer/metrics
        from CLI flags, extra observers); events always stream into the
        run directory.
        """
        run_id = run_id or new_run_id()
        return RunRecorder(self.root / run_id, run_id,
                           method=method, task=task, meta=meta, base=base)

    def run_ids(self) -> list[str]:
        """IDs of every run directory with a manifest, sorted ascending."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and (p / MANIFEST).exists())

    def list_runs(self) -> list[RunRecord]:
        """Loaded records for every run in the store (oldest first)."""
        return [RunRecord(self.root / rid) for rid in self.run_ids()]

    def resolve(self, ref: str) -> pathlib.Path:
        """Run directory for an exact ID or a unique ID prefix."""
        exact = self.root / ref
        if (exact / MANIFEST).exists():
            return exact
        matches = [rid for rid in self.run_ids() if rid.startswith(ref)]
        if len(matches) == 1:
            return self.root / matches[0]
        if not matches:
            raise KeyError(f"no run matching {ref!r} in {self.root}")
        raise KeyError(
            f"ambiguous run prefix {ref!r}: {', '.join(matches)}")

    def load(self, ref: str) -> RunRecord:
        """Record for an exact run ID or unique prefix."""
        return RunRecord(self.resolve(ref))


def diff_runs(a: RunRecord, b: RunRecord) -> dict:
    """Field-by-field comparison of two runs (manifest + counters).

    Returns ``{"a", "b", "fields": {name: {"a", "b", "delta"?}},
    "counters": {metric: {"a", "b", "delta"}}}`` — the structure
    ``ma-opt runs diff`` renders.
    """
    out: dict = {"a": a.run_id, "b": b.run_id, "fields": {}, "counters": {}}
    for name in ("status", "method", "task", "n_sims", "best_fom",
                 "success", "wall_time_s"):
        va, vb = a.manifest.get(name), b.manifest.get(name)
        if va == vb:
            continue
        entry: dict = {"a": va, "b": vb}
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                and not isinstance(va, bool) and not isinstance(vb, bool):
            entry["delta"] = vb - va
        out["fields"][name] = entry
    ca = a.final_metrics().get("counters", {})
    cb = b.final_metrics().get("counters", {})
    for key in sorted(set(ca) | set(cb)):
        va, vb = ca.get(key, 0.0), cb.get(key, 0.0)
        if va != vb:
            out["counters"][key] = {"a": va, "b": vb, "delta": vb - va}
    return out


def export_prometheus_text(record: RunRecord) -> str:
    """Prometheus text exposition of a run's final metrics snapshot.

    Falls back to the last in-flight snapshot for a run still in flight.
    """
    snap = record.final_metrics()
    if not snap:
        snapshots = record.metric_snapshots()
        snap = snapshots[-1] if snapshots else {}
    return render_prometheus(snap)


#: Event kinds surfaced as SARIF-adjacent results, with their level.
_SARIF_LEVELS = {"sim_failed": "warning", "lint_rejected": "warning",
                 "config_warning": "note", "heartbeat": None}


def export_sarif(record: RunRecord) -> dict:
    """SARIF-adjacent JSON: the run's diagnostics as tool results.

    Follows the SARIF 2.1.0 shape (``runs[].tool`` + ``runs[].results``)
    closely enough for log viewers, with quarantined simulations and
    ERC-gate rejections as the result stream; run-level facts ride in
    ``runs[].properties``.
    """
    results = []
    for event in record.events():
        kind = event.get("event")
        level = _SARIF_LEVELS.get(kind)
        if level is None:
            continue
        payload = {k: v for k, v in event.items() if k not in ("event", "t")}
        message = " ".join(f"{k}={v}" for k, v in payload.items())
        results.append({
            "ruleId": kind,
            "level": level,
            "message": {"text": f"{kind}: {message}" if message else kind},
            "properties": payload,
        })
    return {
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "ma-opt",
                                "informationUri": "docs/observability.md",
                                "rules": []}},
            "results": results,
            "properties": record.summary(),
        }],
    }


def export_bundle(record: RunRecord) -> dict:
    """Single-document export of a whole run (manifest+events+metrics+trace).

    A versioned ``repro.obs/run-export`` object — the portable form for
    attaching a run to an issue or shipping it to another machine.
    """
    return {
        "schema": EXPORT_SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "manifest": record.manifest,
        "events": record.events(),
        "metric_snapshots": record.metric_snapshots(),
        "final_metrics": record.final_metrics(),
        "trace": record.trace_rows(),
    }


def export_run(record: RunRecord, fmt: str = "json") -> str:
    """Render a run in an export format: ``json``, ``prom`` or ``sarif``."""
    if fmt == "prom":
        return export_prometheus_text(record)
    if fmt == "sarif":
        doc: dict = export_sarif(record)
    elif fmt == "json":
        doc = export_bundle(record)
    else:
        raise ValueError(f"unknown export format {fmt!r} "
                         "(expected json, prom or sarif)")
    return json.dumps(doc, indent=2, sort_keys=True,
                      default=_json_default) + "\n"
