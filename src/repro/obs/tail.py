"""Live run monitoring: follow a run's event/metric streams as it happens.

``ma-opt tail <run-id|path>`` polls the run directory the store writes
(``events.jsonl`` + ``metrics.jsonl``), reading only bytes appended since
the previous poll (offset resume — a restarted tail picks up where the
files are, not from scratch), and renders a one-screen status: run
phase, round/evaluation progress, best FoM, failure counts, sim-latency
p50/p95, pool busy gauge, and the age of the last heartbeat.

The reader is deliberately decoupled from the writer: it only ever opens
files, so it can run in another process, on another machine over a
shared filesystem, or after the run finished (``--once`` prints the
final state and exits).  A run that stops appending without a
``run_end`` event is flagged as stalled after ``stall_after_s``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.obs.store import (EVENTS, MANIFEST, METRICS_STREAM,
                             TERMINAL_STATUSES, RunStore)


def manifest_status(run_dir: str | pathlib.Path) -> str | None:
    """The run's manifest ``status``, or None when unreadable/absent.

    Lets the tail loop notice runs that ended *without* a ``run_end``
    event — failed, cancelled, or interrupted (job-service) runs seal
    their manifest but never emit the finish event the event-stream fold
    waits for.
    """
    path = pathlib.Path(run_dir) / MANIFEST
    try:
        return json.loads(path.read_text(encoding="utf-8")).get("status")
    except (OSError, ValueError):
        return None


def read_new_lines(path: str | pathlib.Path,
                   offset: int) -> tuple[list[str], int]:
    """Complete lines appended to ``path`` since byte ``offset``.

    Returns ``(lines, new_offset)``.  A trailing partial line (writer
    mid-append) is left for the next call; a missing file reads as empty.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], offset
    size = path.stat().st_size
    if size <= offset:
        return [], offset
    with open(path, "rb") as fh:
        fh.seek(offset)
        chunk = fh.read(size - offset)
    # Only consume up to the last newline; the remainder is in flight.
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    lines = chunk[:end].decode("utf-8", errors="replace").split("\n")
    return [ln for ln in lines if ln.strip()], offset + end + 1


@dataclass
class TailState:
    """Rolling view of one run, updated event-by-event."""

    run_id: str = "?"
    method: str = "?"
    task: str = "?"
    status: str = "waiting"     # waiting | running | finished | failed
    n_sims_target: int | None = None
    evaluations: int = 0
    rounds: int = 0
    best_fom: float | None = None
    failures: int = 0
    lint_rejections: int = 0
    retries: float = 0.0
    last_heartbeat: dict | None = None
    workers_busy: float | None = None
    sim_p50: float | None = None
    sim_p95: float | None = None
    last_event_t: float | None = None   # writer clock of the latest event
    events_seen: int = 0
    extra: dict = field(default_factory=dict)

    def apply_event(self, row: dict) -> None:
        """Fold one ``events.jsonl`` row into the state."""
        kind = row.get("event")
        self.events_seen += 1
        if "t" in row:
            self.last_event_t = float(row["t"])
        if kind == "run_start":
            self.status = "running"
            self.method = str(row.get("method", self.method))
            self.task = str(row.get("task", self.task))
            if row.get("run_id"):
                self.run_id = str(row["run_id"])
            if row.get("n_sims") is not None:
                self.n_sims_target = int(row["n_sims"])
        elif kind == "evaluation":
            # Budget convention: n_sims counts post-init simulations only.
            if row.get("kind") != "init":
                self.evaluations += 1
            fom = row.get("fom")
            if fom is not None and (self.best_fom is None
                                    or fom < self.best_fom):
                self.best_fom = float(fom)
        elif kind == "round_end":
            self.rounds = max(self.rounds, int(row.get("round", 0)))
            if row.get("best_fom") is not None:
                self.best_fom = float(row["best_fom"])
        elif kind == "sim_failed":
            self.failures += 1
        elif kind == "lint_rejected":
            self.lint_rejections += 1
        elif kind == "heartbeat":
            self.last_heartbeat = {k: v for k, v in row.items()
                                   if k != "event"}
        elif kind == "run_end":
            self.status = "finished"
            if row.get("best_fom") is not None:
                self.best_fom = float(row["best_fom"])

    def apply_metrics(self, snap: dict) -> None:
        """Fold one ``metrics.jsonl`` snapshot into the state."""
        gauges = snap.get("gauges", {})
        if "pool_workers_busy" in gauges:
            self.workers_busy = float(gauges["pool_workers_busy"])
        for key, stats in snap.get("histograms", {}).items():
            if key.startswith("sim_latency_s") and stats.get("count"):
                self.sim_p50 = stats.get("p50")
                self.sim_p95 = stats.get("p95")
        for key, value in snap.get("counters", {}).items():
            if key.startswith("sim_retries_total"):
                self.retries = max(self.retries, float(value))


def _fmt(value: Any, spec: str = "") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render(state: TailState, stalled_s: float | None = None) -> str:
    """One-screen text rendering of a :class:`TailState`."""
    progress = str(state.evaluations)
    if state.n_sims_target:
        pct = 100.0 * state.evaluations / state.n_sims_target
        progress = f"{state.evaluations}/{state.n_sims_target} ({pct:.0f}%)"
    lines = [
        f"run {state.run_id}  [{state.status}]  "
        f"method={state.method}  task={state.task}",
        f"  sims {progress}  rounds {state.rounds}  "
        f"best_fom {_fmt(state.best_fom, '.6g')}",
        f"  failures {state.failures}  retries {state.retries:g}  "
        f"lint_rejected {state.lint_rejections}",
        f"  sim latency p50 {_fmt(state.sim_p50, '.4g')}s  "
        f"p95 {_fmt(state.sim_p95, '.4g')}s  "
        f"workers busy {_fmt(state.workers_busy, 'g')}",
    ]
    if state.last_heartbeat is not None:
        hb = state.last_heartbeat
        lines.append(
            f"  heartbeat #{hb.get('beats', '?')} at t={hb.get('t', '?')}s "
            f"(batch n={hb.get('n', '?')}, workers={hb.get('workers', '?')})")
    if stalled_s is not None:
        lines.append(f"  ** no new data for {stalled_s:.0f}s — "
                     "run may be stalled or dead **")
    return "\n".join(lines)


def resolve_run_dir(ref: str, store_root: str = "runs") -> pathlib.Path:
    """Run directory for a path, a run ID, or a unique ID prefix."""
    as_path = pathlib.Path(ref)
    if as_path.is_dir():
        return as_path
    return RunStore(store_root).resolve(ref)


def tail_run(run_dir: str | pathlib.Path,
             poll_s: float = 0.5,
             once: bool = False,
             max_polls: int | None = None,
             stall_after_s: float = 30.0,
             out: Any = None,
             sleep: Callable[[float], None] = time.sleep) -> TailState:
    """Follow a run directory until it finishes (or ``once``/``max_polls``).

    Prints a re-rendered status block after every poll that saw new data.
    Returns the final :class:`TailState` (the testable core —
    ``read_new_lines`` + state folding do all the work; the CLI is a thin
    wrapper).
    """
    run_dir = pathlib.Path(run_dir)
    out = out if out is not None else sys.stdout
    state = TailState(run_id=run_dir.name)
    ev_offset = mt_offset = 0
    last_data = time.perf_counter()
    polls = 0
    while True:
        polls += 1
        ev_lines, ev_offset = read_new_lines(run_dir / EVENTS, ev_offset)
        mt_lines, mt_offset = read_new_lines(run_dir / METRICS_STREAM,
                                             mt_offset)
        fresh = bool(ev_lines or mt_lines)
        for line in ev_lines:
            state.apply_event(json.loads(line))
        for line in mt_lines:
            state.apply_metrics(json.loads(line))
        now = time.perf_counter()
        if fresh:
            last_data = now
        stalled = (now - last_data if state.status == "running"
                   and now - last_data >= stall_after_s else None)
        sealed = None
        if not fresh and state.status != "finished":
            # No run_end event and nothing new on disk: the manifest is
            # the authority on runs that ended abnormally (failed /
            # cancelled / interrupted) — they seal their status without
            # ever emitting the finish event this fold waits for.
            sealed = manifest_status(run_dir)
            if sealed in TERMINAL_STATUSES:
                state.status = sealed
            else:
                sealed = None
        if fresh or once or sealed is not None or stalled is not None:
            print(render(state, stalled_s=stalled), file=out, flush=True)
        if once or state.status == "finished" or sealed is not None:
            return state
        if max_polls is not None and polls >= max_polls:
            return state
        sleep(poll_s)


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.tail",
        description="follow a live (or finished) run's event/metric stream")
    parser.add_argument("run", help="run ID, unique ID prefix, or run "
                                    "directory path")
    parser.add_argument("--store", default="runs",
                        help="run-store root for ID lookup (default: runs)")
    parser.add_argument("--poll", type=float, default=0.5,
                        help="poll interval in seconds (default: 0.5)")
    parser.add_argument("--once", action="store_true",
                        help="render the current state once and exit")
    parser.add_argument("--max-polls", type=int, default=None,
                        help="stop after this many polls (default: follow "
                             "until run_end)")
    parser.add_argument("--stall-after", type=float, default=30.0,
                        help="seconds without new data before flagging a "
                             "stall (default: 30)")
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        run_dir = resolve_run_dir(args.run, store_root=args.store)
    except KeyError as exc:
        print(f"repro.obs.tail: error: {exc.args[0]}", file=sys.stderr)
        return 2
    if not os.path.isdir(run_dir):
        print(f"repro.obs.tail: error: no run directory at {run_dir}",
              file=sys.stderr)
        return 2
    try:
        tail_run(run_dir, poll_s=args.poll, once=args.once,
                 max_polls=args.max_polls, stall_after_s=args.stall_after)
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
