"""The :class:`Telemetry` bundle threaded through the optimizer stack.

One object groups the four observability channels — tracer, metrics
registry, run-event logger, observers — so instrumented code takes a
single optional ``telemetry`` argument.  Every channel is optional;
:data:`NULL_TELEMETRY` (all channels off) is the shared default, and its
helpers reduce to one ``None`` check per call site, so uninstrumented
runs pay effectively nothing.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.events import RunLogger
from repro.obs.hooks import ObserverList
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer


class Telemetry:
    """Optional tracer + metrics + run logger + observers, as one handle."""

    __slots__ = ("tracer", "metrics", "run_logger", "observers")

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 run_logger: RunLogger | None = None,
                 observers: Iterable[Any] = ()) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.run_logger = run_logger
        self.observers = ObserverList(observers)

    # -- tracing -------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """A timed span on the attached tracer, or a shared no-op."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    # -- metrics -------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(name, value, **labels)

    @property
    def enabled(self) -> bool:
        """True when any channel is attached."""
        return (self.tracer is not None or self.metrics is not None
                or self.run_logger is not None or bool(self.observers))


#: Shared all-channels-off default.  Never mutate it.
NULL_TELEMETRY = Telemetry()
