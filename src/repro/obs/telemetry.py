"""The :class:`Telemetry` bundle threaded through the optimizer stack.

One object groups the four observability channels — tracer, metrics
registry, run-event logger, observers — so instrumented code takes a
single optional ``telemetry`` argument.  Every channel is optional;
:data:`NULL_TELEMETRY` (all channels off) is the shared default, and its
helpers reduce to one ``None`` check per call site, so uninstrumented
runs pay effectively nothing.

Cross-process capture: :class:`WorkerTelemetry` is the worker-side
counterpart.  A pool worker cannot write into the parent's tracer or
metrics registry (the write would land in the worker process), so each
worker records spans/counters/observations into its own
``WorkerTelemetry`` and ships a :class:`WorkerCapture` back with every
task result.  The parent replays the capture through
:func:`absorb_capture`: counters/observations merge into the parent
registry and the recorded spans are grafted under the owning parent span
with ``pid``/``seq`` attributes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.events import RunLogger
from repro.obs.hooks import ObserverList
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Span, Tracer


class Telemetry:
    """Optional tracer + metrics + run logger + observers, as one handle.

    ``run_id`` identifies the run this bundle records (set by the run
    store's recorder; optimizers fall back to generating their own).
    """

    __slots__ = ("tracer", "metrics", "run_logger", "observers", "run_id")

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 run_logger: RunLogger | None = None,
                 observers: Iterable[Any] = (),
                 run_id: str | None = None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.run_logger = run_logger
        self.observers = ObserverList(observers)
        self.run_id = run_id

    # -- tracing -------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """A timed span on the attached tracer, or a shared no-op."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    # -- metrics -------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(name, value, **labels)

    @property
    def enabled(self) -> bool:
        """True when any channel is attached."""
        return (self.tracer is not None or self.metrics is not None
                or self.run_logger is not None or bool(self.observers))

    @property
    def wants_worker_capture(self) -> bool:
        """True when pool workers should record and ship telemetry back."""
        return self.tracer is not None or self.metrics is not None


#: Shared all-channels-off default.  Never mutate it.
NULL_TELEMETRY = Telemetry()


@dataclass
class WorkerCapture:
    """Telemetry recorded inside one worker-side task, shipped back whole.

    Every field is built from plain python / :class:`~repro.obs.trace.Span`
    values, so the object pickles across the ``spawn`` process boundary.
    ``t_start`` values in ``spans`` are seconds since the task started in
    the worker.
    """

    pid: int
    seq: int                      # per-worker dispatch counter (1-based)
    spans: list[Span] = field(default_factory=list)
    counters: list[tuple[str, float, dict]] = field(default_factory=list)
    observations: list[tuple[str, float, dict]] = field(default_factory=list)
    gauges: list[tuple[str, float, dict]] = field(default_factory=list)


class _WorkerSpanContext:
    """Span context manager on a :class:`WorkerTelemetry` (single-thread)."""

    __slots__ = ("_wt", "_span", "_t0")

    def __init__(self, wt: "WorkerTelemetry", name: str, attrs: dict) -> None:
        self._wt = wt
        self._span = Span(name, attrs)
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._span.t_start = self._t0 - self._wt._epoch
        self._wt._stack.append(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        stack = self._wt._stack
        while stack and stack[-1] is not self._span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(self._span)
        else:
            self._wt._roots.append(self._span)
        return False


class WorkerTelemetry:
    """Per-worker-process span/counter/histogram recorder.

    Lives as worker-local state (one instance per pool worker, created by
    the pool initializer), mirrors the recording subset of
    :class:`Telemetry` — ``span``/``inc``/``observe``/``set_gauge`` — and
    accumulates everything locally.  :meth:`drain` snapshots the recording
    into a picklable :class:`WorkerCapture` and resets the clock for the
    next task, so each task result carries exactly the telemetry recorded
    while it ran.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._seq = 0
        self._stack: list[Span] = []
        self._roots: list[Span] = []
        self._counters: list[tuple[str, float, dict]] = []
        self._observations: list[tuple[str, float, dict]] = []
        self._gauges: list[tuple[str, float, dict]] = []

    # -- recording (Telemetry-compatible subset) -----------------------------
    def span(self, name: str, **attrs: Any) -> _WorkerSpanContext:
        """A timed span recorded locally in the worker."""
        return _WorkerSpanContext(self, name, attrs)

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        self._counters.append((name, float(value), labels))

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self._observations.append((name, float(value), labels))

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges.append((name, float(value), labels))

    # -- shipping ------------------------------------------------------------
    def drain(self) -> WorkerCapture:
        """Snapshot and reset: the capture for the task that just ran."""
        self._seq += 1
        capture = WorkerCapture(
            pid=os.getpid(), seq=self._seq,
            spans=self._roots, counters=self._counters,
            observations=self._observations, gauges=self._gauges)
        self._stack = []
        self._roots = []
        self._counters = []
        self._observations = []
        self._gauges = []
        self._epoch = time.perf_counter()
        return capture


def absorb_capture(telemetry: Telemetry, capture: WorkerCapture,
                   parent: Span | None) -> None:
    """Replay one worker capture into the parent-side telemetry.

    Counters/observations/gauges merge into the parent registry exactly as
    if recorded locally.  Spans are grafted as children of ``parent`` (the
    owning ``simulate`` span, when a tracer is attached), re-based onto the
    parent's clock by treating the worker task's start as the parent
    span's start, and stamped with the worker's ``pid``/``seq``.
    """
    for name, value, labels in capture.counters:
        telemetry.inc(name, value, **labels)
    for name, value, labels in capture.observations:
        telemetry.observe(name, value, **labels)
    for name, value, labels in capture.gauges:
        telemetry.set_gauge(name, value, **labels)
    if parent is None:
        return
    for span in capture.spans:
        grafted = span.shifted(parent.t_start)
        grafted.attrs.setdefault("pid", capture.pid)
        grafted.attrs.setdefault("seq", capture.seq)
        parent.children.append(grafted)
