"""Structured tracing: nested timed spans with JSONL export.

A :class:`Tracer` records a tree of :class:`Span` objects.  Instrumented
code opens spans with::

    with tracer.span("critic-train", steps=120):
        ...

Spans nest per-thread (a thread-local stack), so concurrent threads each
build their own branch of the tree; finished root spans are appended to a
lock-protected shared list.  Worker *processes* participate through
:class:`~repro.obs.telemetry.WorkerTelemetry`: spans recorded inside a
pool worker are shipped back with each task result (see
:meth:`Span.to_dict` / :meth:`Span.from_dict`) and grafted into the
parent tree under the owning ``simulate`` span with worker ``pid``/``seq``
attributes — the :class:`~repro.core.parallel.SimulationExecutor` does
this for every pooled batch.

When no tracer is attached (the default), instrumentation sites go through
:data:`NOOP_SPAN`, a shared reusable no-op context manager — the fast path
costs one attribute check and one function call.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO, cast


@dataclass
class Span:
    """One timed operation; ``children`` are spans opened while it ran."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    t_start: float = 0.0       # seconds since tracer creation
    duration_s: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def iter_tree(self, depth: int = 0) -> "Iterator[tuple[Span, int]]":
        """Yield ``(span, depth)`` pairs, depth-first, self included."""
        yield self, depth
        for child in self.children:
            yield from child.iter_tree(depth + 1)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form of the subtree (picklable/JSON-safe payload)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a subtree written by :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),
            t_start=float(data.get("t_start", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            children=[cls.from_dict(c) for c in data.get("children", ())],
        )

    def shifted(self, offset_s: float) -> "Span":
        """Copy with every ``t_start`` in the subtree moved by ``offset_s``
        (used when grafting worker-recorded spans onto a parent clock)."""
        return Span(
            name=self.name, attrs=dict(self.attrs),
            t_start=self.t_start + offset_s, duration_s=self.duration_s,
            children=[c.shifted(offset_s) for c in self.children],
        )


class _NoopSpan:
    """Reusable do-nothing context manager (the no-tracer fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs)
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._span.t_start = self._t0 - self._tracer._epoch
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects a thread-safe in-memory tree of timed spans."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []  # repro: guarded-by[_lock]

    # -- span lifecycle ------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested timed span; use as a context manager."""
        return _SpanContext(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exceptions unwinding several frames at once.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- inspection ----------------------------------------------------------
    def roots(self) -> list[Span]:
        """Completed top-level spans (in completion order)."""
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> list[Span]:
        """All completed spans named ``name``, depth-first."""
        return [s for root in self.roots()
                for s, _ in root.iter_tree() if s.name == name]

    def total_time(self, name: str) -> float:
        """Summed duration of every span named ``name``."""
        return sum(s.duration_s for s in self.find(name))

    # -- export --------------------------------------------------------------
    def to_rows(self) -> list[dict]:
        """Flatten the trace to one dict per span.

        Each row carries ``id``/``parent_id`` so the tree can be rebuilt
        (or leaves identified) from the JSONL file alone.
        """
        rows: list[dict] = []
        next_id = 0
        for root in self.roots():
            stack: list[tuple[Span, int | None, int]] = [(root, None, 0)]
            while stack:
                span, parent_id, depth = stack.pop()
                sid = next_id
                next_id += 1
                rows.append({
                    "id": sid,
                    "parent_id": parent_id,
                    "depth": depth,
                    "name": span.name,
                    "t_start": round(span.t_start, 6),
                    "duration_s": round(span.duration_s, 6),
                    "attrs": span.attrs,
                })
                for child in reversed(span.children):
                    stack.append((child, sid, depth + 1))
        return rows

    def export_jsonl(self, path_or_file: str | TextIO) -> int:
        """Write one JSON object per span; returns the span count."""
        rows = self.to_rows()
        if hasattr(path_or_file, "write"):
            fh, own = cast(TextIO, path_or_file), False
        else:
            fh, own = open(cast(str, path_or_file), "w",
                           encoding="utf-8"), True
        try:
            for row in rows:
                fh.write(json.dumps(row, default=_json_default) + "\n")
        finally:
            if own:
                fh.close()
        return len(rows)


def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars/arrays (and other oddballs) for json.dumps."""
    if hasattr(obj, "item"):      # numpy scalar
        return obj.item()
    if hasattr(obj, "tolist"):    # numpy array
        return obj.tolist()
    return repr(obj)
