"""``repro.resilience`` — fault tolerance for long optimization runs.

The paper's evaluation is 10 runs x 200 commercial-simulator calls per
method; at that scale simulations die (license drops, non-convergent
operating points, hung processes) and runs get killed.  This package makes
the optimizer stack survive both:

* **failure policy** (:mod:`repro.resilience.policy`): configurable
  retries with exponential backoff + deterministic jitter, NaN/Inf
  quarantine, and graceful degradation — a dead simulation becomes an
  infeasible penalty record instead of aborting the run;
* **fault injection** (:mod:`repro.resilience.faults`): a seed-driven
  :class:`FaultyTask` wrapper that injects exceptions, NaN metrics and
  slow evaluations deterministically, so every degradation path is
  testable without a real flaky simulator;
* **checkpoint/resume** (:mod:`repro.resilience.checkpoint` +
  :mod:`repro.resilience.state`): versioned, atomic snapshots of full
  optimizer state (dataset, weights, Adam moments, RNG) behind
  ``MAOptimizer.save_checkpoint()`` / ``MAOptimizer.restore()``, giving
  bit-exact resume of a killed run.

Knobs live on :class:`~repro.core.config.ResilienceConfig`; the executor
(:class:`~repro.core.parallel.SimulationExecutor`) enforces the policy on
both the serial and process-pool paths.  See ``docs/resilience.md``.
"""

from repro.core.config import ResilienceConfig
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    atomic_write_json,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import FaultyTask
from repro.resilience.policy import (
    InjectedFault,
    NonFiniteMetrics,
    SimOutcome,
    SimulationFailure,
    backoff_delay,
    evaluate_design,
    penalty_metrics,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "FaultyTask",
    "atomic_write_json",
    "InjectedFault",
    "NonFiniteMetrics",
    "ResilienceConfig",
    "SimOutcome",
    "SimulationFailure",
    "backoff_delay",
    "evaluate_design",
    "load_checkpoint",
    "penalty_metrics",
    "save_checkpoint",
]
