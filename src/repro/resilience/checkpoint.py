"""Crash-safe checkpoints: versioned, atomic, pickle-free ``.npz`` files.

A checkpoint is one compressed archive holding a JSON **header** (scalars:
format version, config, round counter, RNG state, wall-clock offset) plus
named numpy **arrays** (dataset, records, network weights, optimizer
moments).  Writes go to a temporary file in the target directory followed
by :func:`os.replace`, so a crash mid-write can never leave a truncated
checkpoint where a good one used to be — the previous snapshot survives.

Loads never use ``allow_pickle``: every array is a plain numeric/bool/
fixed-width-string array, so untrusted checkpoints cannot execute code.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

import numpy as np

__all__ = ["CHECKPOINT_VERSION", "atomic_write_json", "load_checkpoint",
           "save_checkpoint"]

CHECKPOINT_VERSION = 1

_HEADER_KEY = "__header__"


def atomic_write_json(path: str | pathlib.Path, doc: dict,
                      default=None) -> pathlib.Path:
    """Write ``doc`` as deterministic JSON via tmp-file + :func:`os.replace`.

    The durability primitive shared by every on-disk record in the repo
    (run-store manifests, job-service records, server endpoint files): a
    crash mid-write can never leave a torn document where a good one used
    to be, and concurrent readers always see either the old or the new
    version.  ``default`` is forwarded to :func:`json.dumps` for values
    that need coercion (numpy scalars and the like).
    """
    path = pathlib.Path(path)
    # Per-writer temp name (pid + thread id): two threads updating the
    # same document race benignly — last replace wins — instead of one
    # replacing a temp file the other already consumed.
    tmp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True,
                              default=default) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return path


def save_checkpoint(path: str | pathlib.Path, header: dict,
                    arrays: dict[str, np.ndarray]) -> pathlib.Path:
    """Atomically write ``header`` + ``arrays`` to ``path`` (.npz).

    ``header`` must be JSON-serializable; ``arrays`` maps names (slashes
    allowed, e.g. ``"critic/w0"``) to arrays.  Returns the final path.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if _HEADER_KEY in arrays:
        raise ValueError(f"array name {_HEADER_KEY!r} is reserved")
    for name, arr in arrays.items():
        if np.asarray(arr).dtype == object:
            raise ValueError(f"array {name!r} has dtype=object; "
                             "checkpoints must stay pickle-free")
    header = dict(header)
    header.setdefault("checkpoint_version", CHECKPOINT_VERSION)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    # Same-directory temp file so os.replace is an atomic rename.
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}.npz")
    try:
        np.savez_compressed(
            tmp, **{_HEADER_KEY: np.array(json.dumps(header))}, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed write: don't leave temp litter behind
            tmp.unlink()
    return path


def load_checkpoint(path: str | pathlib.Path
                    ) -> tuple[dict, dict[str, np.ndarray]]:
    """Load ``(header, arrays)`` written by :func:`save_checkpoint`.

    Safe on untrusted files (``allow_pickle=False``); raises
    ``ValueError`` on a missing or future-versioned header.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        if _HEADER_KEY not in data.files:
            raise ValueError(f"{path} is not a repro checkpoint "
                             "(missing header)")
        header = json.loads(str(data[_HEADER_KEY]))
        version = header.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})")
        arrays = {k: data[k] for k in data.files if k != _HEADER_KEY}
    return header, arrays
