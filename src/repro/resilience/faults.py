"""Deterministic fault injection for testing every degradation path.

:class:`FaultyTask` wraps any :class:`~repro.core.problem.SizingTask` and
injects, at configurable rates, the three failure modes a real flaky
simulator exhibits:

* **exceptions** (license drop / non-convergence — :class:`InjectedFault`);
* **NaN metrics** (a run that "finished" but produced garbage);
* **slow evaluations** (a hung process, caught by the pool-path watchdog).

Every injection decision is a pure function of ``(seed, design bytes,
attempt)`` — *not* of call order or process identity — so the same seeded
run produces the same faults serially, over a process pool, and across
retries (retry ``k`` of a design re-rolls with ``attempt=k``, so retries
genuinely can succeed).  The wrapper is picklable whenever the inner task
is, and :meth:`fault_draws` lets tests replay the exact injection schedule
to check telemetry against ground truth.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.core.problem import SizingTask
from repro.resilience.policy import InjectedFault

__all__ = ["FaultyTask", "InjectedFault"]


class FaultyTask(SizingTask):
    """A :class:`SizingTask` wrapper that injects deterministic faults."""

    #: Signals the policy layer that evaluate() takes an ``attempt`` kwarg.
    accepts_attempt = True

    def __init__(self, inner: SizingTask, error_rate: float = 0.0,
                 nan_rate: float = 0.0, slow_rate: float = 0.0,
                 slow_s: float = 0.25, seed: int = 0) -> None:
        for name, rate in (("error_rate", error_rate),
                           ("nan_rate", nan_rate),
                           ("slow_rate", slow_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if slow_s < 0:
            raise ValueError("slow_s must be >= 0")
        self.inner = inner
        self.error_rate = float(error_rate)
        self.nan_rate = float(nan_rate)
        self.slow_rate = float(slow_rate)
        self.slow_s = float(slow_s)
        self.seed = int(seed)
        # Present the inner task's public face so the wrapper is a drop-in.
        self.name = inner.name
        self.space = inner.space
        self.target = inner.target
        self.specs = inner.specs

    # -- deterministic draws -------------------------------------------------
    def fault_draws(self, u: np.ndarray, attempt: int = 0
                    ) -> dict[str, bool]:
        """The injection decisions for ``(u, attempt)``; pure and replayable.

        Keys: ``slow``, ``error``, ``nan``.  Tests use this to compute the
        expected retry/failure telemetry for a recorded design stream.
        """
        u = np.ascontiguousarray(np.asarray(u, dtype=float).ravel())
        h = hashlib.blake2b(digest_size=24)
        h.update(self.seed.to_bytes(8, "little", signed=True))
        h.update(u.tobytes())
        h.update(int(attempt).to_bytes(4, "little"))
        digest = h.digest()
        draws = [int.from_bytes(digest[8 * i:8 * (i + 1)], "little")
                 / 2.0**64 for i in range(3)]
        return {
            "slow": draws[0] < self.slow_rate,
            "error": draws[1] < self.error_rate,
            "nan": draws[2] < self.nan_rate,
        }

    def planned_outcome(self, u: np.ndarray, max_retries: int
                        ) -> tuple[int, bool]:
        """Replay the retry schedule: ``(retries, quarantined)``.

        Mirrors :func:`repro.resilience.policy.evaluate_design` for a
        policy with NaN quarantine on — the ground truth the telemetry
        acceptance test compares against.
        """
        retries = 0
        for attempt in range(max_retries + 1):
            draws = self.fault_draws(u, attempt)
            if not (draws["error"] or draws["nan"]):
                return retries, False
            if attempt < max_retries:
                retries += 1
        return retries, True

    # -- SizingTask interface ------------------------------------------------
    def simulate(self, u: np.ndarray) -> dict[str, float]:
        return self.inner.simulate(u)

    def evaluate(self, u: np.ndarray, attempt: int = 0) -> np.ndarray:
        draws = self.fault_draws(u, attempt)
        if draws["slow"]:
            time.sleep(self.slow_s)
        if draws["error"]:
            raise InjectedFault(
                f"injected simulator fault (attempt {attempt})")
        metrics = self.inner.evaluate(u)
        if draws["nan"]:
            metrics = np.asarray(metrics, dtype=float).copy()
            metrics[:] = np.nan
        return metrics
