"""Failure policy: retries with backoff, quarantine, penalty metrics.

In a production sizing flow the simulation loop dies to license drops,
non-convergent operating points, and hung simulator processes.  This module
is the single place that decides what happens when one simulation fails:

* **retry** — up to ``max_retries`` re-attempts with exponential backoff
  (deterministic jitter, derived from the design bytes so the serial and
  pool execution paths behave identically);
* **quarantine** — after the retry budget is exhausted the design is *not*
  allowed to kill the run: it gets the task's decisively-bad penalty
  metrics (the same values :meth:`repro.core.problem.SizingTask.evaluate`
  substitutes for failed measurements) and flows on as an infeasible
  record;
* **NaN/Inf quarantine** — non-finite metric vectors are treated as
  failures, so they can never poison the critic's training set.

:func:`evaluate_design` is the retry loop; it is executed in the caller
for the serial path and inside each worker process for the pool path, so
retry accounting is identical in both (see ``tests/resilience``).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.config import ResilienceConfig
from repro.obs.trace import NOOP_SPAN

__all__ = [
    "InjectedFault",
    "NonFiniteMetrics",
    "SimulationFailure",
    "SimOutcome",
    "ResilienceConfig",
    "backoff_delay",
    "evaluate_design",
    "penalty_metrics",
]


class InjectedFault(RuntimeError):
    """Raised by :class:`~repro.resilience.faults.FaultyTask` injections."""


class NonFiniteMetrics(ValueError):
    """A simulation returned NaN/Inf metrics (quarantined by policy)."""


class SimulationFailure(RuntimeError):
    """A simulation failed and the policy forbids quarantining it."""


@dataclass
class SimOutcome:
    """The result of evaluating one design under a failure policy.

    ``retries`` counts failed attempts that were re-tried (or charged by a
    pool-path timeout); ``failed`` marks a quarantined design whose
    ``metrics`` are the task's penalty vector.
    """

    metrics: np.ndarray
    seconds: float
    retries: int = 0
    failed: bool = False
    reason: str | None = None   # "exception" | "nonfinite" | "timeout"
    error: str | None = None    # repr of the last exception, if any
    #: Telemetry recorded in the worker while this design ran
    #: (:class:`~repro.obs.telemetry.WorkerCapture`); None on serial paths.
    capture: Any = None

    def merged_retries(self, extra: int) -> "SimOutcome":
        """Copy with ``extra`` caller-side retries (pool re-dispatch) added."""
        return SimOutcome(self.metrics, self.seconds, self.retries + extra,
                          self.failed, self.reason, self.error, self.capture)


def penalty_metrics(task) -> np.ndarray:
    """Decisively-bad metric vector for a design whose simulation died.

    Mirrors what :meth:`SizingTask.evaluate` substitutes when every
    measurement fails: the target's ``fail_value`` plus each spec's
    default fail value — guaranteed infeasible, finite, and terrible.
    """
    out = np.empty(task.m + 1)
    out[0] = task.target.fail_value
    for i, spec in enumerate(task.specs):
        out[i + 1] = spec.default_fail_value()
    return out


def _jitter_fraction(u: np.ndarray, attempt: int) -> float:
    """Deterministic uniform in [0, 1) from the design bytes + attempt.

    Hash-based (not RNG-based) so retries never consume optimizer RNG
    state and the serial/pool paths agree bit-for-bit.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(np.ascontiguousarray(u, dtype=float).tobytes())
    h.update(attempt.to_bytes(4, "little"))
    return int.from_bytes(h.digest(), "little") / 2.0**64


def backoff_delay(policy: ResilienceConfig, u: np.ndarray,
                  attempt: int) -> float:
    """Seconds to sleep before re-attempt ``attempt + 1``."""
    if policy.backoff_base_s <= 0:
        return 0.0
    base = policy.backoff_base_s * policy.backoff_factor ** attempt
    return base * (1.0 + policy.backoff_jitter * _jitter_fraction(u, attempt))


def _call_evaluate(task, u: np.ndarray, attempt: int) -> np.ndarray:
    # Fault-injection wrappers opt into seeing the attempt number (their
    # fault draws are pure functions of (seed, design, attempt)); plain
    # tasks keep the standard evaluate(u) signature.
    if getattr(task, "accepts_attempt", False):
        return task.evaluate(u, attempt=attempt)
    return task.evaluate(u)


def evaluate_design(task, u: np.ndarray, policy: ResilienceConfig,
                    start_attempt: int = 0, obs: Any = None) -> SimOutcome:
    """Evaluate one design under the failure policy (the retry loop).

    ``start_attempt`` charges attempts already consumed elsewhere (the
    pool path uses it after a timed-out dispatch).  ``obs`` is an optional
    span source (:class:`~repro.obs.telemetry.Telemetry` serially,
    :class:`~repro.obs.telemetry.WorkerTelemetry` inside a pool worker):
    each attempt is wrapped in a ``sim-attempt`` span so retries are
    visible in the trace on both execution paths.  Never raises unless
    ``policy.quarantine_failures`` is off.
    """
    u = np.asarray(u, dtype=float)
    t0 = time.perf_counter()
    retries = 0
    reason = error = None
    for attempt in range(start_attempt, policy.max_retries + 1):
        try:
            with (obs.span("sim-attempt", attempt=attempt)
                  if obs is not None else NOOP_SPAN):
                metrics = np.asarray(_call_evaluate(task, u, attempt),
                                     dtype=float)
                if policy.quarantine_nonfinite and not np.all(
                        np.isfinite(metrics)):
                    raise NonFiniteMetrics(
                        f"non-finite metrics at attempt {attempt}")
            return SimOutcome(metrics, time.perf_counter() - t0, retries)
        except Exception as exc:
            reason = ("nonfinite" if isinstance(exc, NonFiniteMetrics)
                      else "exception")
            error = repr(exc)
            if attempt < policy.max_retries:
                retries += 1
                delay = backoff_delay(policy, u, attempt)
                if delay > 0:
                    time.sleep(delay)
    seconds = time.perf_counter() - t0
    if not policy.quarantine_failures:
        raise SimulationFailure(
            f"simulation failed after {retries + 1} attempts ({error})")
    return SimOutcome(penalty_metrics(task), seconds, retries,
                      failed=True, reason=reason, error=error)
