"""Flatten optimizer/network state to named arrays (and back).

Checkpoints store everything as flat ``{name: array}`` maps (see
:mod:`repro.resilience.checkpoint`).  This module converts the stateful
pieces of the MA-Opt stack — MLP weights, Adam/SGD moments, the critic's
metric scaler, numpy ``Generator`` states — to and from that shape.
Restores are *exact*: resuming reproduces the very float sequence an
uninterrupted run would have produced.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "capture_actor",
    "capture_critic",
    "capture_mlp",
    "capture_optimizer",
    "restore_actor",
    "restore_critic",
    "restore_mlp",
    "restore_optimizer",
    "rng_state",
    "set_rng_state",
]


# -- numpy Generator state ----------------------------------------------------
def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """JSON-safe snapshot of a ``Generator``'s bit-generator state."""
    # dict() rather than the raw Mapping: detaches the snapshot from the
    # live generator and matches the declared (JSON-friendly) type.
    return dict(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict[str, Any]) -> None:
    """Restore a snapshot taken by :func:`rng_state` (exact continuation)."""
    rng.bit_generator.state = state


# -- MLPs and their optimizers ------------------------------------------------
def capture_mlp(prefix: str, net) -> dict[str, np.ndarray]:
    return {f"{prefix}/w{j}": w for j, w in enumerate(net.get_weights())}


def restore_mlp(prefix: str, net, arrays: dict[str, np.ndarray]) -> None:
    net.set_weights(
        [arrays[f"{prefix}/w{j}"] for j in range(len(net.parameters()))])


def capture_optimizer(prefix: str, opt) -> dict[str, np.ndarray]:
    """Flatten ``opt.state_dict()`` (lists become ``key0, key1, ...``)."""
    out: dict[str, np.ndarray] = {}
    for key, value in opt.state_dict().items():
        if isinstance(value, list):
            for j, arr in enumerate(value):
                out[f"{prefix}/{key}{j}"] = arr
        else:
            out[f"{prefix}/{key}"] = np.asarray(value)
    return out


def restore_optimizer(prefix: str, opt,
                      arrays: dict[str, np.ndarray]) -> None:
    """Inverse of :func:`capture_optimizer` (shapes come from the live
    optimizer's own state dict, so no schema is stored)."""
    state: dict[str, Any] = {}
    for key, value in opt.state_dict().items():
        if isinstance(value, list):
            state[key] = [arrays[f"{prefix}/{key}{j}"]
                          for j in range(len(value))]
        else:
            state[key] = arrays[f"{prefix}/{key}"][()]
    opt.load_state_dict(state)


# -- actor / critic -----------------------------------------------------------
def capture_actor(prefix: str, actor) -> dict[str, np.ndarray]:
    out = capture_mlp(f"{prefix}/net", actor.net)
    out.update(capture_optimizer(f"{prefix}/opt", actor.opt))
    return out


def restore_actor(prefix: str, actor, arrays: dict[str, np.ndarray]) -> None:
    restore_mlp(f"{prefix}/net", actor.net, arrays)
    restore_optimizer(f"{prefix}/opt", actor.opt, arrays)


def _capture_single_critic(prefix: str, critic) -> dict[str, np.ndarray]:
    out = capture_mlp(f"{prefix}/net", critic.net)
    out.update(capture_optimizer(f"{prefix}/opt", critic.opt))
    return out


def _restore_single_critic(prefix: str, critic,
                           arrays: dict[str, np.ndarray]) -> None:
    restore_mlp(f"{prefix}/net", critic.net, arrays)
    restore_optimizer(f"{prefix}/opt", critic.opt, arrays)


def capture_critic(prefix: str, critic) -> dict[str, np.ndarray]:
    """Capture a ``Critic`` or ``CriticEnsemble`` (members + shared scaler)."""
    members = getattr(critic, "members", None)
    if members is None:
        out = _capture_single_critic(prefix, critic)
    else:
        out = {}
        for k, member in enumerate(members):
            out.update(_capture_single_critic(f"{prefix}/m{k}", member))
    out[f"{prefix}/scaler_mean"] = np.asarray(critic.scaler.mean)
    out[f"{prefix}/scaler_std"] = np.asarray(critic.scaler.std)
    return out


def restore_critic(prefix: str, critic,
                   arrays: dict[str, np.ndarray]) -> None:
    members = getattr(critic, "members", None)
    if members is None:
        _restore_single_critic(prefix, critic, arrays)
    else:
        for k, member in enumerate(members):
            _restore_single_critic(f"{prefix}/m{k}", member, arrays)
    critic.scaler.mean = np.array(arrays[f"{prefix}/scaler_mean"])
    critic.scaler.std = np.array(arrays[f"{prefix}/scaler_std"])
