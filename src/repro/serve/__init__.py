"""``repro.serve`` — optimization-as-a-service for the MA-Opt stack.

The paper's experiments are long (hundreds of simulator calls per run);
this package turns the repo's optimizers into a local service so many
runs share one machine fairly and survive restarts:

* **job specs** (:mod:`repro.serve.jobs`): versioned
  ``repro.serve/job`` JSON documents validated at submit time with the
  same diagnostic machinery as every other linter in the repo (``job.*``
  rules composed with the ``cfg.*`` optimizer-config cross-checks);
* **scheduling** (:class:`JobManager`): priority lanes, FIFO within a
  lane, per-tenant concurrency caps, cancel/timeout, worker threads —
  policy isolated in the pure :func:`select_next`;
* **protocol** (:mod:`repro.serve.protocol` /
  :mod:`repro.serve.server`): newline-delimited JSON over a loopback
  socket with request IDs and structured error replies; the endpoint is
  published to ``<root>/server.json`` for discovery;
* **client** (:class:`JobClient`): the blocking connection behind
  ``ma-opt serve`` / ``ma-opt submit`` / ``ma-opt jobs ...``;
* **durability**: every attempt records into the
  :mod:`repro.obs.store` run store (so ``ma-opt jobs tail`` reuses the
  ordinary run-tail machinery), MA-family jobs checkpoint via
  :mod:`repro.resilience`, and ``ma-opt serve --resume`` re-queues
  queued/interrupted/crashed jobs and continues them bit-exactly.

See ``docs/service.md`` for the protocol reference and a walkthrough.
"""

from repro.core.config import PRIORITY_LANES, ServeConfig
from repro.serve.client import JobClient, ServeError, read_endpoint
from repro.serve.jobs import (
    JOB_RULES,
    JOB_STATES,
    TERMINAL_JOB_STATES,
    Job,
    JobManager,
    JobValidationError,
    canonical_spec,
    select_next,
    spec_hash,
    validate_job,
)
from repro.serve.server import JobServer, endpoint_path

__all__ = [
    "JOB_RULES",
    "JOB_STATES",
    "Job",
    "JobClient",
    "JobManager",
    "JobServer",
    "JobValidationError",
    "PRIORITY_LANES",
    "ServeConfig",
    "ServeError",
    "TERMINAL_JOB_STATES",
    "canonical_spec",
    "endpoint_path",
    "read_endpoint",
    "select_next",
    "spec_hash",
    "validate_job",
]
