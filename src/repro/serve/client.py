"""Blocking protocol client: what ``ma-opt submit`` / ``ma-opt jobs``
speak.

A :class:`JobClient` holds one connection and issues one request at a
time (it is deliberately *not* thread-safe — give each thread its own
client; connections are cheap and the server is threaded).  Structured
server errors surface as :class:`ServeError` with the protocol error
code and any validation diagnostics attached.

Discovery: :meth:`JobClient.connect` reads the ``server.json`` endpoint
file a running server publishes under its service root, so callers
address the service by directory, not by host/port.
"""

from __future__ import annotations

import json
import pathlib
import socket
import time
from typing import Any, Mapping

from repro.serve import protocol
from repro.serve.jobs import TERMINAL_JOB_STATES
from repro.serve.server import endpoint_path


class ServeError(RuntimeError):
    """A structured error reply (or transport failure); ``code`` is one
    of :data:`repro.serve.protocol.ERROR_CODES` (or ``"disconnected"``)."""

    def __init__(self, code: str, message: str,
                 diagnostics: list | None = None) -> None:
        self.code = code
        self.diagnostics = list(diagnostics or [])
        super().__init__(f"{code}: {message}")


def read_endpoint(root: str | pathlib.Path) -> dict:
    """The endpoint document published by a server on ``root``.

    Raises :class:`ServeError` when no server has published one (the
    ``ma-opt submit`` failure mode for "did you start ``ma-opt
    serve``?").
    """
    path = endpoint_path(root)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ServeError(
            "disconnected",
            f"no server endpoint at {path} — is `ma-opt serve --root "
            f"{root}` running?") from None
    except ValueError as exc:
        raise ServeError("disconnected",
                         f"unreadable endpoint file {path}: {exc}") \
            from None
    if doc.get("schema") != "repro.serve/endpoint":
        raise ServeError("disconnected",
                         f"{path} is not an endpoint document")
    return doc


class JobClient:
    """One connection to a job server; request/reply, in order."""

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._n_requests = 0

    @classmethod
    def connect(cls, root: str | pathlib.Path,
                timeout: float = 30.0) -> "JobClient":
        """Connect via a service root's published endpoint file."""
        doc = read_endpoint(root)
        return cls(str(doc["host"]), int(doc["port"]), timeout=timeout)

    def close(self) -> None:
        self._fh.close()
        self._sock.close()

    def __enter__(self) -> "JobClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------
    def request(self, op: str,
                params: Mapping[str, Any] | None = None) -> Any:
        """One round-trip; returns the reply's ``result`` or raises
        :class:`ServeError`."""
        self._n_requests += 1
        req_id = f"req-{self._n_requests:04d}"
        try:
            self._fh.write(protocol.encode(
                protocol.request(op, req_id, params)))
            self._fh.flush()
            line = self._fh.readline(protocol.MAX_FRAME_BYTES + 1)
        except OSError as exc:
            raise ServeError("disconnected", str(exc)) from None
        if not line:
            raise ServeError("disconnected",
                             "server closed the connection")
        reply = protocol.decode(line)
        if reply.get("id") not in (req_id, None):
            raise ServeError("bad-request",
                             f"reply for {reply.get('id')!r}, expected "
                             f"{req_id!r}")
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise ServeError(str(error.get("code", "internal")),
                             str(error.get("message", "unknown error")),
                             diagnostics=error.get("diagnostics"))
        return reply.get("result")

    # -- ops -----------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, spec: Mapping[str, Any]) -> dict:
        """Submit a job spec; returns the accepted job record."""
        return self.request("submit", {"spec": dict(spec)})["job"]

    def status(self, job_id: str) -> dict:
        return self.request("status", {"job_id": job_id})["job"]

    def result(self, job_id: str) -> dict:
        """Record of a finished job (``not-finished`` error otherwise)."""
        return self.request("result", {"job_id": job_id})["job"]

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", {"job_id": job_id})["job"]

    def list_jobs(self, tenant: str | None = None,
                  state: str | None = None) -> list[dict]:
        params: dict[str, Any] = {}
        if tenant is not None:
            params["tenant"] = tenant
        if state is not None:
            params["state"] = state
        return self.request("list", params)["jobs"]

    def tail_info(self, job_id: str) -> dict:
        """Run-dir pointer for following a job's live event stream."""
        return self.request("tail", {"job_id": job_id})

    def wait(self, job_id: str, timeout: float | None = None,
             poll_s: float = 0.2) -> dict:
        """Poll ``status`` until the job is terminal; returns the record.

        Raises :class:`ServeError` (code ``"timeout"``) when ``timeout``
        seconds pass first.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            record = self.status(job_id)
            if record["state"] in TERMINAL_JOB_STATES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    "timeout", f"job {job_id} still "
                    f"{record['state']} after {timeout}s")
            time.sleep(poll_s)
