"""Job specs and the async multi-tenant :class:`JobManager`.

A **job** is one optimization run described by a versioned JSON document
(schema ``repro.serve/job``): task, method, budget, seed, plus service
metadata (priority lane, tenant, optional wall-clock timeout, MA-family
config overrides).  :func:`validate_job` statically checks a spec the
same way the repo lints everything else — it returns
:class:`~repro.analysis.diagnostics.Diagnostic` findings, composing the
job-level rules (``job.*``) with the existing optimizer config
cross-validation (``cfg.*`` from :mod:`repro.analysis.configlint`), so a
spec that would waste its simulation budget is rejected *at submit
time*, before it ever reaches the queue.

The :class:`JobManager` is the service core: a bounded scheduler
(strict priority lanes, FIFO within a lane, per-tenant running-job caps)
feeding a pool of worker threads.  Every accepted job gets

* a durable **job record** (``repro.serve/job-record`` JSON under
  ``<root>/jobs/``, written atomically on every state change), and
* a durable **run record** per attempt (an
  :class:`~repro.obs.store.RunStore` directory under ``<root>/runs/`` —
  the same layout ``ma-opt runs`` / ``ma-opt tail`` already read).

MA-family jobs run with a cooperative ``should_stop`` hook and periodic
checkpoints under ``<root>/ckpt/``, so ``cancel`` takes effect between
rounds and a server shutdown parks the job as *interrupted*;
:meth:`JobManager.resume` re-queues queued/interrupted/crashed jobs and
continues them bit-exactly from their last checkpoint in a fresh attempt
run directory.  Baseline jobs (BO/Random/PSO/DE/PPO) run to completion —
they are cancellable only while queued.

Scheduling policy lives in the pure function :func:`select_next` so it
is unit-testable (and benchmarked as ``micro.serve.dispatch``) without
any threads.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.configlint import check_config
from repro.analysis.diagnostics import (Diagnostic, RuleSet, Severity,
                                        has_errors)
from repro.core.config import (PRIORITY_LANES, MAOptConfig, ServeConfig,
                               VariantPreset)
from repro.resilience.checkpoint import atomic_write_json

SCHEMA_NAME = "repro.serve/job"
SCHEMA_VERSION = 1
RECORD_SCHEMA_NAME = "repro.serve/job-record"

#: Tasks a job may name (mirrors the CLI task factory).
TASKS = ("ota", "tia", "ldo", "sphere")

#: MA-family methods (checkpointable, cancellable mid-run) and their
#: presets; every other METHOD_NAMES entry is a blocking baseline.
MA_PRESETS = {
    "DNN-Opt": VariantPreset.DNN_OPT,
    "MA-Opt1": VariantPreset.MA_OPT_1,
    "MA-Opt2": VariantPreset.MA_OPT_2,
    "MA-Opt": VariantPreset.MA_OPT,
}

JOB_STATES = ("queued", "running", "finished", "failed", "cancelled",
              "interrupted")
#: States a job never leaves (``interrupted`` is *not* terminal: resume
#: re-queues it).
TERMINAL_JOB_STATES = ("finished", "failed", "cancelled")

#: The declared lifecycle, as ``(from, to)`` edges.  This is the spec the
#: ``proto.state.*`` conformance pass checks the implementation against:
#: terminal states have no outgoing edges ("no resurrection"), and
#: ``running -> queued`` / ``interrupted -> queued`` are the resume
#: paths (crashed mid-run / parked by a shutdown).
JOB_TRANSITIONS = (
    ("queued", "running"),
    ("queued", "cancelled"),
    ("running", "finished"),
    ("running", "failed"),
    ("running", "cancelled"),
    ("running", "interrupted"),
    ("running", "queued"),
    ("interrupted", "queued"),
)

#: Tenant names must stay a single safe path component: they key the
#: per-tenant concurrency cap and run-record metadata today and a
#: per-tenant directory layout tomorrow, so separators and traversal
#: (``..``) are rejected at validation time (the ``flow.taint.path``
#: boundary the taint pass polices).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: ``should_stop`` reason -> final job state.
_REASON_STATE = {"cancelled": "cancelled", "shutdown": "interrupted",
                 "timeout": "failed"}

JOB_RULES = RuleSet()
JOB_RULES.add("job.schema", Severity.ERROR,
              "job document must be a repro.serve/job v1 object")
JOB_RULES.add("job.task", Severity.ERROR,
              "job must name a known task")
JOB_RULES.add("job.method", Severity.ERROR,
              "job must name a known optimization method")
JOB_RULES.add("job.budget", Severity.ERROR,
              "simulation budget and initial-sample count must be "
              "positive integers")
JOB_RULES.add("job.priority", Severity.ERROR,
              "priority must be one of the service's lanes")
JOB_RULES.add("job.tenant", Severity.ERROR,
              "tenant must be a safe single-path-component name (it "
              "keys the per-tenant concurrency cap and directory "
              "layout)")
JOB_RULES.add("job.timeout", Severity.ERROR,
              "timeout must be a positive number of seconds (or null)")
JOB_RULES.add("job.overrides", Severity.ERROR,
              "config overrides must be known MAOptConfig fields on an "
              "MA-family method")


def canonical_spec(doc: Mapping[str, Any]) -> dict:
    """Normalized spec: defaults filled, keys ordered, nothing validated.

    The canonical form is what gets hashed (:func:`spec_hash`), stored in
    job records, and fed to :func:`validate_job` — two submissions that
    differ only in key order or omitted defaults are the same spec.
    """
    doc = dict(doc)
    return {
        "schema": doc.get("schema", SCHEMA_NAME),
        "schema_version": doc.get("schema_version", SCHEMA_VERSION),
        "task": doc.get("task"),
        "method": doc.get("method", "MA-Opt"),
        "fidelity": doc.get("fidelity", "fast"),
        "n_sims": doc.get("n_sims", 60),
        "n_init": doc.get("n_init", 40),
        "seed": doc.get("seed", 0),
        "priority": doc.get("priority", "normal"),
        "tenant": doc.get("tenant", "default"),
        "timeout_s": doc.get("timeout_s"),
        "overrides": dict(doc.get("overrides") or {}),
    }


def spec_hash(spec: Mapping[str, Any]) -> str:
    """Deterministic content hash of a canonical spec (hex sha256)."""
    blob = json.dumps(canonical_spec(spec), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_config(spec: Mapping[str, Any]) -> MAOptConfig:
    """The MAOptConfig an MA-family spec resolves to.

    Preset for the method, the repo's calibrated ``TUNED_MAOPT`` values,
    then the spec's explicit overrides — the same layering the CLI's
    ``optimize`` command applies, so a job reproduces the interactive
    run.
    """
    from repro.experiments.config import TUNED_MAOPT

    merged = dict(TUNED_MAOPT)
    merged.update(spec.get("overrides") or {})
    seed = merged.pop("seed", spec.get("seed", 0))
    return MAOptConfig.from_preset(MA_PRESETS[spec["method"]],
                                   seed=seed, **merged)


def validate_job(doc: Any) -> list[Diagnostic]:
    """All static problems with a job document (empty list = accept).

    Structural/service checks emit ``job.*`` diagnostics; for MA-family
    methods the resolved config is additionally cross-validated with
    :func:`repro.analysis.configlint.check_config` against the job's own
    budget, so ``cfg.*`` findings (elite set larger than the budget,
    near-sampling cadence that never fires, ...) ride along.
    """
    diags: list[Diagnostic] = []
    if not isinstance(doc, Mapping):
        return [JOB_RULES.diag(
            "job.schema", f"job is {type(doc).__name__}, expected an "
            f"object", fix="submit a JSON object")]
    spec = canonical_spec(doc)
    if (spec["schema"] != SCHEMA_NAME
            or spec["schema_version"] != SCHEMA_VERSION):
        diags.append(JOB_RULES.diag(
            "job.schema",
            f"schema is {spec['schema']!r} v{spec['schema_version']!r}; "
            f"this server reads {SCHEMA_NAME!r} v{SCHEMA_VERSION}",
            location="schema"))
    if spec["task"] not in TASKS:
        diags.append(JOB_RULES.diag(
            "job.task", f"unknown task {spec['task']!r}",
            location="task", fix=f"use one of {', '.join(TASKS)}"))
    from repro.experiments.runner import METHOD_NAMES

    if spec["method"] not in METHOD_NAMES:
        diags.append(JOB_RULES.diag(
            "job.method", f"unknown method {spec['method']!r}",
            location="method",
            fix=f"use one of {', '.join(METHOD_NAMES)}"))
    for key in ("n_sims", "n_init"):
        value = spec[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value <= 0:
            diags.append(JOB_RULES.diag(
                "job.budget", f"{key}={value!r} is not a positive "
                f"integer", location=key))
    if spec["priority"] not in PRIORITY_LANES:
        diags.append(JOB_RULES.diag(
            "job.priority", f"unknown priority {spec['priority']!r}",
            location="priority",
            fix=f"use one of {', '.join(PRIORITY_LANES)}"))
    tenant = spec["tenant"]
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        diags.append(JOB_RULES.diag(
            "job.tenant", f"tenant {tenant!r} is not a safe name "
            f"(want a letter/digit then [A-Za-z0-9._-], at most 64 "
            f"chars — it becomes a path component)",
            location="tenant", fix="use a plain identifier-like tenant "
            "name"))
    timeout = spec["timeout_s"]
    if timeout is not None and (isinstance(timeout, bool)
                                or not isinstance(timeout, (int, float))
                                or not timeout > 0):
        diags.append(JOB_RULES.diag(
            "job.timeout", f"timeout_s={timeout!r} is not a positive "
            f"number of seconds", location="timeout_s"))
    diags.extend(_check_overrides(spec))
    return diags


def _check_overrides(spec: dict) -> list[Diagnostic]:
    """``job.overrides`` + budget-aware ``cfg.*`` checks for a spec whose
    structural fields already parsed."""
    diags: list[Diagnostic] = []
    overrides = spec["overrides"]
    if not isinstance(overrides, Mapping):
        return [JOB_RULES.diag(
            "job.overrides", f"overrides is "
            f"{type(overrides).__name__}, expected an object",
            location="overrides")]
    if spec["method"] not in MA_PRESETS:
        if overrides:
            diags.append(JOB_RULES.diag(
                "job.overrides",
                f"overrides only apply to the MA-Opt family; "
                f"{spec['method']!r} ignores them",
                location="overrides", fix="drop the overrides or pick "
                "an MA-family method"))
        return diags
    known = set(MAOptConfig.__dataclass_fields__)
    for key in overrides:
        if key == "resilience":
            diags.append(JOB_RULES.diag(
                "job.overrides", "the job service owns checkpointing; "
                "resilience cannot be overridden per job",
                location="overrides.resilience"))
        elif key not in known:
            diags.append(JOB_RULES.diag(
                "job.overrides", f"unknown MAOptConfig field {key!r}",
                location=f"overrides.{key}"))
    if has_errors(diags):
        return diags
    try:
        config = build_config(spec)
    except (TypeError, ValueError) as exc:
        diags.append(JOB_RULES.diag(
            "job.overrides", f"overrides do not form a valid config: "
            f"{exc}", location="overrides"))
        return diags
    if isinstance(spec["n_sims"], int) and isinstance(spec["n_init"], int):
        diags.extend(check_config(config, n_sims=spec["n_sims"],
                                  n_init=spec["n_init"]))
    return diags


class JobValidationError(ValueError):
    """Raised by :meth:`JobManager.submit` on error-severity findings;
    the full diagnostic list rides on :attr:`diagnostics`."""

    def __init__(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics
                  if d.severity >= Severity.ERROR]
        super().__init__("job spec failed validation:\n  "
                         + "\n  ".join(d.render() for d in errors))


@dataclass
class Job:
    """Runtime state of one accepted job (the manager's unit of work)."""

    job_id: str
    spec: dict
    state: str = "queued"
    attempt: int = 0
    run_ids: list[str] = field(default_factory=list)
    error: str | None = None
    summary: dict = field(default_factory=dict)
    warnings: list[dict] = field(default_factory=list)
    submitted_unix: float = 0.0
    updated_unix: float = 0.0
    cancel: threading.Event = field(default_factory=threading.Event)

    @property
    def tenant(self) -> str:
        return str(self.spec.get("tenant", "default"))

    @property
    def priority(self) -> str:
        return str(self.spec.get("priority", "normal"))

    def record(self) -> dict:
        """The durable ``repro.serve/job-record`` document (also the
        public view every protocol reply carries)."""
        return {
            "schema": RECORD_SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "attempt": self.attempt,
            "spec": dict(self.spec),
            "run_ids": list(self.run_ids),
            "error": self.error,
            "summary": dict(self.summary),
            "warnings": list(self.warnings),
            "submitted_unix": self.submitted_unix,
            "updated_unix": self.updated_unix,
        }

    @classmethod
    def from_record(cls, doc: Mapping[str, Any]) -> "Job":
        """Rebuild runtime state from a persisted record."""
        if doc.get("schema") != RECORD_SCHEMA_NAME:
            raise ValueError(f"not a {RECORD_SCHEMA_NAME} document: "
                             f"{doc.get('schema')!r}")
        return cls(
            job_id=str(doc["job_id"]),
            spec=canonical_spec(doc.get("spec", {})),
            state=str(doc.get("state", "queued")),
            attempt=int(doc.get("attempt", 0)),
            run_ids=list(doc.get("run_ids", [])),
            error=doc.get("error"),
            summary=dict(doc.get("summary", {})),
            warnings=list(doc.get("warnings", [])),
            submitted_unix=float(doc.get("submitted_unix", 0.0)),
            updated_unix=float(doc.get("updated_unix", 0.0)),
        )


def select_next(queued: Sequence[Job],
                running_by_tenant: Mapping[str, int],
                tenant_cap: int) -> Job | None:
    """The scheduling policy, as a pure function.

    Strict priority lanes (every runnable ``high`` job beats every
    ``normal`` one), FIFO within a lane (``queued`` is in submission
    order), and a job is runnable only while its tenant holds fewer than
    ``tenant_cap`` running jobs.  Returns the job to start, or None when
    nothing is runnable.
    """
    for lane in PRIORITY_LANES:
        for job in queued:
            if job.priority != lane:
                continue
            if running_by_tenant.get(job.tenant, 0) >= tenant_cap:
                continue
            return job
    return None


def default_task_factory(spec: Mapping[str, Any]) -> Any:
    """Build the task a spec names (same factory the CLI uses)."""
    name = spec["task"]
    if name == "sphere":
        from repro.core.synthetic import ConstrainedSphere

        return ConstrainedSphere(d=12, seed=3)
    from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA

    factories = {"ota": TwoStageOTA, "tia": ThreeStageTIA,
                 "ldo": LDORegulator}
    if name not in factories:
        raise ValueError(f"unknown task {name!r}")
    return factories[name](fidelity=spec.get("fidelity", "fast"))


def run_job(manager: "JobManager", job: Job, recorder: Any,
            should_stop: Callable[[], str]) -> tuple[Any, str]:
    """Default job runner: one real optimization run.

    Returns ``(result, stop_reason)`` where ``stop_reason`` is the empty
    string for a run that spent its whole budget.  MA-family methods run
    :class:`~repro.core.ma_opt.MAOptimizer` directly with the service's
    ``should_stop`` hook and checkpoint cadence (and restore from the
    job's checkpoint on attempts after the first); baselines run the
    shared-initial-set protocol to completion.
    """
    spec = job.spec
    task = manager.make_task(spec)
    telemetry = recorder.telemetry
    if spec["method"] in MA_PRESETS:
        from repro.core.ma_opt import MAOptimizer

        ckpt = manager.checkpoint_path(job.job_id)
        if job.attempt > 1 and ckpt.exists():
            opt = MAOptimizer.restore(ckpt, task, telemetry=telemetry)
        else:
            opt = MAOptimizer(task, build_config(spec),
                              telemetry=telemetry)
        result = opt.run(
            n_sims=spec["n_sims"], n_init=spec["n_init"],
            method_name=spec["method"], checkpoint_path=str(ckpt),
            checkpoint_every=manager.config.checkpoint_every,
            should_stop=should_stop)
        return result, str(result.meta.get("stopped") or "")
    from repro.experiments.runner import make_initial_set, run_method

    x_init, f_init = make_initial_set(task, spec["n_init"],
                                      seed=spec["seed"],
                                      telemetry=telemetry)
    reason = should_stop()
    if reason:  # baselines are not stoppable mid-run; bail between phases
        return None, reason
    result = run_method(spec["method"], task, spec["n_sims"], x_init,
                        f_init, seed=spec["seed"], telemetry=telemetry)
    return result, ""


def _summarize(result: Any) -> dict:
    """Job-record summary of an OptimizationResult (JSON-safe scalars)."""
    if result is None:
        return {}
    summary = {
        "best_fom": float(result.best_fom),
        "success": bool(result.success),
        "n_sims": len(result.records),
        "wall_time_s": float(result.wall_time_s),
    }
    stopped = result.meta.get("stopped") if hasattr(result, "meta") else None
    if stopped:
        summary["stopped"] = stopped
    return summary


class JobManager:
    """Bounded multi-tenant scheduler running jobs on worker threads.

    ``root`` is the service's durable state directory (job records, run
    store, checkpoints — see the module docstring).  ``runner`` and
    ``task_factory`` are injection seams: tests replace the runner with
    a stub to exercise scheduling/cancel/resume without real
    optimization runs.

    Thread model: ``config.max_workers`` worker threads (named
    ``serve-worker-<i>``, daemon, joined on :meth:`close`) plus any
    number of protocol threads calling the public methods.  All shared
    state is guarded by one condition variable; job execution happens
    outside the lock, with cooperative stop via per-job cancel events
    and the manager-wide shutdown event.
    """

    def __init__(self, root: str | pathlib.Path,
                 config: ServeConfig | None = None,
                 task_factory: Callable[[Mapping[str, Any]], Any] | None
                 = None,
                 runner: Callable[..., tuple[Any, str]] | None = None
                 ) -> None:
        from repro.obs.store import RunStore

        self.root = pathlib.Path(root)
        self.config = config or ServeConfig()
        self.jobs_dir = self.root / "jobs"
        self.ckpt_dir = self.root / "ckpt"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.ckpt_dir.mkdir(parents=True, exist_ok=True)
        self.store = RunStore(self.root / "runs")
        self._task_factory = task_factory or default_task_factory
        self._runner = runner or run_job
        self._stop = threading.Event()      # set once, at close()
        self._cv = threading.Condition()
        self._jobs: dict[str, Job] = {}     # repro: guarded-by[_cv]
        self._order: list[str] = []         # repro: guarded-by[_cv]
        self._running: dict[str, str] = {}  # repro: guarded-by[_cv]
        self._seq = 0                       # repro: guarded-by[_cv]
        self._shutdown = False              # repro: guarded-by[_cv]
        self._threads = [
            threading.Thread(target=self._worker,
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(self.config.max_workers)
        ]
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "JobManager":
        """Start the worker pool (idempotent)."""
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()
        return self

    def __enter__(self) -> "JobManager":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self, drain: bool = False,
              timeout: float | None = None) -> None:
        """Stop the service.

        ``drain=True`` first waits (up to ``timeout``, default
        ``config.drain_timeout_s``) for the queue to empty; otherwise
        running MA-family jobs are stopped at their next round boundary
        and parked as *interrupted* (checkpoint on disk, queued jobs
        untouched) — exactly the state :meth:`resume` continues from.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        if drain:
            self.wait_idle(timeout=timeout)
        self._stop.set()
        with self._cv:
            self._shutdown = True
            self._cv.notify_all()
        if self._started:
            for thread in self._threads:
                thread.join(timeout=timeout)

    def resume(self) -> list[str]:
        """Reload persisted jobs; re-queue every unfinished one.

        Terminal jobs load for listing only.  Jobs persisted as
        ``queued``, ``interrupted`` (clean shutdown) or ``running`` (the
        previous process died mid-run) go back on the queue in job-ID
        order; their next attempt restores from the job checkpoint when
        one exists.  Returns the re-queued job IDs.
        """
        requeued: list[str] = []
        records = []
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            records.append(json.loads(path.read_text(encoding="utf-8")))
        with self._cv:
            for doc in records:
                job = Job.from_record(doc)
                if job.job_id in self._jobs:
                    continue
                self._jobs[job.job_id] = job
                seq = _job_seq(job.job_id)
                if seq > self._seq:
                    self._seq = seq
                if job.state in TERMINAL_JOB_STATES:
                    continue
                job.state = "queued"
                job.updated_unix = time.time()
                self._order.append(job.job_id)
                requeued.append(job.job_id)
            self._cv.notify_all()
        for job_id in requeued:
            self._persist(self._get(job_id))
        return requeued

    # -- submission / queries ------------------------------------------------
    def submit(self, doc: Mapping[str, Any]) -> dict:
        """Validate, persist and enqueue a job; returns its record.

        Error-severity findings raise :class:`JobValidationError`;
        warnings are accepted but stored on the record (and echoed in
        the protocol reply).  Job IDs are deterministic:
        ``job-<seq:06d>-<spec-hash[:8]>``, so the same submission
        sequence on a fresh root yields the same IDs.
        """
        spec = canonical_spec(doc)
        diags = validate_job(spec)
        if has_errors(diags):
            raise JobValidationError(diags)
        now = time.time()
        with self._cv:
            if self._shutdown:
                raise RuntimeError("job manager is shutting down")
            self._seq += 1
            job_id = f"job-{self._seq:06d}-{spec_hash(spec)[:8]}"
            job = Job(job_id=job_id, spec=spec, submitted_unix=now,
                      updated_unix=now,
                      warnings=[d.to_dict() for d in diags])
            self._jobs[job_id] = job
        # Persist before publishing to the queue: the record is durable
        # before any worker can claim (and re-persist) the job.
        self._persist(job)
        with self._cv:
            self._order.append(job_id)
            self._cv.notify_all()
        return self.status(job_id)

    def status(self, job_id: str) -> dict:
        """Current record of one job (raises ``KeyError`` when unknown)."""
        job = self._get(job_id)
        with self._cv:
            return job.record()

    def result(self, job_id: str) -> dict:
        """Record of a *terminal* job; raises ``RuntimeError`` otherwise."""
        record = self.status(job_id)
        if record["state"] not in TERMINAL_JOB_STATES:
            raise RuntimeError(
                f"job {job_id} is {record['state']}, not finished")
        return record

    def list_jobs(self, tenant: str | None = None,
                  state: str | None = None) -> list[dict]:
        """Records of every known job (job-ID order), optionally filtered."""
        with self._cv:
            records = [self._jobs[jid].record()
                       for jid in sorted(self._jobs)]
        if tenant is not None:
            records = [r for r in records
                       if r["spec"].get("tenant") == tenant]
        if state is not None:
            records = [r for r in records if r["state"] == state]
        return records

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: dequeue it if queued, stop it if running.

        A running MA-family job stops at its next round boundary (its
        run record seals as ``cancelled``); terminal jobs are returned
        unchanged.
        """
        job = self._get(job_id)
        changed = False
        with self._cv:
            if job.state == "queued":
                job.state = "cancelled"
                job.updated_unix = time.time()
                self._order.remove(job_id)
                self._cv.notify_all()
                changed = True
            elif job.state == "running":
                job.cancel.set()
            record = job.record()
        if changed:
            self._persist(job)
        return record

    def tail_info(self, job_id: str) -> dict:
        """Where to tail a job: its latest attempt's run dir (or None)."""
        job = self._get(job_id)
        with self._cv:
            run_id = job.run_ids[-1] if job.run_ids else None
            state = job.state
        return {
            "job_id": job_id,
            "state": state,
            "run_id": run_id,
            "run_dir": (None if run_id is None
                        else str(self.store.root / run_id)),
        }

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until a job reaches a terminal state; returns its record."""
        job = self._get(job_id)
        with self._cv:
            self._cv.wait_for(
                lambda: job.state in TERMINAL_JOB_STATES, timeout)
            return job.record()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is queued or running (True on success)."""
        with self._cv:
            return self._cv.wait_for(
                lambda: not self._order and not self._running, timeout)

    def counts(self) -> dict:
        """State -> job count (the ``ping`` reply's summary)."""
        out: dict[str, int] = {}
        with self._cv:
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
        return out

    # -- internals -----------------------------------------------------------
    def make_task(self, spec: Mapping[str, Any]) -> Any:
        """Task instance for a spec (via the injected factory)."""
        return self._task_factory(spec)

    def checkpoint_path(self, job_id: str) -> pathlib.Path:
        """Where a job's optimizer checkpoint lives."""
        return self.ckpt_dir / f"{job_id}.npz"

    def _get(self, job_id: str) -> Job:
        """Job for an exact ID or unique ID prefix (RunStore idiom)."""
        with self._cv:
            if job_id in self._jobs:
                return self._jobs[job_id]
            matches = [jid for jid in self._jobs
                       if jid.startswith(job_id)]
            if len(matches) == 1:
                return self._jobs[matches[0]]
            if matches:
                raise KeyError(f"ambiguous job prefix {job_id!r}: "
                               + ", ".join(sorted(matches)))
            raise KeyError(f"unknown job {job_id!r}")

    def _persist(self, job: Job) -> None:
        """Write the job record (atomic; called outside the lock —
        the last writer wins, and every version is internally
        consistent)."""
        with self._cv:
            record = job.record()
        atomic_write_json(self.jobs_dir / f"{job.job_id}.json", record)

    def _pick(self) -> Job | None:
        # Called by workers that already hold _cv; the Condition's
        # underlying RLock makes the re-acquisition free.
        with self._cv:
            queued = [self._jobs[jid] for jid in self._order]
            counts: dict[str, int] = {}
            for tenant in self._running.values():
                counts[tenant] = counts.get(tenant, 0) + 1
        return select_next(queued, counts, self.config.tenant_cap)

    def _worker(self) -> None:
        """Worker thread: claim runnable jobs until shutdown."""
        while True:
            claimed: Job | None = None
            with self._cv:
                while claimed is None and not self._shutdown:
                    claimed = self._pick()
                    if claimed is None:
                        self._cv.wait(self.config.poll_s)
                if claimed is None:
                    return
                claimed.state = "running"
                claimed.attempt += 1
                claimed.updated_unix = time.time()
                self._order.remove(claimed.job_id)
                self._running[claimed.job_id] = claimed.tenant
            self._execute(claimed)

    def _execute(self, job: Job) -> None:
        """Run one claimed job and seal its state (worker thread)."""
        spec = job.spec
        run_id = (job.job_id if job.attempt == 1
                  else f"{job.job_id}-r{job.attempt}")
        deadline = (None if not spec.get("timeout_s")
                    else time.monotonic() + float(spec["timeout_s"]))

        def should_stop() -> str:
            if job.cancel.is_set():
                return "cancelled"
            if self._stop.is_set():
                return "shutdown"
            if deadline is not None and time.monotonic() > deadline:
                return "timeout"
            return ""

        recorder = self.store.create_run(
            method=spec["method"], task=spec["task"], run_id=run_id,
            meta={"job_id": job.job_id, "attempt": job.attempt,
                  "tenant": job.tenant, "priority": job.priority})
        with self._cv:
            job.run_ids.append(run_id)
        self._persist(job)
        result: Any = None
        reason = ""
        error: str | None = None
        try:
            reason = should_stop()
            if not reason:
                result, reason = self._runner(self, job, recorder,
                                              should_stop)
                reason = reason or ""
        except Exception as exc:  # any crash fails the job, not the pool
            error = repr(exc)
        # Seal the run record; all three calls are no-ops when the
        # optimizer's own observer hooks already finalized it.
        if error is not None:
            recorder.mark_failed(error)
        elif reason:
            recorder.on_run_stopped(None, result, reason)
        else:
            recorder.finalize(result)
        if error is None and reason == "timeout":
            error = f"stopped: timeout after {spec['timeout_s']}s"
        with self._cv:
            job.state = ("failed" if error is not None
                         else _REASON_STATE.get(reason, "finished"))
            job.error = error
            job.summary = _summarize(result)
            job.updated_unix = time.time()
            del self._running[job.job_id]
            self._cv.notify_all()
        self._persist(job)


def _job_seq(job_id: str) -> int:
    """The sequence number encoded in a job ID (0 when unparseable)."""
    parts = job_id.split("-")
    try:
        return int(parts[1])
    except (IndexError, ValueError):
        return 0
