"""Wire protocol of the job service: newline-delimited JSON frames.

One request per line, one reply per line, UTF-8, no length prefixes —
the protocol is debuggable with ``nc`` and versioned like every other
on-disk/on-wire document in the repo (``repro.serve/ndjson`` v1).

Request::

    {"id": "req-0001", "op": "submit", "params": {"spec": {...}}}

Reply (exactly one per request, carrying the request's ``id``)::

    {"id": "req-0001", "ok": true,  "result": {...}}
    {"id": "req-0001", "ok": false,
     "error": {"code": "invalid-job", "message": "...",
               "diagnostics": [...]}}

Ops: ``ping``, ``submit``, ``status``, ``result``, ``cancel``, ``list``,
``tail``.  Structured error codes (not prose) are the contract clients
branch on; ``diagnostics`` carries rendered
:class:`~repro.analysis.diagnostics.Diagnostic` dicts when validation
rejected a spec.  This module is pure framing/validation — no sockets —
so both ends and the tests share one implementation.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

PROTOCOL_NAME = "repro.serve/ndjson"
PROTOCOL_VERSION = 1

#: Operations a v1 server understands.
OPS = ("ping", "submit", "status", "result", "cancel", "list", "tail")

#: Structured error codes a v1 server may return.
ERROR_CODES = ("bad-request", "unknown-op", "invalid-job", "unknown-job",
               "not-finished", "shutting-down", "internal")

#: Upper bound on one frame; a line longer than this is a protocol error
#: (protects the server from an unframed garbage stream).
MAX_FRAME_BYTES = 1_000_000


class ProtocolError(ValueError):
    """A malformed frame or request; ``code`` is the error code to reply
    with."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


def request(op: str, req_id: str,
            params: Mapping[str, Any] | None = None) -> dict:
    """Build a request document."""
    return {"id": req_id, "op": op, "params": dict(params or {})}


def ok_reply(req_id: str | None, result: Any) -> dict:
    """Build a success reply."""
    return {"id": req_id, "ok": True, "result": result}


def error_reply(req_id: str | None, code: str, message: str,
                diagnostics: list | None = None) -> dict:
    """Build a structured error reply."""
    error: dict[str, Any] = {"code": code, "message": message}
    if diagnostics:
        error["diagnostics"] = list(diagnostics)
    return {"id": req_id, "ok": False, "error": error}


def encode(doc: Mapping[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError("bad-request",
                                f"frame exceeds {MAX_FRAME_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-request",
                            f"frame is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("bad-request",
                            f"frame is {type(doc).__name__}, expected "
                            f"an object")
    return doc


def validate_request(doc: Mapping[str, Any]) -> dict:
    """Check a decoded frame is a well-formed v1 request.

    Returns ``{"id", "op", "params"}`` (params defaulted); raises
    :class:`ProtocolError` with the code to reply with otherwise.
    """
    req_id = doc.get("id")
    if req_id is not None and not isinstance(req_id, str):
        raise ProtocolError("bad-request", "request id must be a string")
    op = doc.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request has no op")
    if op not in OPS:
        raise ProtocolError("unknown-op",
                            f"unknown op {op!r}; this server speaks "
                            f"{PROTOCOL_NAME} v{PROTOCOL_VERSION} "
                            f"({', '.join(OPS)})")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("bad-request", "params must be an object")
    return {"id": req_id, "op": op, "params": params}
