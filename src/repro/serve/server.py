"""Threaded NDJSON socket server in front of a :class:`JobManager`.

The server owns nothing but transport: every op maps 1:1 onto a manager
method, every manager exception maps onto a structured protocol error.
It listens on a loopback TCP socket (``port 0`` by default — the OS
picks a free port) and publishes the chosen endpoint to
``<root>/server.json`` so clients discover it by service root rather
than by copy-pasted port numbers.

Thread model: one accept thread (``serve-accept``) plus one thread per
connection (``serve-conn-<n>``), all daemon and joined on
:meth:`JobServer.close`.  A connection may pipeline any number of
requests; replies come back in order, one line each.
"""

from __future__ import annotations

import os
import pathlib
import socket
import threading
import time
from typing import Any

from repro.resilience.checkpoint import atomic_write_json
from repro.serve import protocol
from repro.serve.jobs import JobManager, JobValidationError

ENDPOINT_SCHEMA_NAME = "repro.serve/endpoint"
ENDPOINT_FILE = "server.json"


def endpoint_path(root: str | pathlib.Path) -> pathlib.Path:
    """Where a service root publishes its live endpoint."""
    return pathlib.Path(root) / ENDPOINT_FILE


class JobServer:
    """Accepts protocol connections and dispatches ops to the manager."""

    def __init__(self, manager: JobManager,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._sock: socket.socket | None = None
        self._stopping = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._conn_threads: list[threading.Thread] = []
        self._n_conns = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "JobServer":
        """Bind, publish the endpoint file, and start accepting."""
        if self._sock is not None:
            return self
        sock = socket.create_server((self.host, self.port))
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]
        atomic_write_json(endpoint_path(self.manager.root), {
            "schema": ENDPOINT_SCHEMA_NAME,
            "schema_version": protocol.PROTOCOL_VERSION,
            "protocol": protocol.PROTOCOL_NAME,
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "started_unix": time.time(),
        })
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self, timeout: float = 2.0) -> None:
        """Stop accepting, close the socket, retire the endpoint file.

        Connection threads get ``timeout`` seconds to finish their
        in-flight request; they are daemon threads, so a client that
        never hangs up cannot keep the process alive.
        """
        self._stopping.set()
        if self._sock is not None:
            self._sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=timeout)
        path = endpoint_path(self.manager.root)
        if path.exists():
            path.unlink()

    # -- transport -----------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:  # socket closed by close()
                return
            with self._lock:
                self._n_conns += 1
                name = f"serve-conn-{self._n_conns}"
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name=name, daemon=True)
                self._conn_threads.append(thread)
                self._conn_threads = [t for t in self._conn_threads
                                      if t.is_alive() or t is thread]
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            fh = conn.makefile("rwb")
            while not self._stopping.is_set():
                try:
                    line = fh.readline(protocol.MAX_FRAME_BYTES + 1)
                except OSError:
                    return
                if not line:
                    return
                reply = self._handle_line(line)
                try:
                    fh.write(protocol.encode(reply))
                    fh.flush()
                except OSError:
                    return

    def _handle_line(self, line: bytes) -> dict:
        req_id: str | None = None
        try:
            doc = protocol.decode(line)
            req_id = doc.get("id") if isinstance(doc.get("id"), str) \
                else None
            req = protocol.validate_request(doc)
            return protocol.ok_reply(
                req["id"], self._dispatch(req["op"], req["params"]))
        except protocol.ProtocolError as exc:
            return protocol.error_reply(req_id, exc.code, str(exc))
        except JobValidationError as exc:
            return protocol.error_reply(
                req_id, "invalid-job", str(exc),
                diagnostics=[d.to_dict() for d in exc.diagnostics])
        except KeyError as exc:
            return protocol.error_reply(req_id, "unknown-job",
                                        str(exc.args[0]))
        except RuntimeError as exc:
            code = ("shutting-down" if "shutting down" in str(exc)
                    else "not-finished")
            return protocol.error_reply(req_id, code, str(exc))
        except Exception as exc:  # a bug must not kill the connection
            return protocol.error_reply(req_id, "internal", repr(exc))

    # -- op dispatch ---------------------------------------------------------
    def _dispatch(self, op: str, params: dict) -> Any:
        if op == "ping":
            return {"protocol": protocol.PROTOCOL_NAME,
                    "version": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "jobs": self.manager.counts()}
        if op == "submit":
            spec = params.get("spec")
            if not isinstance(spec, dict):
                raise protocol.ProtocolError(
                    "bad-request", "submit needs params.spec (an object)")
            return {"job": self.manager.submit(spec)}
        job_id = params.get("job_id")
        if op == "list":
            return {"jobs": self.manager.list_jobs(
                tenant=params.get("tenant"), state=params.get("state"))}
        if not isinstance(job_id, str):
            raise protocol.ProtocolError(
                "bad-request", f"{op} needs params.job_id (a string)")
        if op == "status":
            return {"job": self.manager.status(job_id)}
        if op == "result":
            return {"job": self.manager.result(job_id)}
        if op == "cancel":
            return {"job": self.manager.cancel(job_id)}
        if op == "tail":
            return self.manager.tail_info(job_id)
        raise protocol.ProtocolError("unknown-op", f"unhandled op {op!r}")
