"""A compact analog circuit simulator (the repo's HSpice substitute).

Implements Modified Nodal Analysis over dense numpy matrices with:

* DC operating point (Newton-Raphson with gmin- and source-stepping
  homotopy), DC sweeps,
* AC small-signal analysis (complex MNA linearized at the OP),
* transient analysis (backward-Euler / trapezoidal companion models with
  per-step Newton and step halving on non-convergence),
* small-signal noise analysis (adjoint method; thermal + flicker sources).

Devices: resistors, capacitors, inductors, independent V/I sources with
DC/PULSE/SIN/PWL waveforms, VCVS/VCCS, diodes, and a C1-smooth EKV-style
MOSFET model with representative 180 nm parameter cards.

The circuits in the MA-Opt paper are a few dozen nodes, so dense LU
factorization is both simpler and faster than sparse machinery here.
"""

from repro.spice.ac import ac_analysis
from repro.spice.corners import corner_models
from repro.spice.dc import dc_sweep, operating_point
from repro.spice.exceptions import (
    AnalysisError,
    ConvergenceError,
    NetlistError,
    SpiceError,
)
from repro.spice.models import (
    DiodeModel,
    MosfetModel,
    NMOS_180,
    PMOS_180,
)
from repro.spice.montecarlo import monte_carlo
from repro.spice.netlist import Circuit
from repro.spice.noise import noise_analysis
from repro.spice.parser import parse_netlist
from repro.spice.report import op_report
from repro.spice.tf import transfer_function
from repro.spice.transient import transient_analysis
from repro.spice.units import format_si, parse_si
from repro.spice.waveforms import DCWave, PieceWiseLinear, Pulse, Sine

__all__ = [
    "Circuit",
    "operating_point",
    "dc_sweep",
    "ac_analysis",
    "transient_analysis",
    "noise_analysis",
    "transfer_function",
    "parse_netlist",
    "monte_carlo",
    "corner_models",
    "op_report",
    "MosfetModel",
    "DiodeModel",
    "NMOS_180",
    "PMOS_180",
    "DCWave",
    "Pulse",
    "Sine",
    "PieceWiseLinear",
    "parse_si",
    "format_si",
    "SpiceError",
    "NetlistError",
    "ConvergenceError",
    "AnalysisError",
]
