"""AC small-signal analysis."""

from __future__ import annotations

import numpy as np

from repro.spice.dc import operating_point
from repro.spice.exceptions import AnalysisError
from repro.spice.netlist import Circuit
from repro.spice.results import ACResult, OPResult


def logspace_frequencies(f_start: float, f_stop: float,
                         points_per_decade: int = 10) -> np.ndarray:
    """Logarithmic frequency grid, SPICE ``.ac dec`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise AnalysisError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)


def _sweep_loop(circuit: Circuit, freqs: np.ndarray,
                x_op: np.ndarray) -> np.ndarray:
    """Reference sweep: assemble and solve one system per frequency."""
    xs = np.empty((freqs.size, circuit.size), dtype=complex)
    for k, f in enumerate(freqs):
        sys = circuit.assemble_ac(x_op, 2.0 * np.pi * f)
        try:
            xs[k] = np.linalg.solve(sys.A, sys.z)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"singular AC system at {f:g} Hz: {exc}") from exc
    return xs


def _sweep_affine(circuit: Circuit, freqs: np.ndarray,
                  x_op: np.ndarray) -> np.ndarray:
    """Batched sweep for omega-affine stamps: assemble once, solve all.

    Every built-in stamp_ac is affine in omega — Re(A) holds the
    conductances (omega-independent), Im(A) the susceptances (proportional
    to omega) and the excitation z is constant — so the whole sweep is
    A(w) = Re(A0) + 1j * (w / w0) * Im(A0) from a single assembly at w0,
    followed by one LAPACK-batched solve.
    """
    w0 = 2.0 * np.pi * freqs[0]
    sys0 = circuit.assemble_ac(x_op, w0)
    scale = (2.0 * np.pi * freqs) / w0
    a = sys0.A.real[None, :, :] + 1j * scale[:, None, None] * sys0.A.imag
    b = np.broadcast_to(sys0.z, (freqs.size, circuit.size))[..., None]
    try:
        return np.linalg.solve(a, b)[..., 0]
    except np.linalg.LinAlgError:
        # Re-run the scalar loop to name the offending frequency.
        return _sweep_loop(circuit, freqs, x_op)


def ac_analysis(circuit: Circuit, freqs: np.ndarray,
                x_op: np.ndarray | OPResult | None = None) -> ACResult:
    """Sweep the linearized circuit over ``freqs`` (Hz).

    The small-signal excitation is every source's ``ac`` magnitude; set
    ``ac=1`` on exactly one source for a transfer function.

    When every element declares ``ac_affine`` (the default, true for all
    built-ins), the sweep assembles one system and solves all frequencies
    in a single batched call; any element with ``ac_affine = False`` drops
    the whole sweep back to per-frequency assembly.
    """
    freqs = np.asarray(freqs, dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise AnalysisError("AC frequencies must be positive and non-empty")
    if x_op is None:
        x_op = operating_point(circuit).x
    elif isinstance(x_op, OPResult):
        x_op = x_op.x
    affine = all(getattr(e, "ac_affine", False) for e in circuit.elements)
    if affine and freqs.size > 1:
        xs = _sweep_affine(circuit, freqs, x_op)
    else:
        xs = _sweep_loop(circuit, freqs, x_op)
    return ACResult(circuit, freqs, xs)
