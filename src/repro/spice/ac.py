"""AC small-signal analysis."""

from __future__ import annotations

import numpy as np

from repro.spice.dc import operating_point
from repro.spice.exceptions import AnalysisError
from repro.spice.netlist import Circuit
from repro.spice.results import ACResult, OPResult


def logspace_frequencies(f_start: float, f_stop: float,
                         points_per_decade: int = 10) -> np.ndarray:
    """Logarithmic frequency grid, SPICE ``.ac dec`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise AnalysisError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)


def ac_analysis(circuit: Circuit, freqs: np.ndarray,
                x_op: np.ndarray | OPResult | None = None) -> ACResult:
    """Sweep the linearized circuit over ``freqs`` (Hz).

    The small-signal excitation is every source's ``ac`` magnitude; set
    ``ac=1`` on exactly one source for a transfer function.
    """
    freqs = np.asarray(freqs, dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise AnalysisError("AC frequencies must be positive and non-empty")
    if x_op is None:
        x_op = operating_point(circuit).x
    elif isinstance(x_op, OPResult):
        x_op = x_op.x
    xs = np.empty((freqs.size, circuit.size), dtype=complex)
    for k, f in enumerate(freqs):
        sys = circuit.assemble_ac(x_op, 2.0 * np.pi * f)
        try:
            xs[k] = np.linalg.solve(sys.A, sys.z)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"singular AC system at {f:g} Hz: {exc}") from exc
    return ACResult(circuit, freqs, xs)
