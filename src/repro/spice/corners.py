"""Process corners for the generic 180 nm model cards.

Classic five-corner set: TT (typical), FF/SS (both devices fast/slow), and
the skewed FS/SF corners.  "Fast" means lower |VTO| and higher mobility —
the usual first-order digital/analog corner semantics.

The corner magnitudes are representative (|dVTO| = 50 mV, dKP = +-15 %),
matching the spread a generic 180 nm PDK quotes between SS and FF.
"""

from __future__ import annotations

from dataclasses import replace

from repro.spice.models import MosfetModel, NMOS_180, PMOS_180

DVTO = 0.05     # corner threshold shift [V]
KP_FAST = 1.15  # fast-corner mobility multiplier
KP_SLOW = 0.85

CORNER_NAMES = ("tt", "ff", "ss", "fs", "sf")


def _fast(model: MosfetModel) -> MosfetModel:
    return replace(model, name=model.name + "_f",
                   vto=model.vto - DVTO, kp=model.kp * KP_FAST)


def _slow(model: MosfetModel) -> MosfetModel:
    return replace(model, name=model.name + "_s",
                   vto=model.vto + DVTO, kp=model.kp * KP_SLOW)


def corner_models(corner: str,
                  nmos: MosfetModel = NMOS_180,
                  pmos: MosfetModel = PMOS_180
                  ) -> tuple[MosfetModel, MosfetModel]:
    """Return the (nmos, pmos) model pair for a named corner.

    ``corner`` is one of ``tt``, ``ff``, ``ss``, ``fs`` (fast N / slow P),
    ``sf`` (slow N / fast P); case-insensitive.
    """
    corner = corner.lower()
    if corner == "tt":
        return nmos, pmos
    if corner == "ff":
        return _fast(nmos), _fast(pmos)
    if corner == "ss":
        return _slow(nmos), _slow(pmos)
    if corner == "fs":
        return _fast(nmos), _slow(pmos)
    if corner == "sf":
        return _slow(nmos), _fast(pmos)
    raise ValueError(f"unknown corner {corner!r}; options: {CORNER_NAMES}")
