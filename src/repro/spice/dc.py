"""DC operating point and DC sweep.

Newton-Raphson over the MNA companion formulation, with the standard SPICE
rescue ladder when plain Newton fails:

1. plain Newton from the supplied (or zero) initial guess,
2. gmin stepping: converge with a large diagonal gmin, then relax it decade
   by decade, warm-starting each stage,
3. source stepping: ramp all independent sources from 0 to 100 %.
"""

from __future__ import annotations

import numpy as np

from repro.spice.elements import CurrentSource, VoltageSource
from repro.spice.exceptions import AnalysisError, ConvergenceError
from repro.spice.mna import StampContext
from repro.spice.netlist import Circuit
from repro.spice.results import OPResult, SweepResult
from repro.spice.waveforms import DCWave

# Newton controls (SPICE-like defaults).
MAX_ITER = 120
VNTOL = 1e-9
RELTOL = 1e-6
DV_MAX = 1.0  # per-iteration voltage step clamp [V]


def _newton(circuit: Circuit, x0: np.ndarray, ctx: StampContext,
            max_iter: int = MAX_ITER) -> tuple[np.ndarray, int]:
    """Damped Newton iteration; returns (solution, iterations).

    Raises :class:`ConvergenceError` on failure and :class:`AnalysisError`
    on a structurally singular system.
    """
    x = x0.copy()
    n_nodes = circuit.n_nodes
    for it in range(1, max_iter + 1):
        sys = circuit.assemble(x, ctx)
        try:
            x_new = np.linalg.solve(sys.A, sys.z)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"singular MNA matrix: {exc}") from exc
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError("non-finite Newton update")
        if not circuit.is_nonlinear:
            return x_new, it
        delta = x_new - x
        # Clamp node-voltage updates only (branch currents are free).
        dv = delta[:n_nodes]
        max_dv = np.max(np.abs(dv)) if n_nodes else 0.0
        if max_dv > DV_MAX:
            delta[:n_nodes] *= DV_MAX / max_dv
        x = x + delta
        converged = max_dv <= VNTOL + RELTOL * max(1.0, float(np.max(np.abs(x[:n_nodes])))) \
            if n_nodes else True
        # Only accept if the step was not clamped this iteration.
        if converged and np.max(np.abs(x_new - x)) < 1e-30 + VNTOL:
            return x, it
    raise ConvergenceError(
        f"Newton failed to converge in {max_iter} iterations "
        f"(circuit {circuit.title!r})"
    )


def operating_point(circuit: Circuit, x0: np.ndarray | None = None,
                    gmin: float = 1e-12) -> OPResult:
    """Solve the DC operating point with homotopy fallbacks."""
    if circuit.size == 0:
        raise AnalysisError("empty circuit")
    guess = np.zeros(circuit.size) if x0 is None else np.asarray(x0, dtype=float).copy()
    if guess.shape != (circuit.size,):
        raise AnalysisError(
            f"initial guess has shape {guess.shape}, expected ({circuit.size},)"
        )

    # 1. plain Newton
    try:
        x, it = _newton(circuit, guess, StampContext(analysis="dc", gmin=gmin))
        return OPResult(circuit, x, it, strategy="newton")
    except ConvergenceError:
        pass

    # 2. gmin stepping
    x = guess.copy()
    try:
        total_it = 0
        for g in (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-10, gmin):
            x, it = _newton(circuit, x, StampContext(analysis="dc", gmin=g))
            total_it += it
        return OPResult(circuit, x, total_it, strategy="gmin-stepping")
    except ConvergenceError:
        pass

    # 3. adaptive source stepping: ramp sources 0 -> 1, halving the step on
    # failure (down to a floor), always warm-starting from the last success.
    x = np.zeros(circuit.size)
    x_good = x.copy()
    scale = 0.0
    step = 0.1
    total_it = 0
    while scale < 1.0:
        trial = min(1.0, scale + step)
        try:
            x, it = _newton(
                circuit, x_good,
                StampContext(analysis="dc", gmin=gmin, source_scale=trial),
            )
            total_it += it
            x_good = x
            scale = trial
            step = min(step * 2.0, 0.2)
        except ConvergenceError:
            step *= 0.5
            if step < 1e-4:
                raise ConvergenceError(
                    f"operating point failed for circuit {circuit.title!r} "
                    "(newton, gmin stepping and source stepping all failed)"
                ) from None
    return OPResult(circuit, x_good, total_it, strategy="source-stepping")


def dc_sweep(circuit: Circuit, source_name: str, values: np.ndarray,
             x0: np.ndarray | None = None) -> SweepResult:
    """Sweep the DC value of an independent source, warm-starting each point.

    The source's waveform is restored afterwards.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("empty sweep")
    elem = circuit[source_name]
    if not isinstance(elem, VoltageSource | CurrentSource):
        raise AnalysisError(f"{source_name!r} is not an independent source")
    saved = elem.waveform
    xs = np.empty((values.size, circuit.size))
    guess = x0
    try:
        for k, value in enumerate(values):
            elem.waveform = DCWave(float(value))
            op = operating_point(circuit, x0=guess)
            xs[k] = op.x
            guess = op.x
    finally:
        elem.waveform = saved
    return SweepResult(circuit, values, xs)
