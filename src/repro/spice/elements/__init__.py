"""Circuit elements with MNA stamps for DC, transient, AC, and noise."""

from repro.spice.elements.base import Element, NoiseSource
from repro.spice.elements.controlled import VCCS, VCVS
from repro.spice.elements.diode import Diode
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.passives import Capacitor, Inductor, Resistor
from repro.spice.elements.sources import CurrentSource, VoltageSource

__all__ = [
    "Element",
    "NoiseSource",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
]
