"""Element base class and shared companion-model helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.spice.mna import MNASystem, StampContext


@dataclass
class NoiseSource:
    """A current-noise injection between two (bound) node indices.

    ``psd(f)`` returns the one-sided current PSD in A^2/Hz.  The label keeps
    per-device noise breakdowns readable in analysis results.
    """

    node_a: int
    node_b: int
    psd: Callable[[float], float]
    label: str


class Element:
    """Base circuit element.

    Life cycle: the element is created with *node names*; the circuit binds
    it (:meth:`bind`) to integer node indices and a branch-current offset
    before any analysis runs.
    """

    n_branches = 0
    is_nonlinear = False
    # The element's stamp_ac is affine in omega: Re(A) omega-independent,
    # Im(A) proportional to omega, RHS constant.  True for every built-in
    # element; an exotic element (lossy line, frequency-dependent model)
    # must set False so ac_analysis falls back to per-frequency assembly.
    ac_affine = True

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        self.name = name
        self.node_names = tuple(str(n) for n in nodes)
        self.nodes: tuple[int, ...] = ()
        self.branch_start = -1

    def bind(self, node_indices: tuple[int, ...], branch_start: int) -> None:
        """Attach resolved node indices / branch offset (called by Circuit)."""
        self.nodes = tuple(node_indices)
        self.branch_start = branch_start

    # -- stamping interface -------------------------------------------------
    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        """Stamp the DC/transient (real) companion model at iterate ``x``."""
        raise NotImplementedError

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        """Stamp the small-signal complex model linearized at ``x_op``."""
        raise NotImplementedError

    # -- transient state ----------------------------------------------------
    def init_state(self, x: np.ndarray) -> None:
        """Initialize reactive state from a DC solution (start of transient)."""

    def update_state(self, x: np.ndarray, ctx: StampContext) -> None:
        """Commit reactive state after an accepted timestep."""

    # -- reporting ----------------------------------------------------------
    def op_info(self, x: np.ndarray) -> dict[str, float]:
        """Operating-point details (currents, conductances) for reports."""
        return {}

    def noise_sources(self, x_op: np.ndarray) -> list[NoiseSource]:
        """Noise injections evaluated at the operating point."""
        return []

    # -- helpers ------------------------------------------------------------
    def _v(self, x: np.ndarray, terminal: int) -> float:
        """Voltage of the element's ``terminal``-th node under solution x."""
        idx = self.nodes[terminal]
        return 0.0 if idx < 0 else float(x[idx])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r}, nodes={self.node_names})"


class ReactiveTwoTerminalState:
    """Companion-model state shared by capacitors (and MOSFET internal caps).

    Tracks the previous branch voltage and current so backward-Euler and
    trapezoidal integration can form ``i = geq * v - ieq``.
    """

    __slots__ = ("v_prev", "i_prev")

    def __init__(self) -> None:
        self.v_prev = 0.0
        self.i_prev = 0.0

    def companion(self, c: float, ctx: StampContext) -> tuple[float, float]:
        """Return ``(geq, ieq)`` for capacitance ``c`` at the current step."""
        if ctx.dt is None or ctx.dt <= 0:
            raise ValueError("transient stamp requires a positive dt")
        if ctx.integ == "be":
            geq = c / ctx.dt
            ieq = geq * self.v_prev
        else:  # trapezoidal
            geq = 2.0 * c / ctx.dt
            ieq = geq * self.v_prev + self.i_prev
        return geq, ieq

    def commit(self, c: float, v_new: float, ctx: StampContext) -> None:
        """Update state after the step at voltage ``v_new`` is accepted."""
        geq, ieq = self.companion(c, ctx)
        i_new = geq * v_new - ieq
        self.v_prev = v_new
        self.i_prev = i_new

    def reset(self, v: float) -> None:
        self.v_prev = v
        self.i_prev = 0.0
