"""Linear controlled sources: VCVS (E) and VCCS (G)."""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element
from repro.spice.mna import MNASystem, StampContext


class VCCS(Element):
    """Voltage-controlled current source.

    Current ``gm * (v(cp) - v(cn))`` flows from ``pos`` through the source
    into ``neg``.
    """

    def __init__(self, name: str, pos: str, neg: str, cpos: str, cneg: str,
                 gm: float) -> None:
        super().__init__(name, (pos, neg, cpos, cneg))
        self.gm = float(gm)

    def _stamp_core(self, sys: MNASystem) -> None:
        a, b, c, d = self.nodes
        sys.add_a(a, c, self.gm)
        sys.add_a(a, d, -self.gm)
        sys.add_a(b, c, -self.gm)
        sys.add_a(b, d, self.gm)

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x, ctx
        self._stamp_core(sys)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op, omega
        self._stamp_core(sys)


class VCVS(Element):
    """Voltage-controlled voltage source: ``v(pos) - v(neg) = mu * v(ctrl)``."""

    n_branches = 1

    def __init__(self, name: str, pos: str, neg: str, cpos: str, cneg: str,
                 mu: float) -> None:
        super().__init__(name, (pos, neg, cpos, cneg))
        self.mu = float(mu)

    def _stamp_core(self, sys: MNASystem) -> None:
        a, b, c, d = self.nodes
        br = self.branch_start
        sys.add_a(a, br, 1.0)
        sys.add_a(b, br, -1.0)
        sys.add_a(br, a, 1.0)
        sys.add_a(br, b, -1.0)
        sys.add_a(br, c, -self.mu)
        sys.add_a(br, d, self.mu)

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x, ctx
        self._stamp_core(sys)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op, omega
        self._stamp_core(sys)

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        return {"i": float(np.real(x[self.branch_start]))}
