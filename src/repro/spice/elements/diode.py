"""Junction diode element (Newton companion model)."""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element, ReactiveTwoTerminalState
from repro.spice.mna import MNASystem, StampContext
from repro.spice.models import DEFAULT_DIODE, DiodeModel


class Diode(Element):
    """Exponential diode from anode to cathode."""

    is_nonlinear = True

    def __init__(self, name: str, anode: str, cathode: str,
                 model: DiodeModel = DEFAULT_DIODE, area: float = 1.0) -> None:
        super().__init__(name, (anode, cathode))
        if area <= 0:
            raise ValueError(f"diode {name}: area must be positive")
        self.model = model
        self.area = float(area)
        self._cap_state = ReactiveTwoTerminalState()

    def _eval(self, x: np.ndarray) -> tuple[float, float, float]:
        v = self._v(x, 0) - self._v(x, 1)
        i, g = self.model.evaluate(v)
        return v, i * self.area, g * self.area

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        a, b = self.nodes
        v, i, g = self._eval(x)
        # Linearized: i(v) ~= i0 + g (v - v0); the constant part goes to RHS.
        ieq = i - g * v
        sys.stamp_conductance(a, b, g)
        sys.add_z(a, -ieq)
        sys.add_z(b, ieq)
        if ctx.analysis == "tran" and self.model.cj0 > 0:
            c = self.model.cj0 * self.area
            geq, ceq = self._cap_state.companion(c, ctx)
            sys.stamp_conductance(a, b, geq)
            sys.add_z(a, ceq)
            sys.add_z(b, -ceq)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        _v, _i, g = self._eval(x_op)
        y = g + 1j * omega * self.model.cj0 * self.area
        sys.stamp_conductance(self.nodes[0], self.nodes[1], y)

    def init_state(self, x: np.ndarray) -> None:
        self._cap_state.reset(self._v(x, 0) - self._v(x, 1))

    def update_state(self, x: np.ndarray, ctx: StampContext) -> None:
        if self.model.cj0 > 0:
            c = self.model.cj0 * self.area
            self._cap_state.commit(c, self._v(x, 0) - self._v(x, 1), ctx)

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        v, i, g = self._eval(x)
        return {"v": v, "i": i, "g": g}
