"""MOSFET element wrapping :class:`repro.spice.models.MosfetModel`.

Terminals are ordered ``(d, g, s, b)``.  The ``m`` multiplier models ``m``
identical devices in parallel (currents and capacitances scale by ``m``),
matching the N1..N3 multiplier design parameters in the paper's circuits.
"""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element, NoiseSource, ReactiveTwoTerminalState
from repro.spice.mna import MNASystem, StampContext
from repro.spice.models import MosfetModel

# Terminal indices within self.nodes.
_D, _G, _S, _B = 0, 1, 2, 3


class Mosfet(Element):
    """Four-terminal MOSFET with EKV DC model and fixed Meyer capacitances."""

    is_nonlinear = True

    def __init__(self, name: str, d: str, g: str, s: str, b: str,
                 model: MosfetModel, w: float, l: float, m: int = 1) -> None:
        super().__init__(name, (d, g, s, b))
        if w <= 0 or l <= 0:
            raise ValueError(f"mosfet {name}: W and L must be positive")
        if m < 1:
            raise ValueError(f"mosfet {name}: multiplier must be >= 1")
        self.model = model
        self.w = float(w)
        self.l = float(l)
        self.m = int(m)
        caps = model.capacitances(self.w, self.l)
        self._caps = {key: value * self.m for key, value in caps.items()}
        # Internal capacitor companion states: (terminal_a, terminal_b, C).
        self._cap_edges = [
            (_G, _S, self._caps["cgs"]),
            (_G, _D, self._caps["cgd"]),
            (_D, _B, self._caps["cdb"]),
            (_S, _B, self._caps["csb"]),
        ]
        self._cap_states = [ReactiveTwoTerminalState() for _ in self._cap_edges]

    # -- DC / transient -----------------------------------------------------
    def _eval(self, x: np.ndarray) -> dict[str, float]:
        info = self.model.evaluate(
            vg=self._v(x, _G), vd=self._v(x, _D),
            vs=self._v(x, _S), vb=self._v(x, _B),
            w=self.w, l=self.l,
        )
        for key in ("id", "gm", "gds", "gms", "gmb"):
            info[key] *= self.m
        return info

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        info = self._eval(x)
        d, g, s, b = self.nodes
        terminals = (d, g, s, b)
        partials = (info["gds"], info["gm"], info["gms"], info["gmb"])
        volts = tuple(self._v(x, t) for t in range(4))
        # Channel current flows d -> s; linearize around the iterate.
        ieq = info["id"] - sum(gt * vt for gt, vt in zip(partials, volts))
        for col, gt in zip(terminals, partials):
            sys.add_a(d, col, gt)
            sys.add_a(s, col, -gt)
        sys.add_z(d, -ieq)
        sys.add_z(s, ieq)
        if ctx.analysis == "tran":
            for (ta, tb, c), state in zip(self._cap_edges, self._cap_states):
                geq, ceq = state.companion(c, ctx)
                na, nb = self.nodes[ta], self.nodes[tb]
                sys.stamp_conductance(na, nb, geq)
                sys.add_z(na, ceq)
                sys.add_z(nb, -ceq)

    # -- AC -------------------------------------------------------------------
    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        info = self._eval(x_op)
        d, g, s, b = self.nodes
        terminals = (d, g, s, b)
        partials = (info["gds"], info["gm"], info["gms"], info["gmb"])
        for col, gt in zip(terminals, partials):
            sys.add_a(d, col, gt)
            sys.add_a(s, col, -gt)
        for ta, tb, c in self._cap_edges:
            sys.stamp_conductance(self.nodes[ta], self.nodes[tb], 1j * omega * c)

    # -- transient state ------------------------------------------------------
    def init_state(self, x: np.ndarray) -> None:
        for (ta, tb, _c), state in zip(self._cap_edges, self._cap_states):
            state.reset(self._v(x, ta) - self._v(x, tb))

    def update_state(self, x: np.ndarray, ctx: StampContext) -> None:
        for (ta, tb, c), state in zip(self._cap_edges, self._cap_states):
            state.commit(c, self._v(x, ta) - self._v(x, tb), ctx)

    # -- reporting --------------------------------------------------------------
    def op_info(self, x: np.ndarray) -> dict[str, float]:
        info = self._eval(x)
        info["vgs"] = self._v(x, _G) - self._v(x, _S)
        info["vds"] = self._v(x, _D) - self._v(x, _S)
        info["vov"] = self.model.polarity * info["vgs"] - self.model.vto
        return info

    def noise_sources(self, x_op: np.ndarray) -> list[NoiseSource]:
        info = self._eval(x_op)
        gm = abs(info["gm"])
        drain_current = info["id"]
        d, s = self.nodes[_D], self.nodes[_S]
        model, w, l, m = self.model, self.w, self.l, self.m

        def thermal(f: float, _gm=gm) -> float:
            del f
            return model.thermal_noise_psd(_gm)

        def flicker(f: float, _i=abs(drain_current)) -> float:
            # m devices in parallel: PSD of the sum is m * per-device PSD,
            # and per-device current is i/m.
            if _i <= 0:
                return 0.0
            per_device = model.flicker_noise_psd(_i / m, w, l, f)
            return per_device * m

        return [
            NoiseSource(d, s, thermal, label=f"{self.name}:thermal"),
            NoiseSource(d, s, flicker, label=f"{self.name}:flicker"),
        ]
