"""Passive elements: resistor, capacitor, inductor.

Branch convention: ``self.branch_start`` (set by ``Circuit.bind``) is the
*absolute* row/column index of the element's first branch current in the MNA
system and in solution vectors.
"""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element, NoiseSource, ReactiveTwoTerminalState
from repro.spice.mna import MNASystem, StampContext
from repro.spice.models import BOLTZMANN, ROOM_TEMP


class Resistor(Element):
    """Linear resistor with thermal noise ``4kT/R``."""

    def __init__(self, name: str, a: str, b: str, resistance: float,
                 temp: float = ROOM_TEMP) -> None:
        super().__init__(name, (a, b))
        if resistance <= 0:
            raise ValueError(f"resistor {name}: resistance must be positive")
        self.resistance = float(resistance)
        self.temp = temp

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x, ctx
        sys.stamp_conductance(self.nodes[0], self.nodes[1], self.conductance)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op, omega
        sys.stamp_conductance(self.nodes[0], self.nodes[1], self.conductance)

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        v = self._v(x, 0) - self._v(x, 1)
        return {"v": v, "i": v * self.conductance, "p": v * v * self.conductance}

    def noise_sources(self, x_op: np.ndarray) -> list[NoiseSource]:
        del x_op
        psd = 4.0 * BOLTZMANN * self.temp * self.conductance
        return [
            NoiseSource(self.nodes[0], self.nodes[1], lambda f, _p=psd: _p,
                        label=f"{self.name}:thermal")
        ]


class Capacitor(Element):
    """Linear capacitor: open in DC, companion model in transient."""

    def __init__(self, name: str, a: str, b: str, capacitance: float,
                 ic: float | None = None) -> None:
        super().__init__(name, (a, b))
        if capacitance <= 0:
            raise ValueError(f"capacitor {name}: capacitance must be positive")
        self.capacitance = float(capacitance)
        self.ic = ic
        self._state = ReactiveTwoTerminalState()

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x
        if ctx.analysis != "tran":
            return  # open circuit in DC
        geq, ieq = self._state.companion(self.capacitance, ctx)
        a, b = self.nodes
        sys.stamp_conductance(a, b, geq)
        # ieq is injected so that i = geq*v - ieq: current ieq flows b -> a.
        sys.add_z(a, ieq)
        sys.add_z(b, -ieq)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op
        sys.stamp_conductance(self.nodes[0], self.nodes[1],
                              1j * omega * self.capacitance)

    def init_state(self, x: np.ndarray) -> None:
        v = self.ic if self.ic is not None else self._v(x, 0) - self._v(x, 1)
        self._state.reset(v)

    def update_state(self, x: np.ndarray, ctx: StampContext) -> None:
        v_new = self._v(x, 0) - self._v(x, 1)
        self._state.commit(self.capacitance, v_new, ctx)

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        return {"v": self._v(x, 0) - self._v(x, 1)}


class Inductor(Element):
    """Linear inductor: a branch element, ideal short in DC."""

    n_branches = 1

    def __init__(self, name: str, a: str, b: str, inductance: float,
                 ic: float | None = None) -> None:
        super().__init__(name, (a, b))
        if inductance <= 0:
            raise ValueError(f"inductor {name}: inductance must be positive")
        self.inductance = float(inductance)
        self.ic = ic
        self._i_prev = 0.0
        self._v_prev = 0.0

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x
        a, b = self.nodes
        br = self.branch_start
        sys.add_a(a, br, 1.0)
        sys.add_a(b, br, -1.0)
        sys.add_a(br, a, 1.0)
        sys.add_a(br, b, -1.0)
        if ctx.analysis != "tran":
            return  # DC: branch equation v(a) - v(b) = 0
        if ctx.dt is None or ctx.dt <= 0:
            raise ValueError("transient stamp requires a positive dt")
        if ctx.integ == "be":
            req = self.inductance / ctx.dt
            rhs = -req * self._i_prev
        else:  # trapezoidal: v_new - (2L/dt) i_new = -(2L/dt) i_prev - v_prev
            req = 2.0 * self.inductance / ctx.dt
            rhs = -req * self._i_prev - self._v_prev
        sys.add_a(br, br, -req)
        sys.add_z(br, rhs)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op
        a, b = self.nodes
        br = self.branch_start
        sys.add_a(a, br, 1.0)
        sys.add_a(b, br, -1.0)
        sys.add_a(br, a, 1.0)
        sys.add_a(br, b, -1.0)
        sys.add_a(br, br, -1j * omega * self.inductance)

    def init_state(self, x: np.ndarray) -> None:
        self._i_prev = self.ic if self.ic is not None else float(x[self.branch_start])
        self._v_prev = 0.0

    def update_state(self, x: np.ndarray, ctx: StampContext) -> None:
        del ctx
        self._i_prev = float(x[self.branch_start])
        self._v_prev = self._v(x, 0) - self._v(x, 1)

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        return {"i": float(x[self.branch_start])}
