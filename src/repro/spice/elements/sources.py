"""Independent voltage and current sources with DC/AC/transient behaviour."""

from __future__ import annotations

import numpy as np

from repro.spice.elements.base import Element
from repro.spice.mna import MNASystem, StampContext
from repro.spice.waveforms import Waveform, as_waveform


class VoltageSource(Element):
    """Independent voltage source (branch element).

    Positive branch current flows from the ``+`` node through the source to
    the ``-`` node, so a supply sourcing current into the circuit reports a
    *negative* branch current (SPICE convention).

    ``value`` may be a number (DC) or a :class:`~repro.spice.waveforms.Waveform`;
    ``ac`` is the small-signal magnitude used by AC/noise analyses.
    """

    n_branches = 1

    def __init__(self, name: str, pos: str, neg: str,
                 value: float | Waveform = 0.0, ac: float = 0.0) -> None:
        super().__init__(name, (pos, neg))
        self.waveform = as_waveform(value)
        self.ac = float(ac)

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x
        a, b = self.nodes
        br = self.branch_start
        sys.add_a(a, br, 1.0)
        sys.add_a(b, br, -1.0)
        sys.add_a(br, a, 1.0)
        sys.add_a(br, b, -1.0)
        value = self.waveform.value(ctx.time) * ctx.source_scale
        sys.add_z(br, value)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op, omega
        a, b = self.nodes
        br = self.branch_start
        sys.add_a(a, br, 1.0)
        sys.add_a(b, br, -1.0)
        sys.add_a(br, a, 1.0)
        sys.add_a(br, b, -1.0)
        sys.add_z(br, self.ac)

    def branch_current(self, x: np.ndarray) -> float:
        """Branch current from the solution vector."""
        return float(np.real(x[self.branch_start]))

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        i = self.branch_current(x)
        v = self._v(x, 0) - self._v(x, 1)
        return {"v": v, "i": i, "p": v * i}


class CurrentSource(Element):
    """Independent current source: positive current flows from the ``+``
    node through the source into the ``-`` node."""

    def __init__(self, name: str, pos: str, neg: str,
                 value: float | Waveform = 0.0, ac: float = 0.0) -> None:
        super().__init__(name, (pos, neg))
        self.waveform = as_waveform(value)
        self.ac = float(ac)

    def stamp(self, sys: MNASystem, x: np.ndarray, ctx: StampContext) -> None:
        del x
        value = self.waveform.value(ctx.time) * ctx.source_scale
        sys.stamp_current(self.nodes[0], self.nodes[1], value)

    def stamp_ac(self, sys: MNASystem, x_op: np.ndarray, omega: float) -> None:
        del x_op, omega
        sys.stamp_current(self.nodes[0], self.nodes[1], self.ac)

    def op_info(self, x: np.ndarray) -> dict[str, float]:
        v = self._v(x, 0) - self._v(x, 1)
        i = self.waveform.dc_value()
        return {"v": v, "i": i, "p": v * i}
