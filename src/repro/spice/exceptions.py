"""Exception hierarchy for the circuit simulator."""

from __future__ import annotations


class SpiceError(Exception):
    """Base class for all simulator errors."""


class NetlistError(SpiceError):
    """Raised for malformed netlists (bad nodes, duplicate names, ...)."""


class ConvergenceError(SpiceError):
    """Raised when Newton iteration fails to converge after all homotopy
    fallbacks (gmin stepping, source stepping, step halving)."""


class AnalysisError(SpiceError):
    """Raised for invalid analysis requests (empty sweep, bad output node,
    singular linear systems in a linear analysis, ...)."""
