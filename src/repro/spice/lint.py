"""Deprecated shim — the netlist lint moved to :mod:`repro.analysis.erc`.

This module kept an undeclared :mod:`networkx` dependency alive; the
checks now run on an in-tree union-find and emit structured
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  The two legacy
entry points re-export unchanged (same signatures, same message strings):

* :func:`lint_circuit` — list of human-readable warning strings;
* :func:`assert_clean` — raises :class:`~repro.spice.exceptions.NetlistError`.

New code should import from :mod:`repro.analysis.erc` (or use
``ma-opt lint`` on the command line), which additionally exposes rule ids,
severities, and device-level checks.
"""

from __future__ import annotations

import warnings

from repro.analysis.erc import assert_clean, lint_circuit, run_erc

warnings.warn(
    "repro.spice.lint is deprecated; import lint_circuit/assert_clean/"
    "run_erc from repro.analysis.erc instead",
    DeprecationWarning, stacklevel=2)

__all__ = ["lint_circuit", "assert_clean", "run_erc"]
