"""Netlist sanity checks (topology lint).

Catches the classic "matrix is singular and I don't know why" mistakes
before any analysis runs:

* no ground reference anywhere,
* floating nodes (touched by fewer than two element terminals),
* nodes with no DC path to ground (capacitor-isolated islands),
* loops of ideal voltage sources (including through inductors, which are
  DC shorts).

Returns human-readable warning strings; :func:`assert_clean` raises
instead.  Uses :mod:`networkx` for the graph work.
"""

from __future__ import annotations

import networkx as nx

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    VoltageSource,
)
from repro.spice.exceptions import NetlistError
from repro.spice.netlist import Circuit

GROUND = "0"


def _canonical_nodes(circuit: Circuit, element) -> list[str]:
    return [circuit._canon(n) for n in element.node_names]


def lint_circuit(circuit: Circuit) -> list[str]:
    """Run all checks; returns a list of warnings (empty = clean)."""
    warnings: list[str] = []
    if not circuit.elements:
        return ["circuit has no elements"]

    # -- ground reference ---------------------------------------------------
    all_nodes: set[str] = set()
    touch_count: dict[str, int] = {}
    for elem in circuit.elements:
        for node in _canonical_nodes(circuit, elem):
            all_nodes.add(node)
            touch_count[node] = touch_count.get(node, 0) + 1
    if GROUND not in all_nodes:
        warnings.append("no ground reference ('0'/'gnd') in the circuit")

    # -- floating nodes ------------------------------------------------------
    for node, count in sorted(touch_count.items()):
        if node != GROUND and count < 2:
            warnings.append(f"node {node!r} is floating "
                            f"(touched by only {count} terminal)")

    # -- DC path to ground ----------------------------------------------------
    # Capacitors (and current sources) provide no DC path.
    dc_graph = nx.Graph()
    dc_graph.add_nodes_from(all_nodes)
    for elem in circuit.elements:
        if isinstance(elem, Capacitor | CurrentSource):
            continue
        nodes = _canonical_nodes(circuit, elem)
        # Conservative: treat every element as connecting all its terminals
        # for DC purposes (true for R/L/V/E/G; MOSFETs conduct d-s and the
        # gate is handled below).
        from repro.spice.elements import Mosfet

        if isinstance(elem, Mosfet):
            d, g, s, b = nodes
            dc_graph.add_edge(d, s)
            dc_graph.add_edge(s, b)
            # The gate is DC-isolated; do not add an edge for it.
            continue
        for a, b_ in zip(nodes, nodes[1:]):
            dc_graph.add_edge(a, b_)
    if GROUND in dc_graph:
        reachable = nx.node_connected_component(dc_graph, GROUND)
        for node in sorted(all_nodes - reachable):
            warnings.append(f"node {node!r} has no DC path to ground")

    # -- voltage-source loops ---------------------------------------------------
    v_graph = nx.MultiGraph()
    for elem in circuit.elements:
        if isinstance(elem, VoltageSource | Inductor):
            a, b = _canonical_nodes(circuit, elem)
            v_graph.add_edge(a, b, name=elem.name)
    try:
        cycle = nx.find_cycle(v_graph)
    except nx.NetworkXNoCycle:
        cycle = None
    if cycle:
        names = [v_graph.get_edge_data(u, v)[k]["name"] for u, v, k in cycle]
        warnings.append(
            "loop of ideal voltage sources/inductors: " + ", ".join(names))
    return warnings


def assert_clean(circuit: Circuit) -> None:
    """Raise :class:`NetlistError` listing every lint warning, if any."""
    warnings = lint_circuit(circuit)
    if warnings:
        raise NetlistError("netlist lint failed:\n  " + "\n  ".join(warnings))
