"""Measurement helpers: turn raw analysis results into circuit metrics.

These mirror the ``.measure`` statements an analog designer would write in
an HSpice deck (gain, unity-gain frequency, phase margin, settling time...).
All functions are pure and operate on numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.spice.exceptions import AnalysisError


def db(x: np.ndarray | float) -> np.ndarray | float:
    """Magnitude in decibels (20 log10 |x|), floored to avoid -inf."""
    mag = np.abs(x)
    return 20.0 * np.log10(np.maximum(mag, 1e-30))


def phase_deg(h: np.ndarray) -> np.ndarray:
    """Unwrapped phase in degrees."""
    return np.degrees(np.unwrap(np.angle(h)))


def gain_at(freqs: np.ndarray, h: np.ndarray, f: float) -> complex:
    """Complex transfer value at ``f`` by log-frequency interpolation."""
    freqs = np.asarray(freqs, dtype=float)
    if f < freqs[0] or f > freqs[-1]:
        raise AnalysisError(f"frequency {f:g} outside analysis range")
    lf = np.log10(freqs)
    re = np.interp(np.log10(f), lf, np.real(h))
    im = np.interp(np.log10(f), lf, np.imag(h))
    return complex(re, im)


def dc_gain(h: np.ndarray) -> float:
    """Low-frequency gain magnitude (first sweep point)."""
    return float(np.abs(h[0]))


def unity_gain_frequency(freqs: np.ndarray, h: np.ndarray) -> float | None:
    """First frequency where |H| crosses 1 from above (None if it never does)."""
    mag = np.abs(np.asarray(h))
    freqs = np.asarray(freqs, dtype=float)
    above = mag >= 1.0
    if not above[0]:
        return None  # gain below unity from the start
    crossings = np.nonzero(above[:-1] & ~above[1:])[0]
    if crossings.size == 0:
        return None
    i = int(crossings[0])
    # log-log interpolation between points i and i+1
    lm0, lm1 = np.log10(mag[i]), np.log10(max(mag[i + 1], 1e-30))
    lf0, lf1 = np.log10(freqs[i]), np.log10(freqs[i + 1])
    frac = lm0 / (lm0 - lm1) if lm0 != lm1 else 0.5
    return float(10.0 ** (lf0 + frac * (lf1 - lf0)))


def phase_margin(freqs: np.ndarray, h: np.ndarray) -> float | None:
    """Phase margin in degrees at the unity-gain crossover.

    Assumes ``h`` is the loop (or open-loop) gain with low-frequency phase
    near 0 or 180 degrees; the returned margin is ``180 + phase(f_ugf)``
    after normalizing the low-frequency phase to 0.
    """
    fu = unity_gain_frequency(freqs, h)
    if fu is None:
        return None
    ph = phase_deg(np.asarray(h))
    # Normalize so the low-frequency phase is ~0 (inverting outputs read 180).
    ph = ph - np.round(ph[0] / 360.0) * 360.0
    if abs(ph[0]) > 90.0:
        ph = ph - np.sign(ph[0]) * 180.0
    lf = np.log10(np.asarray(freqs, dtype=float))
    ph_u = float(np.interp(np.log10(fu), lf, ph))
    return 180.0 + ph_u


def gain_margin(freqs: np.ndarray, h: np.ndarray) -> float | None:
    """Gain margin in dB: ``-20 log10 |H|`` at the -180 deg phase crossing
    (after normalizing the low-frequency phase to ~0, as in
    :func:`phase_margin`).  None when the phase never reaches -180 in range.
    """
    freqs = np.asarray(freqs, dtype=float)
    ph = phase_deg(np.asarray(h))
    ph = ph - np.round(ph[0] / 360.0) * 360.0
    if abs(ph[0]) > 90.0:
        ph = ph - np.sign(ph[0]) * 180.0
    below = ph <= -180.0
    if not np.any(below):
        return None
    i = int(np.argmax(below))
    if i == 0:
        return float(-db(np.abs(h[0])))
    # interpolate the crossing in log-frequency
    frac = (ph[i - 1] + 180.0) / (ph[i - 1] - ph[i])
    lf = np.log10(freqs)
    f_cross = 10.0 ** (lf[i - 1] + frac * (lf[i] - lf[i - 1]))
    mag = np.abs(gain_at(freqs, h, f_cross))
    return float(-db(mag))


def bandwidth_3db(freqs: np.ndarray, h: np.ndarray) -> float | None:
    """-3 dB bandwidth relative to the low-frequency gain."""
    mag = np.abs(np.asarray(h))
    target = mag[0] / np.sqrt(2.0)
    below = mag < target
    if not np.any(below):
        return None
    i = int(np.argmax(below))
    if i == 0:
        return float(freqs[0])
    lf = np.log10(np.asarray(freqs, dtype=float))
    m0, m1 = mag[i - 1], mag[i]
    frac = (m0 - target) / (m0 - m1) if m0 != m1 else 0.5
    return float(10.0 ** (lf[i - 1] + frac * (lf[i] - lf[i - 1])))


def settling_time(t: np.ndarray, y: np.ndarray, final_value: float | None = None,
                  tol: float = 0.01, t_start: float = 0.0) -> float | None:
    """Time after which ``y`` stays within ``tol`` (fractional, of the total
    step) of its final value.  Returns None if it never settles.

    ``t_start`` marks the stimulus edge; settling time is measured from it.
    """
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    if t.shape != y.shape or t.size < 2:
        raise AnalysisError("settling_time needs matching t/y arrays")
    if final_value is None:
        final_value = float(y[-1])
    y0 = float(np.interp(t_start, t, y))
    swing = abs(final_value - y0)
    band = tol * swing if swing > 0 else tol * max(abs(final_value), 1e-12)
    outside = np.abs(y - final_value) > band
    relevant = t >= t_start
    outside &= relevant
    if not np.any(outside):
        return 0.0
    last_out = int(np.nonzero(outside)[0][-1])
    if last_out + 1 >= t.size:
        return None  # still outside the band at the end of the window
    return float(t[last_out + 1] - t_start)


def overshoot(t: np.ndarray, y: np.ndarray, t_start: float = 0.0) -> float:
    """Fractional overshoot beyond the final value after ``t_start``."""
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    final = float(y[-1])
    y0 = float(np.interp(t_start, t, y))
    swing = final - y0
    if abs(swing) < 1e-15:
        return 0.0
    seg = y[t >= t_start]
    peak = np.max(seg) if swing > 0 else np.min(seg)
    return float(max(0.0, (peak - final) / swing))


def rise_time(t: np.ndarray, y: np.ndarray, lo: float = 0.1,
              hi: float = 0.9) -> float | None:
    """10-90 %% rise time of a monotone-ish step response."""
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    y0, y1 = float(y[0]), float(y[-1])
    if abs(y1 - y0) < 1e-15:
        return None
    norm = (y - y0) / (y1 - y0)
    above_lo = np.nonzero(norm >= lo)[0]
    above_hi = np.nonzero(norm >= hi)[0]
    if above_lo.size == 0 or above_hi.size == 0:
        return None
    return float(t[above_hi[0]] - t[above_lo[0]])
