"""Modified Nodal Analysis assembly: dense matrices plus a stamp context.

Conventions
-----------
* Node index ``-1`` is ground and is silently skipped by the stamping
  helpers; unknowns are the non-ground node voltages followed by the branch
  currents of voltage-defined elements.
* KCL rows express "sum of currents leaving the node through elements" on
  the left-hand side; independent current injections go to the RHS vector.
* A voltage source's branch current is defined flowing from its positive
  node through the source to its negative node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class MNASystem:
    """Dense MNA matrix ``A`` and right-hand side ``z`` with safe stamping."""

    def __init__(self, n_nodes: int, n_branches: int, complex_valued: bool = False):
        self.n_nodes = n_nodes
        self.n_branches = n_branches
        n = n_nodes + n_branches
        dtype = complex if complex_valued else float
        self.A = np.zeros((n, n), dtype=dtype)
        self.z = np.zeros(n, dtype=dtype)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def add_a(self, i: int, j: int, value) -> None:
        """Accumulate into ``A[i, j]``, ignoring ground (-1) indices."""
        if i >= 0 and j >= 0:
            self.A[i, j] += value

    def add_z(self, i: int, value) -> None:
        """Accumulate into ``z[i]``, ignoring ground (-1) indices."""
        if i >= 0:
            self.z[i] += value

    def stamp_conductance(self, a: int, b: int, g) -> None:
        """Two-terminal conductance between nodes ``a`` and ``b``."""
        self.add_a(a, a, g)
        self.add_a(b, b, g)
        self.add_a(a, b, -g)
        self.add_a(b, a, -g)

    def stamp_current(self, a: int, b: int, i) -> None:
        """Independent current ``i`` flowing from node ``a`` to node ``b``
        through the element (extracted from ``a``, injected into ``b``)."""
        self.add_z(a, -i)
        self.add_z(b, i)

    def branch_row(self, k: int) -> int:
        """Global row/column index of branch ``k``."""
        return self.n_nodes + k


@dataclass
class StampContext:
    """Per-analysis information passed to element stamps.

    Attributes
    ----------
    analysis: ``"dc"`` or ``"tran"`` (AC uses a dedicated stamp method).
    time: simulation time; ``None`` for DC.
    dt: current timestep (transient only).
    source_scale: homotopy scale in [0, 1] applied to independent sources.
    gmin: conductance added from every node to ground by the solver.
    integ: ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    """

    analysis: str = "dc"
    time: float | None = None
    dt: float | None = None
    source_scale: float = 1.0
    gmin: float = 1e-12
    integ: str = "trap"
