"""Device model cards and model equations.

The MOSFET model is a simplified EKV formulation chosen deliberately over
the classic SPICE level-1 square law: EKV's single interpolation function
covers weak/moderate/strong inversion and triode/saturation with a C1-smooth
expression, which keeps Newton-Raphson robust across the random sizings an
optimizer throws at the simulator.

Model equations (bulk-referenced, polarity-flipped so PMOS reuses the NMOS
math):

    vp  = (Vg - VTO) / n
    F(u) = ln(1 + exp(u / 2))^2          (EKV interpolation function)
    i_f = F((vp - Vs) / Ut),  i_r = F((vp - Vd) / Ut)
    Is  = 2 n KP (W/L) Ut^2
    Id  = Is (i_f - i_r) * (1 + lambda * |Vds|_smooth)

``lambda`` scales as ``lambda_l / L`` so short channels show strong channel-
length modulation, as in a real 180 nm process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

BOLTZMANN = 1.380649e-23
ELEMENTARY_CHARGE = 1.602176634e-19
ROOM_TEMP = 300.15
UT_ROOM = BOLTZMANN * ROOM_TEMP / ELEMENTARY_CHARGE  # ~25.9 mV
EPS_OX = 3.9 * 8.8541878128e-12  # F/m


def _softplus(u: float) -> float:
    """ln(1 + exp(u)) computed without overflow."""
    if u > 40.0:
        return u
    if u < -40.0:
        return np.exp(u)
    return float(np.log1p(np.exp(u)))


def _sigmoid(u: float) -> float:
    if u >= 0:
        return 1.0 / (1.0 + np.exp(-min(u, 60.0)))
    e = np.exp(max(u, -60.0))
    return e / (1.0 + e)


def ekv_f(u: float) -> float:
    """EKV interpolation function ``F(u) = ln(1+exp(u/2))^2``."""
    sp = _softplus(u / 2.0)
    return sp * sp


def ekv_f_prime(u: float) -> float:
    """Derivative ``F'(u) = ln(1+exp(u/2)) * sigmoid(u/2)``."""
    return _softplus(u / 2.0) * _sigmoid(u / 2.0)


@dataclass(frozen=True)
class MosfetModel:
    """An EKV-style MOSFET model card.

    Attributes
    ----------
    name: card name, e.g. ``"nmos180"``.
    polarity: +1 for NMOS, -1 for PMOS.
    vto: threshold voltage magnitude (positive for both polarities) [V].
    kp: transconductance parameter ``mu * Cox`` [A/V^2].
    n: subthreshold slope factor (dimensionless).
    lambda_l: channel-length-modulation coefficient; the per-device value is
        ``lambda_l / L`` [V^-1 * m].
    tox: oxide thickness [m] (sets intrinsic gate capacitance).
    cgso / cgdo: gate overlap capacitance per unit width [F/m].
    cjw: junction capacitance per unit width (drain/source to bulk) [F/m].
    gamma_noise: channel thermal-noise factor (2/3 in saturation).
    kf / af: flicker-noise coefficient and current exponent.
    """

    name: str
    polarity: int
    vto: float = 0.45
    kp: float = 300e-6
    n: float = 1.3
    lambda_l: float = 0.03e-6
    tox: float = 4e-9
    cgso: float = 3.7e-10
    cgdo: float = 3.7e-10
    cjw: float = 1.0e-9
    gamma_noise: float = 2.0 / 3.0
    kf: float = 3e-24
    af: float = 1.0
    temp: float = ROOM_TEMP

    def __post_init__(self) -> None:
        if self.polarity not in (1, -1):
            raise ValueError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.vto <= 0 or self.kp <= 0 or self.n < 1.0 or self.tox <= 0:
            raise ValueError(f"non-physical model parameters in {self.name!r}")

    @property
    def ut(self) -> float:
        """Thermal voltage at the model temperature."""
        return BOLTZMANN * self.temp / ELEMENTARY_CHARGE

    @property
    def cox(self) -> float:
        """Oxide capacitance per unit area [F/m^2]."""
        return EPS_OX / self.tox

    def specific_current(self, w: float, l: float) -> float:
        """EKV specific current ``Is = 2 n KP (W/L) Ut^2``."""
        return 2.0 * self.n * self.kp * (w / l) * self.ut**2

    def at_temperature(self, temp_c: float) -> "MosfetModel":
        """Model card re-evaluated at ``temp_c`` degrees Celsius.

        First-order temperature physics: mobility degrades as
        ``(T/T0)^-1.5`` and |VTO| drops ~1 mV/K; the thermal voltage (and
        hence subthreshold behaviour and noise) follows T through
        :attr:`temp`.
        """
        from dataclasses import replace

        t_new = temp_c + 273.15
        ratio = t_new / self.temp
        return replace(
            self,
            name=f"{self.name}@{temp_c:g}C",
            kp=self.kp * ratio**-1.5,
            vto=max(self.vto - 1e-3 * (t_new - self.temp), 0.05),
            temp=t_new,
        )

    def evaluate(
        self, vg: float, vd: float, vs: float, vb: float, w: float, l: float
    ) -> dict[str, float]:
        """Evaluate drain current and conductances at a bias point.

        Inputs are *absolute* terminal voltages.  Returns a dict with:

        ``id``  drain current flowing drain -> source (signed, A)
        ``gm``  dId/dVg, ``gds`` dId/dVd, ``gms`` dId/dVs, ``gmb`` dId/dVb
        (all in absolute-voltage space, so they stamp directly).
        """
        p = float(self.polarity)
        ut = self.ut
        # Flip into NMOS-equivalent, bulk-referenced space.
        fvg = p * (vg - vb)
        fvd = p * (vd - vb)
        fvs = p * (vs - vb)
        vp = (fvg - self.vto) / self.n
        uf = (vp - fvs) / ut
        ur = (vp - fvd) / ut
        i_f = ekv_f(uf)
        i_r = ekv_f(ur)
        dif = ekv_f_prime(uf)
        dir_ = ekv_f_prime(ur)
        isq = self.specific_current(w, l)
        icore = isq * (i_f - i_r)
        # Channel-length modulation with a smooth |Vds|.
        lam = self.lambda_l / l
        vds = fvd - fvs
        eps = 1e-3
        sabs = float(np.sqrt(vds * vds + eps * eps)) - eps
        dsabs = vds / float(np.sqrt(vds * vds + eps * eps))
        mclm = 1.0 + lam * sabs
        # Partials of icore in flipped space.
        dic_dvg = isq * (dif - dir_) / (self.n * ut)
        dic_dvs = -isq * dif / ut
        dic_dvd = isq * dir_ / ut
        # Full current and partials in flipped space.
        idf = icore * mclm
        gm = dic_dvg * mclm
        gds = dic_dvd * mclm + icore * lam * dsabs
        gms = dic_dvs * mclm - icore * lam * dsabs
        # Back to absolute space.  d(flipped v)/d(abs v) = p for g/d/s and
        # the bulk picks up minus the sum, so conductances keep their sign
        # while the current flips with polarity.
        id_abs = p * idf
        gmb = -(gm + gds + gms)
        return {
            "id": id_abs,
            "gm": gm,
            "gds": gds,
            "gms": gms,
            "gmb": gmb,
            "if": i_f,
            "ir": i_r,
        }

    def capacitances(self, w: float, l: float) -> dict[str, float]:
        """Geometry-determined small-signal capacitances [F].

        The simulator treats these as bias-independent (saturation-region
        Meyer values), which keeps transient integration charge-conserving.
        """
        c_intrinsic = self.cox * w * l
        return {
            "cgs": (2.0 / 3.0) * c_intrinsic + self.cgso * w,
            "cgd": self.cgdo * w,
            "cdb": self.cjw * w,
            "csb": self.cjw * w,
        }

    def thermal_noise_psd(self, gm: float) -> float:
        """Channel thermal noise current PSD ``4 k T gamma gm`` [A^2/Hz]."""
        return 4.0 * BOLTZMANN * self.temp * self.gamma_noise * max(gm, 0.0)

    def flicker_noise_psd(self, drain_current: float, w: float, l: float, f: float) -> float:
        """Flicker noise current PSD ``KF Id^AF / (Cox W L f)`` [A^2/Hz]."""
        if f <= 0:
            raise ValueError("flicker noise frequency must be positive")
        cox_tot = self.cox * w * l
        return self.kf * abs(drain_current) ** self.af / (cox_tot * f)


@dataclass(frozen=True)
class DiodeModel:
    """Ideal-exponential junction diode model with series conductance clamp."""

    name: str
    is_: float = 1e-14
    n: float = 1.0
    temp: float = ROOM_TEMP
    v_crit: float = 0.9
    cj0: float = field(default=0.0)

    @property
    def ut(self) -> float:
        return BOLTZMANN * self.temp / ELEMENTARY_CHARGE

    def evaluate(self, v: float) -> tuple[float, float]:
        """Return ``(current, conductance)`` at junction voltage ``v``.

        Above ``v_crit`` the exponential is linearized to avoid overflow
        during Newton iterations far from the solution.
        """
        nut = self.n * self.ut
        if v <= self.v_crit:
            e = np.exp(v / nut)
            i = self.is_ * (e - 1.0)
            g = self.is_ * e / nut
        else:
            e = np.exp(self.v_crit / nut)
            g = self.is_ * e / nut
            i = self.is_ * (e - 1.0) + g * (v - self.v_crit)
        return float(i), float(g)


# Representative generic 0.18 um CMOS cards.  Values are textbook-plausible
# (not any foundry's data): NMOS mobility ~3-4x PMOS, |VTO| ~ 0.45 V,
# tox ~ 4 nm, strong CLM at minimum length.
NMOS_180 = MosfetModel(
    name="nmos180",
    polarity=+1,
    vto=0.45,
    kp=300e-6,
    n=1.30,
    lambda_l=0.06e-6,
    tox=4e-9,
    kf=4e-24,
)

PMOS_180 = MosfetModel(
    name="pmos180",
    polarity=-1,
    vto=0.45,
    kp=85e-6,
    n=1.35,
    lambda_l=0.08e-6,
    tox=4e-9,
    kf=1.5e-24,
)

DEFAULT_DIODE = DiodeModel(name="d180")
