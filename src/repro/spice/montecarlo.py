"""Monte Carlo device mismatch.

Implements Pelgrom-style local variation: each MOSFET instance receives an
independent threshold-voltage and mobility perturbation whose sigma shrinks
with the device's gate area,

    sigma(dVTO) = A_VT / sqrt(W L m),    sigma(dKP/KP) = A_KP / sqrt(W L m)

with the Pelgrom coefficients defaulting to generic 180 nm values
(A_VT ~ 3.5 mV*um, A_KP ~ 1 %*um).

Because :class:`~repro.spice.elements.mosfet.Mosfet` caches geometry-derived
capacitances but reads the model on every evaluation, mismatch is applied by
*replacing each instance's model* with a perturbed copy — cheap, reversible
(:func:`apply_mismatch` returns the originals) and without netlist rebuild.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.spice.elements import Mosfet
from repro.spice.netlist import Circuit

A_VT = 3.5e-9   # V*m  (3.5 mV*um)
A_KP = 0.01e-6  # fractional KP sigma * m (1 %*um)


def apply_mismatch(circuit: Circuit, rng: np.random.Generator,
                   a_vt: float = A_VT, a_kp: float = A_KP) -> dict[str, object]:
    """Perturb every MOSFET's model in place; returns {name: original_model}
    so the caller can restore with :func:`restore_models`."""
    originals: dict[str, object] = {}
    for elem in circuit.elements:
        if not isinstance(elem, Mosfet):
            continue
        area = elem.w * elem.l * elem.m
        sigma_vt = a_vt / np.sqrt(area)
        sigma_kp = a_kp / np.sqrt(area)
        model = elem.model
        originals[elem.name] = model
        dvto = rng.normal(0.0, sigma_vt)
        dkp = rng.normal(0.0, sigma_kp)
        elem.model = replace(
            model,
            vto=max(model.vto + dvto, 0.05),
            kp=model.kp * max(1.0 + dkp, 0.1),
        )
    return originals


def restore_models(circuit: Circuit, originals: dict[str, object]) -> None:
    """Undo :func:`apply_mismatch`."""
    for elem in circuit.elements:
        if elem.name in originals:
            elem.model = originals[elem.name]


def monte_carlo(circuit_factory: Callable[[], Circuit],
                measure: Callable[[Circuit], float],
                n_samples: int,
                rng: np.random.Generator | None = None,
                a_vt: float = A_VT, a_kp: float = A_KP,
                seed: int | None = None) -> np.ndarray:
    """Run ``measure`` over ``n_samples`` mismatch realizations.

    ``circuit_factory`` builds a fresh nominal circuit; ``measure`` runs the
    analyses it needs and returns a scalar.  Failed samples (simulator
    exceptions) are returned as NaN so yield can be computed.  Mismatch
    draws come from ``rng``, or from a generator derived from ``seed``
    when no generator is passed — there is no unseeded fallback, so a
    yield estimate is always reproducible.

    Example: input-offset spread of a differential pair
    ---------------------------------------------------
    >>> import numpy as np
    >>> from repro.spice import Circuit, NMOS_180, operating_point
    >>> def build():
    ...     ckt = Circuit("pair")
    ...     ckt.add_vsource("Vdd", "vdd", "0", 1.8)
    ...     ckt.add_vsource("Vp", "a", "0", 0.9)
    ...     ckt.add_vsource("Vn", "b", "0", 0.9)
    ...     ckt.add_isource("It", "t", "0", 20e-6)
    ...     ckt.add_mosfet("M1", "x", "a", "t", "0", NMOS_180, 10e-6, 1e-6)
    ...     ckt.add_mosfet("M2", "y", "b", "t", "0", NMOS_180, 10e-6, 1e-6)
    ...     ckt.add_resistor("R1", "vdd", "x", 50e3)
    ...     ckt.add_resistor("R2", "vdd", "y", 50e3)
    ...     return ckt
    >>> def offset(ckt):
    ...     op = operating_point(ckt)
    ...     return op.v("x") - op.v("y")
    >>> spread = monte_carlo(build, offset, 8,
    ...                      rng=np.random.default_rng(0))
    >>> spread.shape
    (8,)
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(seed)
    out = np.empty(n_samples)
    for k in range(n_samples):
        ckt = circuit_factory()
        apply_mismatch(ckt, rng, a_vt=a_vt, a_kp=a_kp)
        try:
            out[k] = float(measure(ckt))
        except Exception:
            out[k] = np.nan
    return out
