"""Netlist container: nodes, elements, and MNA assembly."""

from __future__ import annotations

import numpy as np

from repro.spice.elements import (
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Diode,
    Element,
    Inductor,
    Mosfet,
    Resistor,
    VoltageSource,
)
from repro.spice.exceptions import NetlistError
from repro.spice.mna import MNASystem, StampContext
from repro.spice.models import DEFAULT_DIODE, DiodeModel, MosfetModel
from repro.spice.waveforms import Waveform

GROUND_NAMES = frozenset({"0", "gnd"})


class Circuit:
    """A circuit under construction and analysis.

    Nodes are referenced by name; ``"0"`` and ``"gnd"`` (case-insensitive)
    are ground.  Element names must be unique.  After any structural change
    the circuit re-binds element node/branch indices lazily on the next
    analysis.

    Example
    -------
    >>> ckt = Circuit("divider")
    >>> ckt.add_vsource("Vin", "in", "0", 1.0)
    >>> ckt.add_resistor("R1", "in", "out", 1e3)
    >>> ckt.add_resistor("R2", "out", "0", 1e3)
    """

    def __init__(self, title: str = "untitled") -> None:
        self.title = title
        self.elements: list[Element] = []
        self._by_name: dict[str, Element] = {}
        self._node_index: dict[str, int] = {}
        self._bound = False
        self._n_branches = 0

    # -- construction -------------------------------------------------------
    @staticmethod
    def _canon(node: str) -> str:
        node = str(node)
        return "0" if node.lower() in GROUND_NAMES else node

    def add(self, element: Element) -> Element:
        """Register an element (used by all ``add_*`` helpers)."""
        if element.name in self._by_name:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self.elements.append(element)
        self._by_name[element.name] = element
        for node in element.node_names:
            canon = self._canon(node)
            if canon != "0" and canon not in self._node_index:
                self._node_index[canon] = len(self._node_index)
        self._bound = False
        return element

    def add_resistor(self, name: str, a: str, b: str, r: float) -> Resistor:
        return self.add(Resistor(name, a, b, r))

    def add_capacitor(self, name: str, a: str, b: str, c: float,
                      ic: float | None = None) -> Capacitor:
        return self.add(Capacitor(name, a, b, c, ic=ic))

    def add_inductor(self, name: str, a: str, b: str, value: float,
                     ic: float | None = None) -> Inductor:
        return self.add(Inductor(name, a, b, value, ic=ic))

    def add_vsource(self, name: str, pos: str, neg: str,
                    value: float | Waveform = 0.0, ac: float = 0.0) -> VoltageSource:
        return self.add(VoltageSource(name, pos, neg, value, ac=ac))

    def add_isource(self, name: str, pos: str, neg: str,
                    value: float | Waveform = 0.0, ac: float = 0.0) -> CurrentSource:
        return self.add(CurrentSource(name, pos, neg, value, ac=ac))

    def add_vcvs(self, name: str, pos: str, neg: str, cpos: str, cneg: str,
                 mu: float) -> VCVS:
        return self.add(VCVS(name, pos, neg, cpos, cneg, mu))

    def add_vccs(self, name: str, pos: str, neg: str, cpos: str, cneg: str,
                 gm: float) -> VCCS:
        return self.add(VCCS(name, pos, neg, cpos, cneg, gm))

    def add_diode(self, name: str, anode: str, cathode: str,
                  model: DiodeModel = DEFAULT_DIODE, area: float = 1.0) -> Diode:
        return self.add(Diode(name, anode, cathode, model, area))

    def add_mosfet(self, name: str, d: str, g: str, s: str, b: str,
                   model: MosfetModel, w: float, l: float, m: int = 1) -> Mosfet:
        return self.add(Mosfet(name, d, g, s, b, model, w, l, m=m))

    def add_subcircuit(self, inst: str, sub: "Circuit",
                       port_map: dict[str, str]) -> list[Element]:
        """Flatten another circuit into this one as instance ``inst``.

        ``port_map`` maps the subcircuit's port node names to nodes of this
        circuit; every other subcircuit node becomes ``<inst>.<node>`` and
        every element is copied (deep) under the name ``<inst>.<name>``.
        Ground is never remapped.  Returns the new elements.

        This is the programmatic counterpart of the parser's ``.subckt`` /
        ``X`` support — compose reusable blocks without writing decks.
        """
        import copy

        if not inst:
            raise NetlistError("instance name must be non-empty")
        added: list[Element] = []
        for elem in sub.elements:
            clone = copy.deepcopy(elem)
            clone.name = f"{inst}.{elem.name}"
            new_nodes = []
            for node in elem.node_names:
                canon = sub._canon(node)
                if canon == "0":
                    new_nodes.append("0")
                elif canon in port_map:
                    new_nodes.append(port_map[canon])
                else:
                    new_nodes.append(f"{inst}.{canon}")
            clone.node_names = tuple(new_nodes)
            clone.nodes = ()
            clone.branch_start = -1
            added.append(self.add(clone))
        return added

    def canonical_node(self, node: str) -> str:
        """Public canonical spelling of a node name (``"gnd"``/``"GND"`` ->
        ``"0"``, everything else unchanged).  Static analyses use this
        instead of reaching into the private name table."""
        return self._canon(node)

    def connectivity(self) -> list[tuple["Element", tuple[str, ...]]]:
        """Element-terminal connectivity with canonical node names.

        Returns one ``(element, canonical_nodes)`` pair per element in
        insertion order — the public traversal surface for topology
        checks (:mod:`repro.analysis.erc`) and other netlist-walking
        tools.
        """
        return [(elem, tuple(self._canon(n) for n in elem.node_names))
                for elem in self.elements]

    # -- lookup ---------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Element:
        try:
            return self._by_name[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._node_index)

    @property
    def n_branches(self) -> int:
        self._bind()
        return self._n_branches

    @property
    def size(self) -> int:
        """Total number of MNA unknowns."""
        return self.n_nodes + self.n_branches

    def node_index(self, name: str) -> int:
        """Index of a node in solution vectors; ground returns -1."""
        canon = self._canon(name)
        if canon == "0":
            return -1
        try:
            return self._node_index[canon]
        except KeyError:
            raise NetlistError(f"no node named {name!r}") from None

    def node_names(self) -> list[str]:
        """Non-ground node names ordered by index."""
        return sorted(self._node_index, key=self._node_index.__getitem__)

    @property
    def is_nonlinear(self) -> bool:
        return any(e.is_nonlinear for e in self.elements)

    # -- binding / assembly ---------------------------------------------------
    def ensure_bound(self) -> None:
        """Resolve element node/branch indices (idempotent; analyses call
        this before touching elements outside of assembly)."""
        self._bind()

    def _bind(self) -> None:
        if self._bound:
            return
        n_nodes = self.n_nodes
        branch = 0
        for elem in self.elements:
            idx = tuple(self.node_index(n) for n in elem.node_names)
            elem.bind(idx, n_nodes + branch if elem.n_branches else -1)
            branch += elem.n_branches
        self._n_branches = branch
        self._bound = True

    def assemble(self, x: np.ndarray, ctx: StampContext) -> MNASystem:
        """Assemble the real MNA system at iterate ``x``."""
        self._bind()
        sys = MNASystem(self.n_nodes, self._n_branches)
        for elem in self.elements:
            elem.stamp(sys, x, ctx)
        if ctx.gmin > 0:
            for i in range(self.n_nodes):
                sys.A[i, i] += ctx.gmin
        return sys

    def assemble_ac(self, x_op: np.ndarray, omega: float,
                    gmin: float = 1e-12) -> MNASystem:
        """Assemble the complex small-signal system at ``omega`` rad/s."""
        self._bind()
        sys = MNASystem(self.n_nodes, self._n_branches, complex_valued=True)
        for elem in self.elements:
            elem.stamp_ac(sys, x_op, omega)
        if gmin > 0:
            for i in range(self.n_nodes):
                sys.A[i, i] += gmin
        return sys

    # -- reporting --------------------------------------------------------------
    def netlist_text(self) -> str:
        """A human-readable netlist listing (SPICE-flavoured)."""
        lines = [f"* {self.title}"]
        for elem in self.elements:
            kind = type(elem).__name__
            nodes = " ".join(elem.node_names)
            extra = ""
            if isinstance(elem, Resistor):
                extra = f"{elem.resistance:g}"
            elif isinstance(elem, Capacitor):
                extra = f"{elem.capacitance:g}"
            elif isinstance(elem, Inductor):
                extra = f"{elem.inductance:g}"
            elif isinstance(elem, VoltageSource | CurrentSource):
                extra = f"dc={elem.waveform.dc_value():g} ac={elem.ac:g}"
            elif isinstance(elem, Mosfet):
                extra = (f"{elem.model.name} w={elem.w:g} l={elem.l:g} "
                         f"m={elem.m}")
            elif isinstance(elem, Diode):
                extra = f"{elem.model.name} area={elem.area:g}"
            elif isinstance(elem, VCVS | VCCS):
                gain = elem.mu if isinstance(elem, VCVS) else elem.gm
                extra = f"gain={gain:g}"
            lines.append(f"{elem.name} ({kind}) {nodes} {extra}".rstrip())
        lines.append(".end")
        return "\n".join(lines)

    def to_spice(self) -> str:
        """Emit a SPICE deck that :func:`repro.spice.parser.parse_netlist`
        reads back into an equivalent circuit (round-trip tested).

        Custom MOSFET/diode models are emitted as ``.model`` cards; source
        waveforms map to PULSE/SIN/PWL specs.  Instance names containing
        ``.`` (from subcircuit flattening) are preserved.
        """
        from repro.spice.models import MosfetModel
        from repro.spice.waveforms import DCWave, PieceWiseLinear, Pulse, Sine

        def src_spec(elem) -> str:
            wave = elem.waveform
            parts = []
            if isinstance(wave, DCWave):
                parts.append(f"DC {wave.dc_value():.17g}")
            elif isinstance(wave, Pulse):
                parts.append(
                    f"PULSE({wave.v1:.17g} {wave.v2:.17g} {wave.td:.17g} "
                    f"{wave.tr:.17g} {wave.tf:.17g} {wave.pw:.17g} "
                    f"{wave.per:.17g})")
            elif isinstance(wave, Sine):
                parts.append(f"SIN({wave.vo:.17g} {wave.va:.17g} "
                             f"{wave.freq:.17g} {wave.td:.17g} "
                             f"{wave.theta:.17g})")
            elif isinstance(wave, PieceWiseLinear):
                pts = " ".join(f"{t:.17g} {v:.17g}"
                               for t, v in zip(wave.times, wave.values))
                parts.append(f"PWL({pts})")
            if elem.ac:
                parts.append(f"AC {elem.ac:.17g}")
            return " ".join(parts) or "DC 0"

        model_cards: dict[str, str] = {}

        def mos_model_name(model: MosfetModel) -> str:
            if model.name in ("nmos180", "pmos180"):
                return model.name
            kind = "nmos" if model.polarity > 0 else "pmos"
            model_cards[model.name] = (
                f".model {model.name} {kind} vto={model.vto:.17g} "
                f"kp={model.kp:.17g} n={model.n:.17g} "
                f"lambda_l={model.lambda_l:.17g} tox={model.tox:.17g} "
                f"kf={model.kf:.17g} af={model.af:.17g}")
            return model.name

        lines: list[str] = []
        for elem in self.elements:
            n = elem.node_names
            if isinstance(elem, Resistor):
                lines.append(f"{elem.name} {n[0]} {n[1]} "
                             f"{elem.resistance:.17g}")
            elif isinstance(elem, Capacitor):
                lines.append(f"{elem.name} {n[0]} {n[1]} "
                             f"{elem.capacitance:.17g}")
            elif isinstance(elem, Inductor):
                lines.append(f"{elem.name} {n[0]} {n[1]} "
                             f"{elem.inductance:.17g}")
            elif isinstance(elem, VoltageSource | CurrentSource):
                lines.append(f"{elem.name} {n[0]} {n[1]} {src_spec(elem)}")
            elif isinstance(elem, VCVS):
                lines.append(f"{elem.name} {n[0]} {n[1]} {n[2]} {n[3]} "
                             f"{elem.mu:.17g}")
            elif isinstance(elem, VCCS):
                lines.append(f"{elem.name} {n[0]} {n[1]} {n[2]} {n[3]} "
                             f"{elem.gm:.17g}")
            elif isinstance(elem, Mosfet):
                mname = mos_model_name(elem.model)
                lines.append(f"{elem.name} {n[0]} {n[1]} {n[2]} {n[3]} "
                             f"{mname} W={elem.w:.17g} L={elem.l:.17g} "
                             f"M={elem.m}")
            elif isinstance(elem, Diode):
                dname = elem.model.name
                model_cards[dname] = (
                    f".model {dname} d is={elem.model.is_:.17g} "
                    f"n={elem.model.n:.17g} cjo={elem.model.cj0:.17g}")
                lines.append(f"{elem.name} {n[0]} {n[1]} {dname}")
            else:  # pragma: no cover - future element types
                raise NetlistError(
                    f"cannot export element type {type(elem).__name__}")
        deck = [f".title {self.title}"]
        deck.extend(model_cards.values())
        deck.extend(lines)
        deck.append(".end")
        return "\n".join(deck)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Circuit({self.title!r}, nodes={self.n_nodes}, "
                f"elements={len(self.elements)})")
