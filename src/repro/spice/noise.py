"""Small-signal noise analysis via the adjoint method.

For each frequency the complex MNA matrix ``A`` is factorized once; the
adjoint solve ``A^H y = e_out`` yields, in ``y``, the transfer impedance
from a unit current injected between any node pair to the output voltage.
Every device noise current source then contributes
``|y[p] - y[m]|^2 * S_i(f)`` to the output voltage PSD — one factorization
per frequency regardless of the number of noise sources.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.spice.dc import operating_point
from repro.spice.exceptions import AnalysisError
from repro.spice.netlist import Circuit
from repro.spice.results import NoiseResult, OPResult


def noise_analysis(circuit: Circuit, output_node: str, freqs: np.ndarray,
                   input_source: str | None = None,
                   x_op: np.ndarray | OPResult | None = None,
                   output_node_neg: str | None = None) -> NoiseResult:
    """Compute the output-referred voltage noise PSD at ``output_node``.

    Parameters
    ----------
    input_source:
        Name of the source whose ``ac`` magnitude defines the signal path;
        when given, the result can report input-referred noise through
        ``NoiseResult.input_referred_psd``.
    output_node_neg:
        Optional negative output node for differential outputs.
    """
    freqs = np.asarray(freqs, dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise AnalysisError("noise frequencies must be positive and non-empty")
    if x_op is None:
        x_op = operating_point(circuit).x
    elif isinstance(x_op, OPResult):
        x_op = x_op.x

    out_idx = circuit.node_index(output_node)
    if out_idx < 0:
        raise AnalysisError("output node cannot be ground")
    neg_idx = circuit.node_index(output_node_neg) if output_node_neg else -1

    sources = []
    for elem in circuit.elements:
        sources.extend(elem.noise_sources(x_op))

    n = circuit.size
    e_out = np.zeros(n, dtype=complex)
    e_out[out_idx] = 1.0
    if neg_idx >= 0:
        e_out[neg_idx] = -1.0

    output_psd = np.zeros(freqs.size)
    contributions: dict[str, np.ndarray] = {
        src.label: np.zeros(freqs.size) for src in sources
    }
    gain = np.zeros(freqs.size, dtype=complex) if input_source else None
    if input_source is not None and input_source not in circuit:
        raise AnalysisError(f"no input source named {input_source!r}")

    for k, f in enumerate(freqs):
        sys = circuit.assemble_ac(x_op, 2.0 * np.pi * f)
        try:
            lu = lu_factor(sys.A)
        except (np.linalg.LinAlgError, ValueError) as exc:
            raise AnalysisError(f"singular noise system at {f:g} Hz: {exc}") from exc
        # Adjoint: A^H y = e_out  (trans=2 is conjugate transpose).
        y = lu_solve(lu, e_out, trans=2)
        for src in sources:
            yp = y[src.node_a] if src.node_a >= 0 else 0.0
            ym = y[src.node_b] if src.node_b >= 0 else 0.0
            transfer2 = abs(yp - ym) ** 2
            psd = transfer2 * src.psd(f)
            contributions[src.label][k] += psd
            output_psd[k] += psd
        if gain is not None:
            x_sig = lu_solve(lu, sys.z)
            g = x_sig[out_idx]
            if neg_idx >= 0:
                g = g - x_sig[neg_idx]
            gain[k] = g
    return NoiseResult(circuit, freqs, output_psd, contributions, gain=gain)
