"""SPICE-format netlist parser.

Parses a useful subset of SPICE deck syntax into a
:class:`~repro.spice.netlist.Circuit`:

* ``R/C/L`` two-terminal passives with SI-suffixed values,
* ``V/I`` independent sources with ``DC``, ``AC`` and
  ``PULSE/SIN/PWL(...)`` specifications,
* ``E/G`` voltage/current-controlled sources,
* ``M`` MOSFETs with ``W=/L=/M=`` parameters referencing ``.model`` cards
  (``nmos``/``pmos`` level-1-style parameters mapped onto the EKV model),
* ``D`` diodes referencing ``.model d`` cards,
* ``.model``, ``.title``, comments (``*``, ``$``), continuation lines
  (``+``), ``.end``,
* hierarchical ``.subckt``/``.ends`` definitions with ``X`` instantiation
  (flattened; internal nodes become ``<instance>.<node>``, nesting allowed).

The parser exists so users can bring existing decks to the optimizer and
so tests can express circuits compactly.  Analysis statements (``.ac``,
``.tran`` ...) are deliberately *not* parsed — analyses are Python calls.

Example
-------
>>> from repro.spice.parser import parse_netlist
>>> ckt = parse_netlist('''
... * divider
... V1 in 0 DC 2
... R1 in out 1k
... R2 out 0 1k
... .end
... ''')
>>> from repro.spice import operating_point
>>> round(operating_point(ckt).v("out"), 6)
1.0
"""

from __future__ import annotations

import re

from repro.spice.exceptions import NetlistError
from repro.spice.models import DiodeModel, MosfetModel, NMOS_180, PMOS_180
from repro.spice.netlist import Circuit
from repro.spice.units import parse_si
from repro.spice.waveforms import PieceWiseLinear, Pulse, Sine

_PAREN_FUNC_RE = re.compile(r"(pulse|sin|pwl)\s*\(([^)]*)\)", re.IGNORECASE)

# Minimum token counts per element letter (name + nodes + value/model).
_MIN_TOKENS = {"r": 4, "c": 4, "l": 4, "v": 3, "i": 3,
               "e": 6, "g": 6, "d": 4, "m": 6, "x": 3}

_MAX_SUBCKT_DEPTH = 20


def _type_letter(name: str) -> str:
    """Element type letter; flattened names keep it in the last segment
    (``X1.R1`` is a resistor inside instance X1)."""
    return name.split(".")[-1][0].lower()


def _extract_subckts(lines: list[str]) -> tuple[list[str], dict]:
    """Split out ``.subckt``/``.ends`` blocks; returns (top_lines, defs).

    Each definition maps ``name -> (ports, body_lines)``.
    """
    top: list[str] = []
    defs: dict[str, tuple[list[str], list[str]]] = {}
    stack: list[tuple[str, list[str], list[str]]] = []
    for line in lines:
        low = line.lower()
        if low.startswith(".subckt"):
            tokens = line.split()
            if len(tokens) < 3:
                raise NetlistError(f"malformed .subckt: {line!r}")
            stack.append((tokens[1].lower(), tokens[2:], []))
        elif low.startswith(".ends"):
            if not stack:
                raise NetlistError(".ends without .subckt")
            name, ports, body = stack.pop()
            defs[name] = (ports, body)
        elif stack:
            stack[-1][2].append(line)
        else:
            top.append(line)
    if stack:
        raise NetlistError(f"unterminated .subckt {stack[-1][0]!r}")
    return top, defs


def _expand_instances(lines: list[str], defs: dict, depth: int = 0
                      ) -> list[str]:
    """Replace every X line with its subcircuit body, prefixed/mapped."""
    if depth > _MAX_SUBCKT_DEPTH:
        raise NetlistError("subcircuit nesting too deep (recursive?)")
    out: list[str] = []
    for line in lines:
        if _type_letter(line.split()[0]) != "x":
            out.append(line)
            continue
        tokens = line.split()
        inst = tokens[0]
        sub_name = tokens[-1].lower()
        conn = tokens[1:-1]
        if sub_name not in defs:
            raise NetlistError(f"unknown subcircuit {tokens[-1]!r}")
        ports, body = defs[sub_name]
        if len(conn) != len(ports):
            raise NetlistError(
                f"{inst}: {len(conn)} connections for {len(ports)} ports "
                f"of {sub_name!r}")
        port_map = dict(zip(ports, conn))

        def map_node(node: str) -> str:
            if node.lower() in ("0", "gnd"):
                return "0"
            return port_map.get(node, f"{inst}.{node}")

        expanded_body: list[str] = []
        for bline in body:
            btok = bline.split()
            letter = _type_letter(btok[0])
            new = [f"{inst}.{btok[0]}"]
            if letter == "x":
                # nodes are everything but the trailing subckt name
                new += [map_node(n) for n in btok[1:-1]] + [btok[-1]]
            else:
                n_nodes = {"r": 2, "c": 2, "l": 2, "v": 2, "i": 2,
                           "e": 4, "g": 4, "d": 2, "m": 4}.get(letter)
                if n_nodes is None:
                    raise NetlistError(
                        f"unsupported element in subcircuit: {bline!r}")
                new += [map_node(n) for n in btok[1:1 + n_nodes]]
                new += btok[1 + n_nodes:]
            expanded_body.append(" ".join(new))
        out.extend(_expand_instances(expanded_body, defs, depth + 1))
    return out


def _looks_like_element(line: str) -> bool:
    """Heuristic used to distinguish a SPICE title line from an element."""
    tokens = line.split()
    letter = tokens[0][0].lower()
    need = _MIN_TOKENS.get(letter)
    return need is not None and len(tokens) >= need


def _join_continuations(text: str) -> list[str]:
    """Strip comments and merge ``+`` continuation lines."""
    merged: list[str] = []
    for raw in text.splitlines():
        line = raw.split("$", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not merged:
                raise NetlistError("continuation line with nothing to continue")
            merged[-1] += " " + stripped[1:].strip()
        else:
            merged.append(stripped)
    return merged


def _parse_kv(tokens: list[str]) -> dict[str, str]:
    """Parse trailing ``key=value`` tokens."""
    out: dict[str, str] = {}
    for tok in tokens:
        if "=" not in tok:
            raise NetlistError(f"expected key=value, got {tok!r}")
        key, val = tok.split("=", 1)
        out[key.lower()] = val
    return out


def _parse_waveform(spec: str):
    """Parse a source value spec: number, DC x, AC y, PULSE(...), etc."""
    spec = spec.strip()
    match = _PAREN_FUNC_RE.search(spec)
    dc = 0.0
    ac = 0.0
    wave = None
    rest = spec
    if match:
        func = match.group(1).lower()
        args = [parse_si(a) for a in match.group(2).replace(",", " ").split()]
        if func == "pulse":
            names = ("v1", "v2", "td", "tr", "tf", "pw", "per")
            wave = Pulse(**dict(zip(names, args)))
        elif func == "sin":
            names = ("vo", "va", "freq", "td", "theta")
            wave = Sine(**dict(zip(names, args)))
        else:  # pwl
            if len(args) % 2 != 0:
                raise NetlistError("PWL needs (t, v) pairs")
            pts = list(zip(args[::2], args[1::2]))
            wave = PieceWiseLinear(pts)
        rest = (spec[: match.start()] + spec[match.end():]).strip()
    tokens = rest.split()
    i = 0
    while i < len(tokens):
        tok = tokens[i].lower()
        if tok == "dc":
            dc = parse_si(tokens[i + 1])
            i += 2
        elif tok == "ac":
            ac = parse_si(tokens[i + 1])
            i += 2
        else:
            dc = parse_si(tokens[i])
            i += 1
    return (wave if wave is not None else dc), ac


def _model_from_card(name: str, kind: str, params: dict[str, str]):
    """Build a device model from a .model card."""
    kind = kind.lower()
    get = lambda key, default: parse_si(params[key]) if key in params else default
    if kind in ("nmos", "pmos"):
        base = NMOS_180 if kind == "nmos" else PMOS_180
        return MosfetModel(
            name=name,
            polarity=+1 if kind == "nmos" else -1,
            vto=abs(get("vto", base.vto)),
            kp=get("kp", base.kp),
            n=get("n", base.n),
            lambda_l=get("lambda_l", base.lambda_l),
            tox=get("tox", base.tox),
            cgso=get("cgso", base.cgso),
            cgdo=get("cgdo", base.cgdo),
            kf=get("kf", base.kf),
            af=get("af", base.af),
        )
    if kind == "d":
        return DiodeModel(
            name=name,
            is_=get("is", 1e-14),
            n=get("n", 1.0),
            cj0=get("cjo", get("cj0", 0.0)),
        )
    raise NetlistError(f"unsupported .model kind {kind!r}")


def parse_netlist(text: str, title: str | None = None) -> Circuit:
    """Parse a SPICE deck into a Circuit (see module docstring)."""
    lines = _join_continuations(text)
    if not lines:
        raise NetlistError("empty netlist")

    # SPICE convention: a first line that isn't an element or control card
    # is the deck title.
    deck_title = title
    if lines and not lines[0].startswith(".") \
            and not _looks_like_element(lines[0]):
        deck_title = lines[0]
        lines = lines[1:]

    # Hierarchical expansion before anything else.
    lines, subckt_defs = _extract_subckts(lines)
    lines = _expand_instances(lines, subckt_defs)

    # First pass: collect .model cards (they may appear anywhere).
    models: dict[str, object] = {"nmos180": NMOS_180, "pmos180": PMOS_180}
    element_lines: list[str] = []
    for line in lines:
        low = line.lower()
        if low.startswith(".model"):
            tokens = line.split()
            if len(tokens) < 3:
                raise NetlistError(f"malformed .model: {line!r}")
            mname = tokens[1].lower()
            kind = tokens[2]
            models[mname] = _model_from_card(mname, kind,
                                             _parse_kv(tokens[3:]))
        elif low.startswith(".title"):
            deck_title = line.split(None, 1)[1] if " " in line else ""
        elif low in (".end", ".ends"):
            break
        elif low.startswith("."):
            raise NetlistError(f"unsupported control card: {line!r}")
        else:
            element_lines.append(line)

    ckt = Circuit(deck_title or "parsed")
    for line in element_lines:
        tokens = line.split()
        name = tokens[0]
        letter = _type_letter(name)
        try:
            if letter == "r":
                ckt.add_resistor(name, tokens[1], tokens[2],
                                 parse_si(tokens[3]))
            elif letter == "c":
                ckt.add_capacitor(name, tokens[1], tokens[2],
                                  parse_si(tokens[3]))
            elif letter == "l":
                ckt.add_inductor(name, tokens[1], tokens[2],
                                 parse_si(tokens[3]))
            elif letter in ("v", "i"):
                value, ac = _parse_waveform(" ".join(tokens[3:]))
                add = ckt.add_vsource if letter == "v" else ckt.add_isource
                add(name, tokens[1], tokens[2], value, ac=ac)
            elif letter == "e":
                ckt.add_vcvs(name, tokens[1], tokens[2], tokens[3],
                             tokens[4], parse_si(tokens[5]))
            elif letter == "g":
                ckt.add_vccs(name, tokens[1], tokens[2], tokens[3],
                             tokens[4], parse_si(tokens[5]))
            elif letter == "d":
                model = models.get(tokens[3].lower())
                if model is None or not isinstance(model, DiodeModel):
                    raise NetlistError(f"unknown diode model {tokens[3]!r}")
                ckt.add_diode(name, tokens[1], tokens[2], model=model)
            elif letter == "m":
                model = models.get(tokens[5].lower())
                if model is None or not isinstance(model, MosfetModel):
                    raise NetlistError(f"unknown MOS model {tokens[5]!r}")
                kv = _parse_kv(tokens[6:])
                if "w" not in kv or "l" not in kv:
                    raise NetlistError(f"MOSFET {name} needs W= and L=")
                ckt.add_mosfet(name, tokens[1], tokens[2], tokens[3],
                               tokens[4], model,
                               w=parse_si(kv["w"]), l=parse_si(kv["l"]),
                               m=int(float(kv.get("m", "1"))))
            else:
                raise NetlistError(f"unsupported element letter {letter!r}")
        except (IndexError, ValueError) as exc:
            raise NetlistError(f"cannot parse line {line!r}: {exc}") from exc
    if not ckt.elements:
        raise NetlistError("netlist contains no elements")
    return ckt
