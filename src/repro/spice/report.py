"""Human-readable operating-point reports (HSpice .lis-style)."""

from __future__ import annotations

from repro.spice.elements import Mosfet, Resistor, VoltageSource
from repro.spice.results import OPResult
from repro.spice.units import format_si


def op_report(op: OPResult) -> str:
    """Render node voltages and per-device operating details.

    Example
    -------
    >>> from repro.spice import Circuit, operating_point
    >>> ckt = Circuit(); _ = ckt.add_vsource("V1", "a", "0", 1.0)
    >>> _ = ckt.add_resistor("R1", "a", "0", 1e3)
    >>> print(op_report(operating_point(ckt)))  # doctest: +ELLIPSIS
    Operating point...
    """
    circuit = op.circuit
    lines = [f"Operating point of {circuit.title!r} "
             f"(strategy: {op.strategy}, {op.iterations} Newton iters)"]
    lines.append("-- node voltages --")
    for name in circuit.node_names():
        lines.append(f"  v({name:8s}) = {op.v(name):10.6f} V")
    mosfets = [e for e in circuit.elements if isinstance(e, Mosfet)]
    if mosfets:
        lines.append("-- MOSFETs --")
        lines.append(f"  {'name':8s}{'id':>12s}{'gm':>12s}{'gds':>12s}"
                     f"{'vgs':>9s}{'vds':>9s}{'vov':>9s}")
        for m in mosfets:
            info = m.op_info(op.x)
            lines.append(
                f"  {m.name:8s}{format_si(info['id'], 'A'):>12s}"
                f"{format_si(info['gm'], 'S'):>12s}"
                f"{format_si(info['gds'], 'S'):>12s}"
                f"{info['vgs']:9.3f}{info['vds']:9.3f}{info['vov']:9.3f}"
            )
    sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
    if sources:
        lines.append("-- sources --")
        for s in sources:
            info = s.op_info(op.x)
            lines.append(f"  {s.name:8s} v={info['v']:8.4f} V  "
                         f"i={format_si(info['i'], 'A')}  "
                         f"p={format_si(abs(info['p']), 'W')}")
    total_r_power = sum(
        e.op_info(op.x)["p"] for e in circuit.elements
        if isinstance(e, Resistor)
    )
    lines.append(f"-- resistive dissipation: "
                 f"{format_si(total_r_power, 'W')} --")
    return "\n".join(lines)
