"""Analysis result containers with name-based accessors."""

from __future__ import annotations

import numpy as np

from repro.spice.elements import VoltageSource
from repro.spice.exceptions import AnalysisError
from repro.spice.netlist import Circuit


class _ResultBase:
    """Shared node-voltage lookup for analysis results."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit

    def _node_column(self, name: str) -> int:
        return self.circuit.node_index(name)


class OPResult(_ResultBase):
    """DC operating point: a single solution vector."""

    def __init__(self, circuit: Circuit, x: np.ndarray,
                 iterations: int = 0, strategy: str = "newton") -> None:
        super().__init__(circuit)
        self.x = np.asarray(x, dtype=float)
        self.iterations = iterations
        self.strategy = strategy

    def v(self, node: str) -> float:
        """DC voltage of a node (ground reads 0)."""
        idx = self._node_column(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def branch_current(self, source_name: str) -> float:
        """Branch current of a voltage source (SPICE sign convention:
        current flowing from + through the source to -)."""
        elem = self.circuit[source_name]
        if not isinstance(elem, VoltageSource):
            raise AnalysisError(f"{source_name!r} is not a voltage source")
        return elem.branch_current(self.x)

    def element_info(self, name: str) -> dict[str, float]:
        """Per-element operating details (id/gm/gds for MOSFETs, ...)."""
        return self.circuit[name].op_info(self.x)

    def supply_power(self, *source_names: str) -> float:
        """Total power delivered by the named supplies (positive = sourced)."""
        total = 0.0
        for name in source_names:
            info = self.circuit[name].op_info(self.x)
            total -= info["v"] * info["i"]
        return total

    def as_dict(self) -> dict[str, float]:
        return {name: self.v(name) for name in self.circuit.node_names()}


class SweepResult(_ResultBase):
    """DC sweep: one solution per swept value."""

    def __init__(self, circuit: Circuit, values: np.ndarray, xs: np.ndarray) -> None:
        super().__init__(circuit)
        self.values = np.asarray(values, dtype=float)
        self.xs = np.asarray(xs, dtype=float)

    def v(self, node: str) -> np.ndarray:
        idx = self._node_column(node)
        if idx < 0:
            return np.zeros(len(self.values))
        return self.xs[:, idx].copy()

    def branch_current(self, source_name: str) -> np.ndarray:
        elem = self.circuit[source_name]
        if not isinstance(elem, VoltageSource):
            raise AnalysisError(f"{source_name!r} is not a voltage source")
        return np.array([elem.branch_current(x) for x in self.xs])


class ACResult(_ResultBase):
    """AC sweep: complex solutions over frequency."""

    def __init__(self, circuit: Circuit, freqs: np.ndarray, xs: np.ndarray) -> None:
        super().__init__(circuit)
        self.freqs = np.asarray(freqs, dtype=float)
        self.xs = np.asarray(xs, dtype=complex)

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage vs frequency."""
        idx = self._node_column(node)
        if idx < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.xs[:, idx].copy()

    def transfer(self, out_node: str, out_node_neg: str | None = None) -> np.ndarray:
        """Differential output voltage (the input excitation is whatever AC
        sources the circuit defines, typically magnitude 1)."""
        out = self.v(out_node)
        if out_node_neg is not None:
            out = out - self.v(out_node_neg)
        return out


class TransientResult(_ResultBase):
    """Transient: solutions over time."""

    def __init__(self, circuit: Circuit, times: np.ndarray, xs: np.ndarray) -> None:
        super().__init__(circuit)
        self.times = np.asarray(times, dtype=float)
        self.xs = np.asarray(xs, dtype=float)

    def v(self, node: str) -> np.ndarray:
        idx = self._node_column(node)
        if idx < 0:
            return np.zeros(len(self.times))
        return self.xs[:, idx].copy()

    def branch_current(self, source_name: str) -> np.ndarray:
        elem = self.circuit[source_name]
        if not isinstance(elem, VoltageSource):
            raise AnalysisError(f"{source_name!r} is not a voltage source")
        return np.array([elem.branch_current(x) for x in self.xs])


class NoiseResult(_ResultBase):
    """Small-signal noise analysis at a designated output node."""

    def __init__(self, circuit: Circuit, freqs: np.ndarray,
                 output_psd: np.ndarray,
                 contributions: dict[str, np.ndarray],
                 gain: np.ndarray | None = None) -> None:
        super().__init__(circuit)
        self.freqs = np.asarray(freqs, dtype=float)
        self.output_psd = np.asarray(output_psd, dtype=float)  # V^2/Hz
        self.contributions = contributions
        self.gain = None if gain is None else np.asarray(gain, dtype=complex)

    @property
    def input_referred_psd(self) -> np.ndarray:
        """Input-referred PSD (units depend on the input source type)."""
        if self.gain is None:
            raise AnalysisError("noise analysis ran without an input source")
        mag2 = np.abs(self.gain) ** 2
        mag2 = np.where(mag2 <= 0, np.inf, mag2)
        return self.output_psd / mag2

    def integrated_output_noise(self, f_lo: float | None = None,
                                f_hi: float | None = None) -> float:
        """RMS output noise over [f_lo, f_hi] via trapezoidal integration."""
        mask = np.ones_like(self.freqs, dtype=bool)
        if f_lo is not None:
            mask &= self.freqs >= f_lo
        if f_hi is not None:
            mask &= self.freqs <= f_hi
        if mask.sum() < 2:
            raise AnalysisError("noise integration needs at least 2 points in band")
        return float(np.sqrt(np.trapezoid(self.output_psd[mask], self.freqs[mask])))
