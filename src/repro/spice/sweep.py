"""Generic element-parameter sweeps (beyond source-value DC sweeps).

:func:`param_sweep` varies any numeric element attribute (a resistor's
``resistance``, a MOSFET's ``w``, a source's DC value...) and re-solves the
operating point at each step, warm-starting from the previous solution —
the workhorse behind "plot gain vs W1" design exploration.

Note: attributes that feed *cached* derived state are handled — MOSFET
geometry changes refresh the device's capacitance cache.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.spice.dc import operating_point
from repro.spice.elements import Mosfet
from repro.spice.exceptions import AnalysisError
from repro.spice.netlist import Circuit
from repro.spice.results import OPResult


def _set_param(element, attr: str, value: float) -> None:
    if not hasattr(element, attr):
        raise AnalysisError(
            f"element {element.name!r} has no attribute {attr!r}")
    setattr(element, attr, float(value))
    if isinstance(element, Mosfet) and attr in ("w", "l"):
        # Refresh the geometry-derived capacitance cache.
        caps = element.model.capacitances(element.w, element.l)
        element._caps = {k: v * element.m for k, v in caps.items()}
        element._cap_edges = [
            (ta, tb, element._caps[key])
            for (ta, tb, _), key in zip(element._cap_edges,
                                        ("cgs", "cgd", "cdb", "csb"))
        ]


def param_sweep(circuit: Circuit, element_name: str, attr: str,
                values: np.ndarray,
                measure: Callable[[OPResult], float] | None = None,
                restore: bool = True) -> np.ndarray:
    """Sweep ``circuit[element_name].<attr>`` over ``values``.

    Returns the array of ``measure(op)`` results (default: the operating
    point's full solution vectors, shape (n, size)).  The original
    attribute value is restored afterwards unless ``restore=False``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.spice import Circuit
    >>> ckt = Circuit()
    >>> _ = ckt.add_vsource("V1", "in", "0", 1.0)
    >>> _ = ckt.add_resistor("R1", "in", "out", 1e3)
    >>> _ = ckt.add_resistor("R2", "out", "0", 1e3)
    >>> vs = param_sweep(ckt, "R2", "resistance", np.array([1e3, 3e3]),
    ...                  measure=lambda op: op.v("out"))
    >>> np.round(vs, 3)
    array([0.5 , 0.75])
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("empty sweep")
    elem = circuit[element_name]
    if not hasattr(elem, attr):
        raise AnalysisError(f"element {element_name!r} has no {attr!r}")
    original = getattr(elem, attr)
    out: list = []
    guess = None
    try:
        for value in values:
            _set_param(elem, attr, value)
            op = operating_point(circuit, x0=guess)
            guess = op.x
            out.append(measure(op) if measure is not None else op.x.copy())
    finally:
        if restore:
            _set_param(elem, attr, original)
    return np.array(out)
