"""DC small-signal transfer function (SPICE ``.TF`` equivalent).

Computes, from one linearized solve at the operating point:

* the DC gain from an independent source to an output node,
* the input resistance seen by that source,
* the output resistance at the output node.

Capacitors are open and inductors short at DC, exactly as in ``.TF``.
Implementation: three real linear solves on the small-signal system — one
with the input source active, one with a unit current at the output (for
R_out), and one with the input's own excitation pattern (for R_in).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.elements import CurrentSource, VoltageSource
from repro.spice.exceptions import AnalysisError
from repro.spice.netlist import Circuit
from repro.spice.results import OPResult

# A tiny but nonzero frequency keeps inductor branches well-conditioned
# while leaving capacitive admittances negligible.
_OMEGA_DC = 1e-3


@dataclass(frozen=True)
class TransferFunction:
    """Result of :func:`transfer_function`."""

    gain: float
    input_resistance: float
    output_resistance: float


def _solve(circuit: Circuit, x_op: np.ndarray, z: np.ndarray) -> np.ndarray:
    sys = circuit.assemble_ac(x_op, _OMEGA_DC)
    a = sys.A
    try:
        return np.real(np.linalg.solve(a, z.astype(complex)))
    except np.linalg.LinAlgError as exc:
        raise AnalysisError(f"singular small-signal system: {exc}") from exc


def transfer_function(circuit: Circuit, input_source: str, output_node: str,
                      x_op: np.ndarray | OPResult | None = None
                      ) -> TransferFunction:
    """SPICE ``.TF v(output_node) input_source``.

    For a voltage-source input the gain is V(out)/V_in and the input
    resistance is the resistance seen by the source; for a current-source
    input the gain is V(out)/I_in (a transresistance).
    """
    from repro.spice.dc import operating_point

    if x_op is None:
        x_op = operating_point(circuit).x
    elif isinstance(x_op, OPResult):
        x_op = x_op.x
    src = circuit[input_source]
    out_idx = circuit.node_index(output_node)
    if out_idx < 0:
        raise AnalysisError("output node cannot be ground")
    n = circuit.size

    circuit.ensure_bound()
    if isinstance(src, VoltageSource):
        # Excite the source branch with 1 V.
        z = np.zeros(n)
        z[src.branch_start] = 1.0
        x = _solve(circuit, x_op, z)
        gain = float(x[out_idx])
        i_in = float(x[src.branch_start])
        rin = np.inf if abs(i_in) < 1e-30 else abs(1.0 / i_in)
    elif isinstance(src, CurrentSource):
        # Unit current from pos through the source into neg.
        z = np.zeros(n)
        p, m = src.nodes
        if p >= 0:
            z[p] -= 1.0
        if m >= 0:
            z[m] += 1.0
        x = _solve(circuit, x_op, z)
        gain = float(x[out_idx])
        vp = x[p] if p >= 0 else 0.0
        vm = x[m] if m >= 0 else 0.0
        rin = abs(float(vp - vm))
    else:
        raise AnalysisError(f"{input_source!r} is not an independent source")

    # Output resistance: unit current into the output node, input dead.
    z = np.zeros(n)
    z[out_idx] = 1.0
    x = _solve(circuit, x_op, z)
    rout = abs(float(x[out_idx]))
    return TransferFunction(gain=gain, input_resistance=rin,
                            output_resistance=rout)
