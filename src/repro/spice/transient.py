"""Transient analysis with trapezoidal/backward-Euler integration.

The output grid is uniform (``dt``); inside a grid step the solver halves
the local step on Newton failure (up to ``MAX_HALVINGS`` times), committing
element states after every accepted substep.  The first substep after t=0
always uses backward Euler to damp the trapezoidal rule's start-up ringing.
"""

from __future__ import annotations

import numpy as np

from repro.spice.dc import _newton, operating_point
from repro.spice.exceptions import ConvergenceError
from repro.spice.mna import StampContext
from repro.spice.netlist import Circuit
from repro.spice.results import OPResult, TransientResult

MAX_HALVINGS = 8


def transient_analysis(circuit: Circuit, t_stop: float, dt: float,
                       x0: np.ndarray | OPResult | None = None,
                       integ: str = "trap",
                       use_ic: bool = False) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop`` with output step ``dt``.

    Parameters
    ----------
    x0:
        Starting solution; by default the DC operating point at t=0 sources.
    integ:
        ``"trap"`` (default) or ``"be"``.
    use_ic:
        When True, skip the DC solve and start from all-zeros plus element
        initial conditions (SPICE ``uic``).
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise ValueError("need 0 < dt <= t_stop")
    if integ not in ("trap", "be"):
        raise ValueError("integ must be 'trap' or 'be'")

    circuit.ensure_bound()
    if use_ic:
        x = np.zeros(circuit.size)
    elif x0 is None:
        x = operating_point(circuit).x.copy()
    elif isinstance(x0, OPResult):
        x = x0.x.copy()
    else:
        x = np.asarray(x0, dtype=float).copy()

    for elem in circuit.elements:
        elem.init_state(x)

    n_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    xs = np.empty((n_steps + 1, circuit.size))
    xs[0] = x

    t = 0.0
    first_substep = True
    for k in range(1, n_steps + 1):
        t_target = times[k]
        while t < t_target - 1e-18 * max(1.0, t_target):
            remaining = t_target - t
            h = remaining
            level = 0
            while True:
                method = "be" if (first_substep or integ == "be") else "trap"
                ctx = StampContext(analysis="tran", time=t + h, dt=h,
                                   integ=method)
                try:
                    x_new, _ = _newton(circuit, x, ctx, max_iter=60)
                    break
                except ConvergenceError:
                    level += 1
                    if level > MAX_HALVINGS:
                        raise ConvergenceError(
                            f"transient stuck at t={t:g}s "
                            f"(circuit {circuit.title!r})"
                        ) from None
                    h *= 0.5
            for elem in circuit.elements:
                elem.update_state(x_new, ctx)
            x = x_new
            t += h
            first_substep = False
        xs[k] = x
    return TransientResult(circuit, times, xs)
