"""SI-suffix parsing/formatting in SPICE conventions.

SPICE uses case-insensitive suffixes where ``m`` is milli and ``meg`` is
mega; this module follows that convention (``2k`` = 2e3, ``1meg`` = 1e6,
``100f`` = 1e-13).
"""

from __future__ import annotations

import re

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z]*)\s*$"
)


def parse_si(text: str | float | int) -> float:
    """Parse ``"2.2k"``, ``"100f"``, ``"1meg"``, ``4.7e-12`` ... to a float.

    Trailing unit letters after a recognized suffix are ignored the way
    SPICE does (``"10kohm"`` -> 1e4, ``"100nF"`` -> 1e-7).
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse SI value {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return value
    if suffix.startswith("meg"):
        return value * 1e6
    mult = _SUFFIXES.get(suffix[0])
    if mult is None:
        # Unknown letters (e.g. "V", "Hz") are units, not multipliers.
        return value
    return value * mult


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format a float with an engineering SI prefix, e.g. ``2.2e-13`` ->
    ``"220f"`` (plus the unit string if given)."""
    if value == 0.0:
        return f"0{unit}"
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "meg"),  # SPICE: plain "M" is milli, so mega prints as "meg"
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
    ]
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g}{prefix}{unit}"
    return f"{value:.{digits}g}{unit}"
