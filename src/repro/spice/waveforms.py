"""Time-domain waveforms for independent sources.

Each waveform is a callable ``value(t)``; ``t=None`` means "DC operating
point", for which sources report their DC/initial value.
"""

from __future__ import annotations

import math
from bisect import bisect_right


class Waveform:
    """Base waveform; subclasses implement :meth:`value`."""

    def value(self, t: float | None) -> float:
        raise NotImplementedError

    def dc_value(self) -> float:
        return self.value(None)

    def __call__(self, t: float | None) -> float:
        return self.value(t)


class DCWave(Waveform):
    """Constant value at all times."""

    def __init__(self, value: float) -> None:
        self._value = float(value)

    def value(self, t: float | None) -> float:
        del t
        return self._value

    def __repr__(self) -> str:
        return f"DCWave({self._value})"


class Pulse(Waveform):
    """SPICE PULSE(v1 v2 td tr tf pw per) waveform.

    ``v1`` initial value, ``v2`` pulsed value, ``td`` delay, ``tr``/``tf``
    rise/fall times, ``pw`` pulse width, ``per`` period (0 = single pulse).
    """

    def __init__(
        self,
        v1: float,
        v2: float,
        td: float = 0.0,
        tr: float = 1e-9,
        tf: float = 1e-9,
        pw: float = 1e-3,
        per: float = 0.0,
    ) -> None:
        if tr < 0 or tf < 0 or pw < 0 or td < 0 or per < 0:
            raise ValueError("pulse timing parameters must be non-negative")
        self.v1, self.v2 = float(v1), float(v2)
        self.td, self.tr, self.tf, self.pw, self.per = (
            float(td),
            max(float(tr), 1e-15),
            max(float(tf), 1e-15),
            float(pw),
            float(per),
        )

    def value(self, t: float | None) -> float:
        if t is None:
            return self.v1
        tl = t - self.td
        if tl < 0:
            return self.v1
        if self.per > 0:
            tl = math.fmod(tl, self.per)
        if tl < self.tr:
            return self.v1 + (self.v2 - self.v1) * tl / self.tr
        tl -= self.tr
        if tl < self.pw:
            return self.v2
        tl -= self.pw
        if tl < self.tf:
            return self.v2 + (self.v1 - self.v2) * tl / self.tf
        return self.v1

    def breakpoints(self) -> list[float]:
        """Corner times within the first period (for step control)."""
        pts = [
            self.td,
            self.td + self.tr,
            self.td + self.tr + self.pw,
            self.td + self.tr + self.pw + self.tf,
        ]
        return pts


class Sine(Waveform):
    """SPICE SIN(vo va freq td theta) waveform."""

    def __init__(
        self,
        vo: float,
        va: float,
        freq: float,
        td: float = 0.0,
        theta: float = 0.0,
    ) -> None:
        if freq <= 0:
            raise ValueError("sine frequency must be positive")
        self.vo, self.va, self.freq = float(vo), float(va), float(freq)
        self.td, self.theta = float(td), float(theta)

    def value(self, t: float | None) -> float:
        if t is None:
            return self.vo
        if t < self.td:
            return self.vo
        dt = t - self.td
        damp = math.exp(-dt * self.theta) if self.theta else 1.0
        return self.vo + self.va * damp * math.sin(2.0 * math.pi * self.freq * dt)


class PieceWiseLinear(Waveform):
    """SPICE PWL waveform: linear interpolation through (t, v) points."""

    def __init__(self, points: list[tuple[float, float]]) -> None:
        if len(points) < 1:
            raise ValueError("PWL needs at least one point")
        times = [float(t) for t, _ in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self.times = times
        self.values = [float(v) for _, v in points]

    def value(self, t: float | None) -> float:
        if t is None:
            return self.values[0]
        if t <= self.times[0]:
            return self.values[0]
        if t >= self.times[-1]:
            return self.values[-1]
        idx = bisect_right(self.times, t) - 1
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = self.values[idx], self.values[idx + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self) -> list[float]:
        return list(self.times)


def as_waveform(value: "float | Waveform") -> Waveform:
    """Coerce a plain number to :class:`DCWave`."""
    if isinstance(value, Waveform):
        return value
    return DCWave(float(value))
