"""Terminal plotting for waveforms and Bode data (no plotting libraries).

The repo is dependency-free beyond numpy/scipy, so quick-look plots render
as unicode-free ASCII: :func:`line_plot` for transient waveforms and sweep
results, :func:`bode_plot` for AC magnitude/phase.  Examples use these;
for publication plots export the raw arrays instead.
"""

from __future__ import annotations

import numpy as np


def line_plot(x: np.ndarray, y: np.ndarray, width: int = 70,
              height: int = 16, title: str = "", x_label: str = "x",
              y_label: str = "y", marker: str = "*") -> str:
    """Render one series as ASCII art.

    >>> import numpy as np
    >>> art = line_plot(np.linspace(0, 1, 50), np.linspace(0, 1, 50))
    >>> "*" in art
    True
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need matching x/y arrays with >= 2 points")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    y_lo, y_hi = float(np.min(y)), float(np.max(y))
    if y_hi - y_lo < 1e-300:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x[0]), float(x[-1])
    span_x = x_hi - x_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x_lo) / span_x * (width - 1))
        row = int((y_hi - yi) / (y_hi - y_lo) * (height - 1))
        grid[row][col] = marker
    lines = [title] if title else []
    lines.append(f"{y_label}: {y_lo:.4g} .. {y_hi:.4g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)


def multi_line_plot(x: np.ndarray, series: dict[str, np.ndarray],
                    width: int = 70, height: int = 16,
                    title: str = "") -> str:
    """Overlay several named series (markers a, b, c, ... with a legend)."""
    if not series:
        raise ValueError("no series to plot")
    x = np.asarray(x, dtype=float)
    ys = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    all_y = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(np.min(all_y)), float(np.max(all_y))
    if y_hi - y_lo < 1e-300:
        y_hi = y_lo + 1.0
    span_x = float(x[-1] - x[0]) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (name, y), mark in zip(ys.items(), "abcdefgh"):
        legend.append(f"  {mark} = {name}")
        for xi, yi in zip(x, y):
            col = int((xi - x[0]) / span_x * (width - 1))
            row = int((y_hi - yi) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"y: {y_lo:.4g} .. {y_hi:.4g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"  x: {x[0]:.4g} .. {x[-1]:.4g}")
    lines.extend(legend)
    return "\n".join(lines)


def bode_plot(freqs: np.ndarray, h: np.ndarray, width: int = 70,
              height: int = 12, title: str = "") -> str:
    """Magnitude (dB) and phase (deg) of a transfer function vs log f."""
    freqs = np.asarray(freqs, dtype=float)
    h = np.asarray(h)
    if np.any(freqs <= 0):
        raise ValueError("Bode plots need positive frequencies")
    lf = np.log10(freqs)
    mag_db = 20.0 * np.log10(np.maximum(np.abs(h), 1e-30))
    phase = np.degrees(np.unwrap(np.angle(h)))
    mag = line_plot(lf, mag_db, width=width, height=height,
                    title=title or "magnitude",
                    x_label="log10(f/Hz)", y_label="dB")
    ph = line_plot(lf, phase, width=width, height=max(6, height // 2),
                   title="phase", x_label="log10(f/Hz)", y_label="deg",
                   marker=".")
    return mag + "\n" + ph
