"""Deliberately racy shared counter — the seeded cross-prong fixture.

``add`` takes the lock; ``add_fast`` skips it.  The static lockset pass
(:mod:`repro.analysis.locks`) must flag the unguarded write in source,
and the runtime sanitizer (:mod:`repro.analysis.dynrace`) must observe
the same race when two threads actually interleave the two paths.  Keep
the bug: the tests assert it is caught, not that it is fixed.
"""

import threading


class RacyCounter:
    """Counts contributions from many threads — with one broken path."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total = self.total + n

    def add_fast(self, n):
        # BUG (deliberate): read-modify-write without the lock the
        # other writers hold.
        self.total = self.total + n

    def value(self):
        with self._lock:
            return self.total
