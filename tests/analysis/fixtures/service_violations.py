# repro: taint-module
"""Seeded cross-pass fixture: the SAME handler both leaks an untrusted
spec field into a filesystem path (flow.taint.path) and resurrects a
terminal job state (proto.state.terminal).  Both analyzers must fire on
this file; neither may fire on the clean twin in the tests.

This file is test data, never imported by the package.
"""

import pathlib

JOB_STATES = ("queued", "running", "finished", "failed")
TERMINAL_JOB_STATES = ("finished", "failed")
JOB_TRANSITIONS = (
    ("queued", "running"),
    ("running", "finished"),
    ("running", "failed"),
)


def retry_finished(job, spec):
    # proto.state.terminal: 'finished' is terminal, no resurrection
    if job.state == "finished":
        job.state = "queued"
    # flow.taint.path: client-controlled tenant becomes a directory name
    run_dir = pathlib.Path("runs") / spec["tenant"]
    return run_dir
