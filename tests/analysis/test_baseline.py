"""Tests for the baseline ratchet (freeze existing findings, fail new)."""

import json

import pytest

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.diagnostics import Diagnostic, Severity


def diag(rule="flow.rng.unseeded", location="src/m.py:10", message="msg",
         severity=Severity.WARNING):
    return Diagnostic(rule=rule, severity=severity, message=message,
                      location=location)


class TestFingerprint:
    def test_line_number_independent(self):
        assert fingerprint(diag(location="src/m.py:10")) \
            == fingerprint(diag(location="src/m.py:999"))

    def test_path_sensitive(self):
        assert fingerprint(diag(location="src/a.py:10")) \
            != fingerprint(diag(location="src/b.py:10"))

    def test_rule_and_message_sensitive(self):
        assert fingerprint(diag(rule="x.a")) != fingerprint(diag(rule="x.b"))
        assert fingerprint(diag(message="m1")) \
            != fingerprint(diag(message="m2"))


class TestRatchet:
    def test_frozen_findings_suppressed(self):
        d = diag()
        b = Baseline.from_diagnostics([d])
        res = b.apply([d])
        assert res.suppressed == [d] and not res.new and not res.stale

    def test_new_finding_surfaces(self):
        b = Baseline.from_diagnostics([diag()])
        extra = diag(rule="flow.conc.global-write",
                     severity=Severity.ERROR)
        res = b.apply([diag(), extra])
        assert res.new == [extra]

    def test_line_shift_does_not_resurrect(self):
        b = Baseline.from_diagnostics([diag(location="src/m.py:10")])
        assert b.apply([diag(location="src/m.py:42")]).new == []

    def test_counts_bound_duplicates(self):
        two = [diag(), diag()]
        b = Baseline.from_diagnostics(two)
        res = b.apply(two + [diag()])
        assert len(res.suppressed) == 2 and len(res.new) == 1

    def test_stale_entries_reported(self):
        b = Baseline.from_diagnostics([diag()])
        res = b.apply([])
        assert res.stale == [fingerprint(diag())]

    def test_empty_baseline_is_strict(self):
        res = Baseline().apply([diag()])
        assert len(res.new) == 1


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        p = tmp_path / "lint-baseline.json"
        b = Baseline.from_diagnostics([diag(), diag(rule="x.y")])
        b.save(p)
        b2 = Baseline.load(p)
        assert b2.counts == b.counts
        data = json.loads(p.read_text())
        assert data["schema"] == 1
        assert all("summary" in e for e in data["findings"].values())

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_unknown_schema_rejected(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"schema": 99, "findings": {}}))
        with pytest.raises(ValueError):
            Baseline.load(p)


class TestCommittedBaseline:
    def test_repo_baseline_screens_the_live_findings(self, monkeypatch):
        # The committed lint-baseline.json must keep screening exactly
        # what `ma-opt lint --code src/repro --flow` finds today.
        # Fingerprints embed the path as written, so run from the repo
        # root with the same relative path CI uses.
        import pathlib

        from repro.analysis.rngflow import check_paths

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        baseline = Baseline.load("lint-baseline.json")
        res = baseline.apply(check_paths(["src/repro"]))
        assert res.new == [], [d.render() for d in res.new]
