"""Tests for the incremental analysis result cache."""

import time

from repro.analysis.cache import (
    AnalysisCache,
    analyzer_fingerprint,
    content_hash,
)
from repro.analysis.codelint import CODE_RULES
from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity

DIAG = Diagnostic(rule="code.bare-except", severity=Severity.WARNING,
                  message="msg", location="x.py:3", fix="narrow it")


class TestKeys:
    def test_content_hash_is_content_only(self):
        assert content_hash("abc") == content_hash("abc")
        assert content_hash("abc") != content_hash("abd")

    def test_fingerprint_changes_with_rules(self):
        a = RuleSet()
        a.add("r.one", Severity.ERROR, "one")
        b = RuleSet()
        b.add("r.one", Severity.ERROR, "one")
        assert analyzer_fingerprint("x", a) == analyzer_fingerprint("x", b)
        b.add("r.two", Severity.WARNING, "two")
        assert analyzer_fingerprint("x", a) != analyzer_fingerprint("x", b)

    def test_fingerprint_changes_with_version(self):
        assert analyzer_fingerprint("x", CODE_RULES, version="1") \
            != analyzer_fingerprint("x", CODE_RULES, version="2")


class TestStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        p = tmp_path / "cache.json"
        c = AnalysisCache.load(p)
        assert c.get("fp", "x.py", "src") is None
        c.put("fp", "x.py", "src", [DIAG])
        assert c.get("fp", "x.py", "src") == [DIAG]
        assert (c.hits, c.misses) == (1, 1)
        c.save()
        c2 = AnalysisCache.load(p)
        assert c2.get("fp", "x.py", "src") == [DIAG]

    def test_path_is_part_of_the_key(self, tmp_path):
        c = AnalysisCache.load(tmp_path / "cache.json")
        c.put("fp", "a.py", "src", [DIAG])
        assert c.get("fp", "b.py", "src") is None

    def test_content_change_misses(self, tmp_path):
        c = AnalysisCache.load(tmp_path / "cache.json")
        c.put("fp", "a.py", "v1", [DIAG])
        assert c.get("fp", "a.py", "v2") is None

    def test_corrupt_store_starts_empty(self, tmp_path):
        p = tmp_path / "cache.json"
        p.write_text("{not json")
        c = AnalysisCache.load(p)
        assert len(c) == 0

    def test_cached_call_runs_once(self, tmp_path):
        calls = []

        def run(source, path):
            calls.append(path)
            return [DIAG]

        c = AnalysisCache.load(tmp_path / "cache.json")
        out1 = c.cached_call("fp", "x.py", "src", run)
        out2 = c.cached_call("fp", "x.py", "src", run)
        assert out1 == out2 == [DIAG]
        assert calls == ["x.py"]


class TestSpeedup:
    def test_second_run_is_measurably_faster(self, tmp_path):
        # Acceptance criterion: the cache-hit path beats re-analysis.
        import pathlib

        import repro
        from repro.analysis.rngflow import RNG_RULES, check_source

        root = pathlib.Path(repro.__file__).parent
        sources = [(str(f), f.read_text(encoding="utf-8"))
                   for f in sorted((root / "core").glob("*.py"))]
        fp = analyzer_fingerprint("rngflow", RNG_RULES)
        cache = AnalysisCache.load(tmp_path / "cache.json")

        def sweep():
            t0 = time.perf_counter()
            out = [cache.cached_call(fp, path, text, check_source)
                   for path, text in sources]
            return out, time.perf_counter() - t0

        cold, t_cold = sweep()
        warm, t_warm = sweep()
        assert [list(map(lambda d: d.to_dict(), g)) for g in cold] \
            == [list(map(lambda d: d.to_dict(), g)) for g in warm]
        assert cache.hits == len(sources)
        assert t_warm < t_cold / 2, (t_cold, t_warm)
