"""Tests for the ``repro lint`` CLI command."""

import json
import pathlib

import pytest

from repro.cli import main

BROKEN_DECK = """\
V1 a 0 DC 1.8
V2 a 0 DC 3.3
R1 a dangle 1k
.end
"""

CLEAN_DECK = """\
V1 in 0 DC 1
R1 in out 1k
R2 out 0 1k
.end
"""


@pytest.fixture
def broken_deck(tmp_path):
    path = tmp_path / "broken.sp"
    path.write_text(BROKEN_DECK, encoding="utf-8")
    return str(path)


@pytest.fixture
def clean_deck(tmp_path):
    path = tmp_path / "clean.sp"
    path.write_text(CLEAN_DECK, encoding="utf-8")
    return str(path)


class TestDeckTargets:
    def test_broken_deck_exits_one(self, broken_deck, capsys):
        assert main(["lint", broken_deck]) == 1
        out = capsys.readouterr().out
        assert "erc.vsource-loop" in out
        assert "erc.floating-node" in out
        assert "error(s)" in out

    def test_clean_deck_exits_zero(self, clean_deck, capsys):
        assert main(["lint", clean_deck]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_shipped_example_is_broken(self, capsys):
        example = (pathlib.Path(__file__).resolve().parents[2]
                   / "examples" / "broken_netlist.sp")
        assert main(["lint", str(example)]) == 1
        out = capsys.readouterr().out
        for rule in ("erc.vsource-loop", "erc.floating-node",
                     "erc.no-dc-path", "erc.unit-suffix"):
            assert rule in out

    def test_json_format(self, broken_deck, capsys):
        assert main(["lint", broken_deck, "--format", "json"]) == 1
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert all(r["target"] == broken_deck for r in records)
        assert {"erc.vsource-loop", "erc.floating-node"} \
            <= {r["rule"] for r in records}

    def test_select_and_ignore(self, broken_deck, capsys):
        # Ignoring every firing rule leaves nothing -> exit 0.
        assert main(["lint", broken_deck, "--ignore", "erc"]) == 0
        assert main(["lint", broken_deck,
                     "--select", "erc.floating-node"]) == 1
        out = capsys.readouterr().out
        assert "erc.vsource-loop" not in out


class TestTaskTargets:
    def test_paper_tasks_lint_clean(self, capsys):
        assert main(["lint", "ota", "tia", "ldo"]) == 0
        out = capsys.readouterr().out
        assert out.count("clean: no findings") == 3
        assert "== ota ==" in out

    def test_unknown_target_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "rfmixer"])
        assert excinfo.value.code == 2


class TestConfigAndCode:
    def test_config_mode(self, capsys):
        assert main(["lint", "--config", "--task", "ota",
                     "--sims", "200", "--init", "100"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_code_mode_on_fixture(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n", encoding="utf-8")
        assert main(["lint", "--code", str(bad)]) == 1
        assert "code.pickle" in capsys.readouterr().out

    def test_code_mode_missing_path(self):
        with pytest.raises(SystemExit):
            main(["lint", "--code", "/no/such/path"])

    def test_nothing_to_lint_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err
