"""Tests for the ``repro lint`` CLI command."""

import json
import pathlib

import pytest

from repro.cli import main

BROKEN_DECK = """\
V1 a 0 DC 1.8
V2 a 0 DC 3.3
R1 a dangle 1k
.end
"""

CLEAN_DECK = """\
V1 in 0 DC 1
R1 in out 1k
R2 out 0 1k
.end
"""


@pytest.fixture
def broken_deck(tmp_path):
    path = tmp_path / "broken.sp"
    path.write_text(BROKEN_DECK, encoding="utf-8")
    return str(path)


@pytest.fixture
def clean_deck(tmp_path):
    path = tmp_path / "clean.sp"
    path.write_text(CLEAN_DECK, encoding="utf-8")
    return str(path)


class TestDeckTargets:
    def test_broken_deck_exits_one(self, broken_deck, capsys):
        assert main(["lint", broken_deck]) == 1
        out = capsys.readouterr().out
        assert "erc.vsource-loop" in out
        assert "erc.floating-node" in out
        assert "error(s)" in out

    def test_clean_deck_exits_zero(self, clean_deck, capsys):
        assert main(["lint", clean_deck]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_shipped_example_is_broken(self, capsys):
        example = (pathlib.Path(__file__).resolve().parents[2]
                   / "examples" / "broken_netlist.sp")
        assert main(["lint", str(example)]) == 1
        out = capsys.readouterr().out
        for rule in ("erc.vsource-loop", "erc.floating-node",
                     "erc.no-dc-path", "erc.unit-suffix"):
            assert rule in out

    def test_json_format(self, broken_deck, capsys):
        assert main(["lint", broken_deck, "--format", "json"]) == 1
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert all(r["target"] == broken_deck for r in records)
        assert {"erc.vsource-loop", "erc.floating-node"} \
            <= {r["rule"] for r in records}

    def test_select_and_ignore(self, broken_deck, capsys):
        # Ignoring every firing rule leaves nothing -> exit 0.
        assert main(["lint", broken_deck, "--ignore", "erc"]) == 0
        assert main(["lint", broken_deck,
                     "--select", "erc.floating-node"]) == 1
        out = capsys.readouterr().out
        assert "erc.vsource-loop" not in out


class TestTaskTargets:
    def test_paper_tasks_lint_clean(self, capsys):
        assert main(["lint", "ota", "tia", "ldo"]) == 0
        out = capsys.readouterr().out
        assert out.count("clean: no findings") == 3
        assert "== ota ==" in out

    def test_unknown_target_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "rfmixer"])
        assert excinfo.value.code == 2


class TestConfigAndCode:
    def test_config_mode(self, capsys):
        assert main(["lint", "--config", "--task", "ota",
                     "--sims", "200", "--init", "100"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_code_mode_on_fixture(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n", encoding="utf-8")
        assert main(["lint", "--code", str(bad)]) == 1
        assert "code.pickle" in capsys.readouterr().out

    def test_code_mode_missing_path(self):
        with pytest.raises(SystemExit):
            main(["lint", "--code", "/no/such/path"])

    def test_nothing_to_lint_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err


GOOD_FLOW = "def sample(rng, n):\n    return rng.uniform(size=n)\n"
BAD_FLOW = ("import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "def sample(n):\n"
            "    return rng.uniform(size=n)\n")


class TestPrefixValidation:
    def test_unknown_select_prefix_exits_two(self, clean_deck, capsys):
        assert main(["lint", clean_deck, "--select", "bogus.rule"]) == 2
        assert "matching no registered rule" in capsys.readouterr().err

    def test_unknown_ignore_prefix_exits_two(self, clean_deck, capsys):
        assert main(["lint", clean_deck, "--ignore", "nope"]) == 2

    def test_known_prefixes_accepted(self, clean_deck):
        assert main(["lint", clean_deck, "--select", "erc",
                     "--ignore", "erc.unit-suffix"]) == 0

    def test_flow_and_shape_prefixes_registered(self, clean_deck):
        assert main(["lint", clean_deck, "--select", "flow.rng",
                     "--ignore", "shape"]) == 0


class TestFlowAndShapes:
    def test_flow_finds_global_rng_sampling(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FLOW, encoding="utf-8")
        assert main(["lint", "--code", str(bad), "--flow",
                     "--no-cache"]) == 1
        assert "flow.rng.no-param" in capsys.readouterr().out

    def test_without_flow_flag_silent(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FLOW, encoding="utf-8")
        assert main(["lint", "--code", str(bad), "--no-cache"]) == 0

    def test_shapes_alone_is_a_valid_invocation(self, capsys):
        assert main(["lint", "--shapes"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repo_gate_invocation_with_baseline(self, monkeypatch, capsys):
        # The exact CI gate: everything on, screened by the committed
        # baseline, must exit 0.  The ratchet has closed — the baseline
        # is empty, so nothing may be suppressed either.
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        assert main(["lint", "--code", "src/repro", "--flow", "--shapes",
                     "--locks", "--no-cache",
                     "--baseline", "lint-baseline.json"]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings" in out
        assert "baseline-suppressed" not in out


class TestCacheFlag:
    def test_cache_populated_and_hit(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text(GOOD_FLOW, encoding="utf-8")
        cache = tmp_path / "cache.json"
        assert main(["lint", "--code", str(good), "--flow",
                     "--cache", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "miss(es)" in first and cache.exists()
        assert main(["lint", "--code", str(good), "--flow",
                     "--cache", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in second

    def test_no_cache_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "good.py"
        good.write_text(GOOD_FLOW, encoding="utf-8")
        assert main(["lint", "--code", str(good), "--no-cache"]) == 0
        assert not (tmp_path / ".ma-opt-lint-cache.json").exists()
        assert "cache:" not in capsys.readouterr().out


class TestBaselineFlags:
    def test_update_then_screen_then_ratchet(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FLOW, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        # 1. freeze the pre-existing finding
        assert main(["lint", "--code", str(bad), "--flow", "--no-cache",
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert "froze 1 finding(s)" in capsys.readouterr().out
        # 2. screened run is clean
        assert main(["lint", "--code", str(bad), "--flow", "--no-cache",
                     "--baseline", str(baseline)]) == 0
        assert "1 baseline-suppressed" in capsys.readouterr().out
        # 3. a NEW finding still fails
        bad.write_text(BAD_FLOW + "import pickle\n", encoding="utf-8")
        assert main(["lint", "--code", str(bad), "--flow", "--no-cache",
                     "--baseline", str(baseline)]) == 1
        assert "code.pickle" in capsys.readouterr().out

    def test_missing_baseline_file_is_strict(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FLOW, encoding="utf-8")
        assert main(["lint", "--code", str(bad), "--flow", "--no-cache",
                     "--baseline", str(tmp_path / "absent.json")]) == 1


class TestSarifOut:
    def test_sarif_written_with_new_findings_only(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n", encoding="utf-8")
        sarif = tmp_path / "out.sarif"
        assert main(["lint", "--code", str(bad), "--no-cache",
                     "--sarif-out", str(sarif)]) == 1
        doc = json.loads(sarif.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["code.pickle"]
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"flow.rng.no-param", "shape.critic-io",
                "flow.conc.global-write"} <= rule_ids


#: serve-shaped module with one violation per service-boundary gate:
#: a client-only op, a terminal-state resurrection, and an unsanitized
#: spec-to-path flow.  Each must fail 'ma-opt lint' on its own.
GATE_DECLS = """\
JOB_STATES = ("queued", "running", "finished")
TERMINAL_JOB_STATES = ("finished",)
JOB_TRANSITIONS = (("queued", "running"), ("running", "finished"))
OPS = ("ping",)
ERROR_CODES = ()

def _dispatch(self, op, params):
    if op == "ping":
        return {}
    raise ValueError(op)

class Client:
    def ping(self):
        return self.request("ping")
"""


class TestServiceBoundaryGate:
    """The acceptance battery: each seeded violation fails the gate."""

    def _tree(self, tmp_path, extra):
        serve = tmp_path / "serve"
        serve.mkdir()
        (serve / "jobs.py").write_text(GATE_DECLS + extra,
                                       encoding="utf-8")
        return serve

    def test_clean_tree_passes(self, tmp_path):
        serve = self._tree(tmp_path, "")
        assert main(["lint", "--taint", "--proto", str(serve),
                     "--no-cache", "--proto-doc",
                     str(tmp_path / "absent.md")]) == 0

    def test_client_only_op_fails_gate(self, tmp_path, capsys):
        serve = self._tree(tmp_path, (
            "\nclass Wide(Client):\n"
            "    def legacy(self):\n"
            "        return self.request(\"legacy\")\n"))
        assert main(["lint", "--taint", "--proto", str(serve),
                     "--no-cache", "--proto-doc",
                     str(tmp_path / "absent.md")]) == 1
        assert "proto.op.client-only" in capsys.readouterr().out

    def test_illegal_transition_fails_gate(self, tmp_path, capsys):
        serve = self._tree(tmp_path, (
            "\ndef resurrect(job):\n"
            "    if job.state == \"finished\":\n"
            "        job.state = \"queued\"\n"))
        assert main(["lint", "--taint", "--proto", str(serve),
                     "--no-cache", "--proto-doc",
                     str(tmp_path / "absent.md")]) == 1
        assert "proto.state.terminal" in capsys.readouterr().out

    def test_unsanitized_path_flow_fails_gate(self, tmp_path, capsys):
        serve = self._tree(tmp_path, (
            "\nimport pathlib\n"
            "def run_dir(spec, base_dir):\n"
            "    return base_dir / spec[\"tenant\"]\n"))
        assert main(["lint", "--taint", "--proto", str(serve),
                     "--no-cache", "--proto-doc",
                     str(tmp_path / "absent.md")]) == 1
        assert "flow.taint.path" in capsys.readouterr().out

    def test_unit_passes_go_through_the_cache(self, tmp_path, capsys):
        serve = self._tree(tmp_path, "")
        cache = tmp_path / "cache.json"
        args = ["lint", "--taint", "--proto", str(serve),
                "--cache", str(cache), "--proto-doc",
                str(tmp_path / "absent.md")]
        assert main(args) == 0
        assert "0 hit(s), 2 miss(es)" in capsys.readouterr().out
        assert main(args) == 0
        assert "2 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_cache_invalidates_on_any_unit_file_change(self, tmp_path,
                                                       capsys):
        serve = self._tree(tmp_path, "")
        (serve / "extra.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        args = ["lint", "--taint", "--proto", str(serve),
                "--cache", str(cache), "--proto-doc",
                str(tmp_path / "absent.md")]
        assert main(args) == 0
        capsys.readouterr()
        (serve / "extra.py").write_text("x = 2\n", encoding="utf-8")
        assert main(args) == 0
        assert "0 hit(s), 2 miss(es)" in capsys.readouterr().out

    def test_all_shorthand_runs_every_pass(self, tmp_path, capsys):
        serve = self._tree(tmp_path, (
            "\ndef resurrect(job):\n"
            "    if job.state == \"finished\":\n"
            "        job.state = \"queued\"\n"))
        assert main(["lint", "--all", str(serve), "--no-cache",
                     "--proto-doc", str(tmp_path / "absent.md")]) == 1
        assert "proto.state.terminal" in capsys.readouterr().out

    def test_select_accepts_new_rule_prefixes(self, tmp_path, capsys):
        serve = self._tree(tmp_path, "")
        assert main(["lint", "--taint", "--proto", str(serve),
                     "--no-cache", "--select", "flow.taint",
                     "--select", "proto", "--proto-doc",
                     str(tmp_path / "absent.md")]) == 0
