"""Tests for the repo-invariant AST linter: each rule fires on a minimal
fixture and is silenced by a `# repro: ignore[...]` suppression."""

import textwrap

from repro.analysis.codelint import CODE_RULES, lint_paths, lint_source
from repro.analysis.diagnostics import Severity


def lint(snippet, **kw):
    return lint_source(textwrap.dedent(snippet), **kw)


def rules(diags):
    return {d.rule for d in diags}


class TestGlobalRng:
    def test_sampler_fires(self):
        diags = lint("import numpy as np\nx = np.random.uniform(0, 1)\n")
        assert rules(diags) == {"code.global-rng"}
        assert diags[0].severity == Severity.ERROR

    def test_full_module_spelling_fires(self):
        assert rules(lint("import numpy\nx = numpy.random.normal()\n")) \
            == {"code.global-rng"}

    def test_default_rng_allowed(self):
        assert lint("import numpy as np\nrng = np.random.default_rng(0)\n")\
            == []

    def test_generator_method_allowed(self):
        assert lint("def f(rng):\n    return rng.uniform(0, 1)\n") == []


class TestPickle:
    def test_import_fires(self):
        assert rules(lint("import pickle\n")) == {"code.pickle"}

    def test_from_import_fires(self):
        assert rules(lint("from pickle import loads\n")) == {"code.pickle"}

    def test_dill_fires(self):
        assert rules(lint("import dill\n")) == {"code.pickle"}

    def test_np_load_allow_pickle_fires(self):
        diags = lint("import numpy as np\nd = np.load('f.npz', "
                     "allow_pickle=True)\n")
        assert rules(diags) == {"code.pickle"}

    def test_np_load_without_flag_allowed(self):
        assert lint("import numpy as np\nd = np.load('f.npz')\n") == []
        assert lint("import numpy as np\nd = np.load('f.npz', "
                    "allow_pickle=False)\n") == []


class TestWallclock:
    SNIPPET = "import time\nt = time.time()\n"

    def test_fires_in_core(self):
        assert rules(lint(self.SNIPPET, in_core=True)) \
            == {"code.wallclock"}

    def test_silent_outside_core(self):
        assert lint(self.SNIPPET, in_core=False) == []

    def test_path_based_core_detection(self):
        diags = lint_source("import time\nt = time.time()\n",
                            path="src/repro/core/foo.py")
        assert rules(diags) == {"code.wallclock"}

    def test_datetime_now_fires(self):
        diags = lint("from datetime import datetime\n"
                     "t = datetime.now()\n", in_core=True)
        assert rules(diags) == {"code.wallclock"}

    def test_perf_counter_allowed(self):
        assert lint("import time\nt = time.perf_counter()\n",
                    in_core=True) == []


class TestMutableDefault:
    def test_literal_fires(self):
        assert rules(lint("def f(x=[]):\n    return x\n")) \
            == {"code.mutable-default"}

    def test_constructor_call_fires(self):
        assert rules(lint("def f(x=dict()):\n    return x\n")) \
            == {"code.mutable-default"}

    def test_kwonly_default_fires(self):
        assert rules(lint("def f(*, x={}):\n    return x\n")) \
            == {"code.mutable-default"}

    def test_none_default_allowed(self):
        assert lint("def f(x=None, y=(), z=0):\n    return x\n") == []


class TestBareExcept:
    def test_fires(self):
        snippet = """
        try:
            pass
        except:
            pass
        """
        assert rules(lint(snippet)) == {"code.bare-except"}

    def test_typed_handler_allowed(self):
        snippet = """
        try:
            pass
        except Exception:
            pass
        """
        assert lint(snippet) == []


class TestSuppression:
    def test_rule_scoped_suppression(self):
        assert lint("import pickle  # repro: ignore[code.pickle]\n") == []

    def test_prefix_suppression(self):
        assert lint("import pickle  # repro: ignore[code]\n") == []

    def test_blanket_suppression(self):
        assert lint("import pickle  # repro: ignore\n") == []

    def test_wrong_rule_does_not_suppress(self):
        diags = lint("import pickle  # repro: ignore[code.global-rng]\n")
        assert rules(diags) == {"code.pickle"}

    def test_other_line_does_not_suppress(self):
        diags = lint("# repro: ignore[code.pickle]\nimport pickle\n")
        assert rules(diags) == {"code.pickle"}


class TestSyntaxAndPaths:
    def test_syntax_error_is_one_finding(self):
        diags = lint("def broken(:\n")
        assert rules(diags) == {"code.syntax"}
        assert diags[0].severity == Severity.ERROR

    def test_lint_paths_recurses(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "ok.py").write_text("x = 1\n", encoding="utf-8")
        (pkg / "bad.py").write_text("import pickle\n", encoding="utf-8")
        diags = lint_paths([tmp_path])
        assert rules(diags) == {"code.pickle"}
        assert "bad.py" in diags[0].location

    def test_repo_source_tree_is_clean(self):
        import pathlib

        import repro

        src = pathlib.Path(repro.__file__).parent
        assert lint_paths([src]) == []


class TestSocketLifecycle:
    def test_unowned_socket_fires(self):
        diags = lint("""
            import socket

            def fetch(host):
                s = socket.create_connection((host, 80), timeout=5)
                s.sendall(b"hi")
                return s.recv(16)
        """)
        assert rules(diags) == {"code.socket-lifecycle"}
        assert diags[0].severity == Severity.ERROR

    def test_with_block_owns(self):
        assert lint("""
            import socket

            def fetch(host):
                with socket.create_connection((host, 80), timeout=5) as s:
                    return s.recv(16)
        """) == []

    def test_close_on_alias_owns(self):
        # The server idiom: ctor into a local, stashed on self, closed
        # through the attribute — one alias hop must connect them.
        assert lint("""
            import socket

            class Server:
                def start(self):
                    sock = socket.create_server(("127.0.0.1", 0))
                    self._sock = sock

                def close(self):
                    self._sock.close()
        """) == []

    def test_missing_timeout_is_a_warning(self):
        diags = lint("""
            import socket

            def fetch(host):
                with socket.create_connection((host, 80)) as s:
                    return s.recv(16)
        """)
        assert rules(diags) == {"code.socket-lifecycle"}
        assert all(d.severity == Severity.WARNING for d in diags)

    def test_settimeout_satisfies_raw_socket(self):
        assert lint("""
            import socket

            def probe(host):
                s = socket.socket()
                s.settimeout(3.0)
                s.connect((host, 80))
                s.close()
        """) == []

    def test_create_server_is_timeout_exempt(self):
        assert lint("""
            import socket

            def listen():
                sock = socket.create_server(("127.0.0.1", 0))
                sock.close()
        """) == []

    def test_suppression(self):
        assert lint("""
            import socket

            def leak(host):
                s = socket.create_connection((host, 80), timeout=5)  # repro: ignore[code.socket-lifecycle]
                return s
        """) == []


class TestCatalog:
    def test_every_rule_has_description(self):
        for rule in CODE_RULES:
            assert rule.id.startswith("code.")
            assert rule.description
