"""Tests for the flow-sensitive concurrency pass (flow.conc.*)."""

import textwrap

from repro.analysis.concurrency import check_source, check_paths


def check(snippet, path="m.py"):
    return check_source(textwrap.dedent(snippet), path=path)


def rules(diags):
    return {d.rule for d in diags}


class TestClosureCapture:
    def test_parent_mutated_list_capture_fires(self):
        # The ISSUE's seeded mutation: a pool closure captures a list
        # the parent keeps appending to — workers see a stale pickle.
        diags = check("""
            def run(pool, designs):
                results = []
                def worker(u):
                    return u + len(results)
                for u in designs:
                    results.append(u)
                return pool.map(worker, designs)
        """)
        assert "flow.conc.closure-capture" in rules(diags)

    def test_immutable_capture_clean(self):
        diags = check("""
            def run(pool, designs, scale):
                def worker(u):
                    return u * scale
                return pool.map(worker, designs)
        """)
        assert "flow.conc.closure-capture" not in rules(diags)

    def test_unmutated_list_capture_clean(self):
        diags = check("""
            def run(pool, designs):
                weights = [1.0, 2.0]
                def worker(u):
                    return u * weights[0]
                return pool.map(worker, designs)
        """)
        assert "flow.conc.closure-capture" not in rules(diags)


class TestUnpicklable:
    def test_lambda_on_pool_path_fires(self):
        diags = check("""
            def run(pool, designs):
                return pool.map(lambda u: u + 1, designs)
        """)
        assert "flow.conc.unpicklable" in rules(diags)

    def test_local_def_on_pool_path_fires(self):
        diags = check("""
            def run(pool, designs):
                def local(u):
                    return u + 1
                return pool.starmap(local, designs)
        """)
        assert "flow.conc.unpicklable" in rules(diags)

    def test_module_level_function_clean(self):
        diags = check("""
            def worker(u):
                return u + 1
            def run(pool, designs):
                return pool.map(worker, designs)
        """)
        assert "flow.conc.unpicklable" not in rules(diags)

    def test_thread_path_not_flagged_for_pickling(self):
        diags = check("""
            import threading
            def run(x):
                t = threading.Thread(target=lambda: x)
                t.start()
        """)
        assert "flow.conc.unpicklable" not in rules(diags)


class TestGlobalWrite:
    def test_submitted_function_writing_global_fires(self):
        diags = check("""
            STATE = {}
            def worker(u):
                STATE[u] = 1
                return u
            def run(pool, designs):
                return pool.map(worker, designs)
        """)
        assert "flow.conc.global-write" in rules(diags)

    def test_marker_decorator_discovers_worker(self):
        diags = check("""
            from repro.core.parallel import worker_side
            COUNTER = []
            @worker_side
            def entry(u):
                COUNTER.append(u)
        """)
        assert "flow.conc.global-write" in rules(diags)

    def test_transitive_callee_checked(self):
        diags = check("""
            ACC = []
            def helper(u):
                ACC.append(u)
            def worker(u):
                return helper(u)
            def run(pool, designs):
                return pool.map(worker, designs)
        """)
        assert "flow.conc.global-write" in rules(diags)

    def test_local_shadow_not_flagged(self):
        diags = check("""
            acc = []
            def worker(u):
                acc = []
                acc.append(u)
                return acc
            def run(pool, designs):
                return pool.map(worker, designs)
        """)
        assert "flow.conc.global-write" not in rules(diags)

    def test_parent_side_global_write_clean(self):
        diags = check("""
            TOTALS = []
            def worker(u):
                return u + 1
            def run(pool, designs):
                out = pool.map(worker, designs)
                TOTALS.extend(out)
                return out
        """)
        assert "flow.conc.global-write" not in rules(diags)

    def test_suppression_comment(self):
        diags = check("""
            STATE = None
            def worker(u):
                global STATE
                STATE = u  # repro: ignore[flow.conc.global-write]
            def run(pool, designs):
                return pool.map(worker, designs)
        """)
        assert "flow.conc.global-write" not in rules(diags)


class TestRepoSources:
    def test_parallel_module_is_clean_with_suppressions(self):
        # core/parallel.py's per-worker initializer writes ARE worker
        # state by design; the inline suppressions must hold.
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        diags = check_paths([root / "core" / "parallel.py"])
        assert diags == []

    def test_whole_tree_is_clean(self):
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        assert check_paths([root]) == []


class TestWorkerTelemetryPattern:
    """Regression guard for the worker-capture idiom in core/parallel.py.

    Worker-side code records telemetry by first binding the per-worker
    global to a local (``wt = _WORKER_TELEMETRY``) and mutating through
    the alias; the analyzer must keep accepting that shape, and keep
    flagging the naive global-method-call shape it replaces.
    """

    def test_local_alias_mutation_is_clean(self):
        diags = check("""
            from repro.core.parallel import worker_side

            _WORKER_TELEMETRY = None

            @worker_side
            def _evaluate_one(u):
                wt = _WORKER_TELEMETRY
                with wt.span("worker-evaluate"):
                    out = u * 2
                wt.inc("worker_sims_total")
                return out, wt.drain()
        """)
        assert "flow.conc.global-write" not in rules(diags)

    def test_unsuppressed_global_write_still_fires(self):
        diags = check("""
            from repro.core.parallel import worker_side

            _WORKER_TELEMETRY = None

            @worker_side
            def _init_worker(capture):
                global _WORKER_TELEMETRY
                _WORKER_TELEMETRY = object() if capture else None
        """)
        assert "flow.conc.global-write" in rules(diags)
