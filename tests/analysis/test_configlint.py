"""Tests for the configuration cross-validation checks."""

import pytest

from repro.analysis.configlint import (
    CFG_RULES,
    ConfigLintError,
    check_config,
    validate_config,
)
from repro.analysis.diagnostics import Severity
from repro.core.config import MAOptConfig, ResilienceConfig
from repro.core.space import DesignSpace, Parameter


def rules(diags):
    return {d.rule for d in diags}


class TestScalarRules:
    def test_default_config_is_clean(self):
        assert check_config(MAOptConfig()) == []

    def test_zero_action_scale_is_error(self):
        diags = check_config(MAOptConfig(action_scale=0.0))
        assert rules(diags) == {"cfg.action-scale"}
        assert diags[0].severity == Severity.ERROR

    def test_oversized_action_scale_is_warning(self):
        diags = check_config(MAOptConfig(action_scale=1.5))
        assert diags[0].rule == "cfg.action-scale"
        assert diags[0].severity == Severity.WARNING

    def test_nonpositive_lr_is_error(self):
        diags = check_config(MAOptConfig(critic_lr=0.0))
        assert rules(diags) == {"cfg.learning-rate"}

    def test_huge_lr_is_warning(self):
        diags = check_config(MAOptConfig(actor_lr=2.0))
        assert diags[0].severity == Severity.WARNING

    def test_negative_lambda_viol(self):
        assert rules(check_config(MAOptConfig(lambda_viol=-1.0))) \
            == {"cfg.lambda-viol"}

    def test_identity_fraction_out_of_range(self):
        assert rules(check_config(MAOptConfig(identity_fraction=1.5))) \
            == {"cfg.identity-fraction"}

    def test_unreachable_proposal_distance_is_warning(self):
        diags = check_config(MAOptConfig(action_scale=0.1,
                                         proposal_min_dist=0.5))
        assert rules(diags) == {"cfg.proposal-distance"}
        assert diags[0].severity == Severity.WARNING

    def test_huge_ns_radius_is_warning(self):
        diags = check_config(MAOptConfig(ns_radius=0.9))
        assert rules(diags) == {"cfg.ns-radius"}


class TestBudgetRules:
    def test_skipped_without_budget(self):
        # n_elite=50 is only judgeable against a known run plan.
        assert check_config(MAOptConfig(n_elite=50)) == []

    def test_elite_vs_init_is_warning(self):
        diags = check_config(MAOptConfig(n_elite=20), n_init=10,
                             n_sims=200)
        assert "cfg.elite-vs-init" in rules(diags)

    def test_elite_vs_budget_is_error(self):
        diags = check_config(MAOptConfig(n_elite=50), n_init=10, n_sims=20)
        errors = [d for d in diags if d.rule == "cfg.elite-vs-budget"]
        assert errors and errors[0].severity == Severity.ERROR

    def test_ns_cadence_never_fires(self):
        cfg = MAOptConfig(t_ns=100, near_sampling=True, n_actors=5)
        diags = check_config(cfg, n_sims=200, n_init=100)
        assert "cfg.ns-cadence" in rules(diags)

    def test_ns_cadence_ok_when_rounds_suffice(self):
        cfg = MAOptConfig(t_ns=5, near_sampling=True, n_actors=5)
        assert check_config(cfg, n_sims=200, n_init=100) == []

    def test_batch_vs_data(self):
        diags = check_config(MAOptConfig(batch_size=64), n_init=10,
                             n_sims=200)
        assert "cfg.batch-vs-data" in rules(diags)


class TestSpaceRules:
    class FakeTask:
        def __init__(self, space):
            self.space = space

    def test_integer_with_empty_range(self):
        space = DesignSpace([Parameter("N", 1.2, 1.8, integer=True)])
        diags = check_config(MAOptConfig(), task=self.FakeTask(space))
        assert rules(diags) == {"cfg.space-integer"}

    def test_nonfinite_bounds(self):
        space = DesignSpace([Parameter("W", 0.1, float("inf"))])
        diags = check_config(MAOptConfig(), task=self.FakeTask(space))
        assert rules(diags) == {"cfg.space-bounds"}

    def test_real_tasks_are_clean(self):
        from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA

        for task in (TwoStageOTA(), ThreeStageTIA(), LDORegulator()):
            assert check_config(MAOptConfig(), task=task) == []


class TestResilienceRules:
    def test_cadence_without_path_is_warning(self):
        cfg = MAOptConfig(resilience=ResilienceConfig(checkpoint_every=5))
        diags = check_config(cfg)
        assert rules(diags) == {"cfg.checkpoint-path"}
        assert diags[0].severity == Severity.WARNING

    def test_missing_checkpoint_dir_is_error(self):
        cfg = MAOptConfig(resilience=ResilienceConfig(
            checkpoint_path="/no/such/dir/ckpt.npz"))
        diags = check_config(cfg)
        errors = [d for d in diags if d.rule == "cfg.checkpoint-path"]
        assert errors and errors[0].severity == Severity.ERROR

    def test_writable_checkpoint_dir_is_clean(self, tmp_path):
        cfg = MAOptConfig(resilience=ResilienceConfig(
            checkpoint_path=str(tmp_path / "ckpt.npz")))
        assert check_config(cfg) == []

    def test_huge_retry_budget_is_warning(self):
        cfg = MAOptConfig(resilience=ResilienceConfig(max_retries=50))
        assert rules(check_config(cfg)) == {"cfg.retry-budget"}


class TestValidateConfig:
    def test_raises_on_error(self):
        with pytest.raises(ConfigLintError) as excinfo:
            validate_config(MAOptConfig(action_scale=0.0))
        assert any(d.rule == "cfg.action-scale"
                   for d in excinfo.value.diagnostics)

    def test_returns_warnings(self):
        diags = validate_config(MAOptConfig(action_scale=1.5))
        assert rules(diags) == {"cfg.action-scale"}

    def test_optimizer_constructor_fails_fast(self):
        from repro.core.ma_opt import MAOptimizer
        from repro.core.synthetic import ConstrainedSphere

        with pytest.raises(ConfigLintError):
            MAOptimizer(ConstrainedSphere(), MAOptConfig(critic_lr=-1.0))

    def test_optimizer_logs_budget_findings_without_raising(self):
        from repro.core.ma_opt import MAOptimizer
        from repro.core.synthetic import ConstrainedSphere

        opt = MAOptimizer(ConstrainedSphere(),
                          MAOptConfig(n_elite=8, hidden=(8,),
                                      critic_steps=2, actor_steps=2,
                                      n_actors=2))
        res = opt.run(n_sims=4, n_init=3)
        assert len(res.records) == 4
        logged = {e.payload["rule"]
                  for e in opt.run_log.events("config_warning")}
        assert "cfg.elite-vs-budget" in logged


class TestCatalog:
    def test_every_rule_has_description(self):
        for rule in CFG_RULES:
            assert rule.id.startswith("cfg.")
            assert rule.description
