"""Tests for the shared diagnostic model."""

import json

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    RuleSet,
    Severity,
    exit_code,
    filter_diagnostics,
    has_errors,
    max_severity,
    render_jsonl,
    render_text,
    sort_diagnostics,
)


def d(rule, severity=Severity.ERROR, message="msg", location="", fix=""):
    return Diagnostic(rule=rule, severity=severity, message=message,
                      location=location, fix=fix)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_str_is_lowercase_name(self):
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_render_with_location_and_fix(self):
        diag = d("erc.x", message="boom", location="R1", fix="do y")
        assert diag.render() == "error: erc.x: R1: boom (fix: do y)"

    def test_render_without_location(self):
        assert d("erc.x", message="boom").render() == "error: erc.x: boom"

    def test_to_dict_severity_is_string(self):
        out = d("erc.x", Severity.WARNING).to_dict()
        assert out["severity"] == "warning"
        assert out["rule"] == "erc.x"


class TestRuleSet:
    def test_diag_uses_catalog_severity(self):
        rs = RuleSet()
        rs.add("a.b", Severity.WARNING, "desc")
        assert rs.diag("a.b", "m").severity == Severity.WARNING
        assert rs.diag("a.b", "m", severity=Severity.ERROR).severity \
            == Severity.ERROR

    def test_duplicate_id_rejected(self):
        rs = RuleSet()
        rs.add("a.b", Severity.ERROR, "desc")
        with pytest.raises(ValueError):
            rs.add("a.b", Severity.ERROR, "again")

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            RuleSet().diag("missing", "m")


class TestFiltering:
    DIAGS = [d("erc.no-ground"), d("erc.floating-node"),
             d("cfg.elite-vs-init", Severity.WARNING)]

    def test_select_prefix_keeps_analyzer(self):
        kept = filter_diagnostics(self.DIAGS, select=["erc"])
        assert [x.rule for x in kept] == ["erc.no-ground",
                                         "erc.floating-node"]

    def test_select_exact_rule(self):
        kept = filter_diagnostics(self.DIAGS, select=["erc.no-ground"])
        assert [x.rule for x in kept] == ["erc.no-ground"]

    def test_prefix_does_not_match_mid_token(self):
        # 'erc.no' must not match 'erc.no-ground' (not a dotted segment).
        assert filter_diagnostics(self.DIAGS, select=["erc.no"]) == []

    def test_ignore_drops(self):
        kept = filter_diagnostics(self.DIAGS, ignore=["erc"])
        assert [x.rule for x in kept] == ["cfg.elite-vs-init"]

    def test_select_then_ignore(self):
        kept = filter_diagnostics(self.DIAGS, select=["erc"],
                                  ignore=["erc.floating-node"])
        assert [x.rule for x in kept] == ["erc.no-ground"]


class TestAggregates:
    def test_sort_severity_major(self):
        out = sort_diagnostics([d("b.w", Severity.WARNING), d("a.e"),
                                d("c.e")])
        assert [x.rule for x in out] == ["a.e", "c.e", "b.w"]

    def test_max_severity_and_has_errors(self):
        assert max_severity([]) is None
        assert max_severity([d("a", Severity.WARNING)]) == Severity.WARNING
        assert not has_errors([d("a", Severity.WARNING)])
        assert has_errors([d("a", Severity.WARNING), d("b")])

    def test_exit_code(self):
        assert exit_code([]) == 0
        assert exit_code([d("a", Severity.WARNING)]) == 0
        assert exit_code([d("a")]) == 1


class TestRendering:
    def test_text_summary_tallies(self):
        text = render_text([d("a"), d("b", Severity.WARNING)])
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text

    def test_text_clean(self):
        assert render_text([]) == "clean: no findings"

    def test_jsonl_round_trips(self):
        lines = render_jsonl([d("a"), d("b")]).splitlines()
        assert [json.loads(line)["rule"] for line in lines] == ["a", "b"]
